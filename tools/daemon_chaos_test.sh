#!/usr/bin/env bash
# Crash-recovery chaos harness for wfmsd's persistent assessment cache.
#
#   1. Cold daemon with --snapshot-interval 0 (persist after every
#      cache-changing request): capture a baseline answer, then SIGKILL
#      the daemon while a request is in flight.
#   2. Warm restart on the same snapshot: the daemon must log the warm
#      start and answer the baseline request *byte-identically* — cached
#      assessments are pure functions of (environment, solver options,
#      configuration), so recovery must not drift.
#   3. Restart under different solver options (--lumping on): the stored
#      fingerprint no longer matches, the stale snapshot is rejected with
#      a clean per-scenario message, and the daemon serves cold instead
#      of answering from a poisoned cache.
#
# usage: daemon_chaos_test.sh <wfmsd> <wfmsctl> <workdir>
set -u

WFMSD="$1"
WFMSCTL="$2"
WORKDIR="$3/daemon_chaos_test"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
SNAP="$WORKDIR/cache.wfsn"

DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2> /dev/null; then
    kill -9 "$DAEMON_PID" 2> /dev/null
  fi
}
trap cleanup EXIT

fail() {
  local tag="$1"
  shift
  echo "FAIL: $*"
  echo "--- daemon stderr ($tag) ---"
  cat "$WORKDIR/wfmsd_$tag.err" 2> /dev/null || true
  exit 1
}

# boot <tag> [extra flags...] — starts a daemon, sets DAEMON_PID + PORT.
boot() {
  local tag="$1"
  shift
  "$WFMSD" --port 0 --snapshot "$SNAP" --snapshot-interval 0 "$@" \
    > "$WORKDIR/wfmsd_$tag.out" 2> "$WORKDIR/wfmsd_$tag.err" &
  DAEMON_PID=$!
  PORT=""
  for _ in $(seq 100); do
    PORT=$(sed -n 's/^wfmsd: listening on .*:\([0-9]*\)$/\1/p' \
      "$WORKDIR/wfmsd_$tag.out" 2> /dev/null)
    [ -n "$PORT" ] && break
    kill -0 "$DAEMON_PID" 2> /dev/null || fail "$tag daemon died on startup"
    sleep 0.1
  done
  [ -n "$PORT" ] || fail "$tag daemon never reported its port"
}

assess() {
  "$WFMSCTL" assess --connect "127.0.0.1:$PORT" --config 2,2,3 \
    --max-wait 0.05 --min-avail 0.99
}

echo "== cold daemon, baseline answer"
boot cold
assess > "$WORKDIR/cold.json" || fail cold "baseline assess exited $?"
# A second distinct entry so the snapshot holds more than one report
# (exit 3 = answered, goals not met — still a cached assessment).
"$WFMSCTL" assess --connect "127.0.0.1:$PORT" --config 1,1,1 \
  --max-wait 0.05 --min-avail 0.99 > /dev/null
rc=$?
[ "$rc" -eq 0 ] || [ "$rc" -eq 3 ] || fail cold "second assess exited $rc"
# The snapshot is written after the response, so allow it a moment.
for _ in $(seq 50); do
  [ -s "$SNAP" ] && break
  sleep 0.1
done
[ -s "$SNAP" ] || fail cold "no snapshot written despite --snapshot-interval 0"

echo "== SIGKILL mid-request"
# Fire an uncached request and kill the daemon while it is in flight; the
# client loses the connection, the snapshot (written *before* this
# request) must survive.
"$WFMSCTL" assess --connect "127.0.0.1:$PORT" --config 4,4,4 \
  --max-wait 0.05 --min-avail 0.99 --timeout 30 \
  > /dev/null 2> /dev/null &
CLIENT_PID=$!
sleep 0.1
kill -9 "$DAEMON_PID" || fail cold "could not SIGKILL the daemon"
wait "$DAEMON_PID" 2> /dev/null
DAEMON_PID=""
wait "$CLIENT_PID" 2> /dev/null  # whatever it got, it must not hang
[ -s "$SNAP" ] || fail cold "snapshot vanished with the SIGKILL"

echo "== warm restart: byte-identical answer"
boot warm
grep -q "warm start" "$WORKDIR/wfmsd_warm.err" \
  || fail warm "no warm-start log after restart with a snapshot"
assess > "$WORKDIR/warm.json" || fail warm "warm assess exited $?"
cmp -s "$WORKDIR/cold.json" "$WORKDIR/warm.json" || {
  diff "$WORKDIR/cold.json" "$WORKDIR/warm.json" || true
  fail warm "warm answer differs from the cold baseline"
}
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
rc=$?
DAEMON_PID=""
[ "$rc" -eq 0 ] || fail warm "warm daemon exited $rc on SIGTERM (want 0)"

echo "== stale fingerprint: clean rejection, cold serve"
boot stale --lumping on
grep -q "fingerprint mismatch" "$WORKDIR/wfmsd_stale.err" \
  || fail stale "stale snapshot not rejected with a fingerprint message"
grep -q "warm start" "$WORKDIR/wfmsd_stale.err" \
  && fail stale "daemon claims a warm start from a stale snapshot"
assess > "$WORKDIR/stale.json" || fail stale "cold assess exited $?"
grep -q '"satisfies":true' "$WORKDIR/stale.json" \
  || fail stale "cold answer after rejection is wrong"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
rc=$?
DAEMON_PID=""
[ "$rc" -eq 0 ] || fail stale "stale daemon exited $rc on SIGTERM (want 0)"

echo "PASS"

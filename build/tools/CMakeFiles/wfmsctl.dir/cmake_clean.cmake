file(REMOVE_RECURSE
  "CMakeFiles/wfmsctl.dir/wfmsctl.cpp.o"
  "CMakeFiles/wfmsctl.dir/wfmsctl.cpp.o.d"
  "wfmsctl"
  "wfmsctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfmsctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

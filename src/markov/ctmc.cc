#include "markov/ctmc.h"

#include <algorithm>
#include <string>

namespace wfms::markov {

using linalg::SparseMatrix;
using linalg::SparseMatrixBuilder;
using linalg::Vector;

CtmcBuilder::CtmcBuilder(size_t num_states)
    : num_states_(num_states),
      off_diagonal_(num_states, num_states),
      exit_rates_(num_states, 0.0) {}

Status CtmcBuilder::AddTransition(size_t from, size_t to, double rate) {
  if (from >= num_states_ || to >= num_states_) {
    return Status::OutOfRange("transition endpoint out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("self-transitions are not allowed");
  }
  if (!(rate > 0.0)) {
    return Status::InvalidArgument("transition rate must be positive");
  }
  off_diagonal_.Add(from, to, rate);
  exit_rates_[from] += rate;
  return Status::OK();
}

Result<Ctmc> CtmcBuilder::Build() {
  if (num_states_ == 0) {
    return Status::InvalidArgument("CTMC must have at least one state");
  }
  return Ctmc(std::move(off_diagonal_).Build(), std::move(exit_rates_));
}

double Ctmc::MaxExitRate() const {
  double m = 0.0;
  for (double v : exit_rates_) m = std::max(m, v);
  return m;
}

double Ctmc::UniformizationRate(double rate_margin) const {
  return std::max(MaxExitRate() * rate_margin, 1e-300);
}

SparseMatrix Ctmc::UniformizedMatrix(double rate_margin) const {
  const size_t n = num_states();
  const double lambda = UniformizationRate(rate_margin);
  SparseMatrixBuilder builder(n, n);
  builder.Reserve(rates_.num_nonzeros() + n);
  const auto& offsets = rates_.row_offsets();
  const auto& cols = rates_.col_indices();
  const auto& values = rates_.values();
  for (size_t r = 0; r < n; ++r) {
    for (size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
      builder.Add(r, cols[k], values[k] / lambda);
    }
    builder.Add(r, r, 1.0 - exit_rates_[r] / lambda);
  }
  return builder.Build();
}

}  // namespace wfms::markov

// E12 — ablation of the replication queueing model. The paper (§4.4)
// models Y replicas of a server type as Y *independent* M/G/1 queues with
// the load partitioned up front (round-robin / hashed assignment). The
// alternative is a shared-queue M/M/c (one queue feeding all replicas).
// This bench compares both analytic models against the simulator (which
// implements the paper's partitioned round-robin dispatch) on the engine
// server type of the EP scenario.

#include <cmath>
#include <cstdio>

#include "perf/performance_model.h"
#include "queueing/mg1.h"
#include "sim/simulator.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;
  const double rate = 1.5;  // EP workflows per minute
  auto env = workflow::EpEnvironment(rate);
  if (!env.ok()) return 1;
  auto model = perf::PerformanceModel::Create(*env);
  if (!model.ok()) return 1;
  const double engine_requests = model->total_request_rates()[1];
  const double engine_service = env->servers.type(1).service.mean;

  std::printf("E12: replication model ablation, engine type "
              "(%.1f req/min, E[S]=%.3f min)\n\n",
              engine_requests, engine_service);
  std::printf("%3s %18s %18s %18s %18s\n", "Y", "M/G/1 per replica",
              "M/M/c shared", "sim round-robin[s]", "sim bound[s]");
  for (int y = 1; y <= 4; ++y) {
    auto partitioned = queueing::Mg1Metrics(engine_requests / y,
                                            env->servers.type(1).service);
    auto shared = queueing::MmcMetrics(engine_requests, engine_service, y);

    double observed[2] = {std::nan(""), std::nan("")};
    for (int policy = 0; policy < 2; ++policy) {
      sim::SimulationOptions options;
      options.config = workflow::Configuration({2, y, 3});
      options.dispatch = policy == 0
                             ? sim::DispatchPolicy::kRoundRobin
                             : sim::DispatchPolicy::kPerInstanceBinding;
      options.duration = 20000.0;
      options.warmup = 4000.0;
      options.enable_failures = false;
      options.seed = 33;
      auto simulator = sim::Simulator::Create(*env, options);
      if (simulator.ok()) {
        auto result = simulator->Run();
        if (result.ok()) {
          observed[policy] = result->servers[1].waiting_time.mean() * 60.0;
        }
      }
    }
    std::printf("%3d %18s %18s %18.3f %18.3f\n", y,
                partitioned.ok()
                    ? std::to_string(partitioned->mean_waiting_time * 60.0)
                          .substr(0, 8)
                          .c_str()
                    : "saturated",
                shared.ok()
                    ? std::to_string(shared->mean_waiting_time * 60.0)
                          .substr(0, 8)
                          .c_str()
                    : "saturated",
                observed[0], observed[1]);
  }
  std::printf("\nexpected shape: the shared-queue M/M/c lower-bounds the "
              "Y-independent-M/G/1 model (no idle-while-work-waits "
              "inefficiency). Round-robin per request smooths each "
              "server's arrival stream (near-Erlang interarrivals) and "
              "lands between the two analytic models; the paper's "
              "per-instance hashed binding keeps instance bursts on one "
              "server and lands at/above the per-replica M/G/1 prediction "
              "— i.e. the paper's model matches its own stated "
              "assignment policy.\n");
  return 0;
}

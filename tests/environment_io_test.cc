#include "workflow/environment_io.h"

#include <gtest/gtest.h>

#include "perf/performance_model.h"
#include "workflow/scenarios.h"

namespace wfms::workflow {
namespace {

constexpr char kMinimalScenario[] = R"(
# A two-type scenario.
servers
  server engine kind=engine service_mean=0.02 service_scv=1 mttf=10080 mttr=10
  server app kind=application service_mean=0.05 service_scv=2 mttf=1440 mttr=10
end

loads
  load work engine=3 app=2
  load finish engine=1
end

workflows
  workflow W chart=W rate=0.5
end

chart W
  state Work activity=work residence=10
  state Finish activity=finish residence=1
  initial Work
  final Finish
  trans Work -> Finish prob=1
end
)";

TEST(EnvironmentIoTest, ParsesMinimalScenario) {
  auto env = ParseEnvironment(kMinimalScenario);
  ASSERT_TRUE(env.ok()) << env.status();
  EXPECT_EQ(env->num_server_types(), 2u);
  EXPECT_EQ(env->workflows.size(), 1u);
  EXPECT_EQ(env->charts.size(), 1u);

  const size_t engine = *env->servers.IndexOf("engine");
  EXPECT_EQ(env->servers.type(engine).kind, ServerKind::kWorkflowEngine);
  EXPECT_DOUBLE_EQ(env->servers.type(engine).service.mean, 0.02);
  EXPECT_NEAR(env->servers.type(engine).failure_rate, 1.0 / 10080.0, 1e-15);
  EXPECT_NEAR(env->servers.type(engine).repair_rate, 0.1, 1e-15);

  const linalg::Vector load = env->loads.LoadOf("work", 2);
  EXPECT_DOUBLE_EQ(load[engine], 3.0);
  // Omitted entries default to zero.
  const linalg::Vector finish = env->loads.LoadOf("finish", 2);
  EXPECT_DOUBLE_EQ(finish[*env->servers.IndexOf("app")], 0.0);

  EXPECT_DOUBLE_EQ(env->workflows[0].arrival_rate, 0.5);
}

TEST(EnvironmentIoTest, ParsedScenarioDrivesModels) {
  auto env = ParseEnvironment(kMinimalScenario);
  ASSERT_TRUE(env.ok());
  auto model = perf::PerformanceModel::Create(*env);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_NEAR(model->workflows()[0].turnaround_time, 11.0, 1e-9);
}

TEST(EnvironmentIoTest, RoundTripsBuiltinScenarios) {
  for (const bool benchmark : {false, true}) {
    auto original = benchmark ? BenchmarkEnvironment() : EpEnvironment();
    ASSERT_TRUE(original.ok());
    const std::string text = SerializeEnvironment(*original);
    auto parsed = ParseEnvironment(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->num_server_types(), original->num_server_types());
    EXPECT_EQ(parsed->workflows.size(), original->workflows.size());
    EXPECT_EQ(parsed->charts.size(), original->charts.size());
    // Model results are preserved through the round trip.
    auto m1 = perf::PerformanceModel::Create(*original);
    auto m2 = perf::PerformanceModel::Create(*parsed);
    ASSERT_TRUE(m1.ok());
    ASSERT_TRUE(m2.ok());
    for (size_t t = 0; t < m1->workflows().size(); ++t) {
      EXPECT_NEAR(m2->workflows()[t].turnaround_time,
                  m1->workflows()[t].turnaround_time,
                  1e-9 * m1->workflows()[t].turnaround_time);
      for (size_t x = 0; x < original->num_server_types(); ++x) {
        EXPECT_NEAR(m2->workflows()[t].expected_requests[x],
                    m1->workflows()[t].expected_requests[x], 1e-9);
      }
    }
  }
}

TEST(EnvironmentIoTest, WorkflowChartDefaultsToName) {
  auto env = ParseEnvironment(R"(
servers
  server s kind=engine service_mean=0.01 mttf=1000 mttr=10
end
loads
  load a s=1
end
workflows
  workflow W rate=0.1
end
chart W
  state A activity=a residence=1
  state B residence=1
  initial A
  final B
  trans A -> B prob=1
end
)");
  ASSERT_TRUE(env.ok()) << env.status();
  EXPECT_EQ(env->workflows[0].chart, "W");
}

TEST(EnvironmentIoTest, ErrorsCarryLineNumbers) {
  auto r = ParseEnvironment("servers\n  server x kind=bogus\nend\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(EnvironmentIoTest, RejectsMalformedInput) {
  // Statement outside a section.
  EXPECT_FALSE(ParseEnvironment("server x kind=engine\n").ok());
  // Unknown server referenced in a load.
  EXPECT_FALSE(ParseEnvironment(R"(
servers
  server s kind=engine service_mean=0.01 mttf=100 mttr=10
end
loads
  load a ghost=1
end
workflows
  workflow W chart=W rate=0.1
end
chart W
  state A activity=a residence=1
  state B residence=1
  initial A
  final B
  trans A -> B prob=1
end
)")
                   .ok());
  // Negative request count.
  EXPECT_FALSE(ParseEnvironment(R"(
servers
  server s kind=engine service_mean=0.01 mttf=100 mttr=10
end
loads
  load a s=-1
end
workflows
  workflow W chart=W rate=0.1
end
chart W
  state A activity=a residence=1
  state B residence=1
  initial A
  final B
  trans A -> B prob=1
end
)")
                   .ok());
  // Missing mttf.
  EXPECT_FALSE(
      ParseEnvironment("servers\n  server s kind=engine service_mean=0.01 "
                       "mttr=10\nend\n")
          .ok());
  // Unterminated chart block.
  EXPECT_FALSE(ParseEnvironment("chart X\n  state A residence=1\n").ok());
  // Workflow referencing a chart that is never defined.
  EXPECT_FALSE(ParseEnvironment(R"(
servers
  server s kind=engine service_mean=0.01 mttf=100 mttr=10
end
workflows
  workflow W chart=Ghost rate=0.1
end
)")
                   .ok());
}

TEST(EnvironmentIoTest, BadNumbersRejected) {
  EXPECT_FALSE(
      ParseEnvironment("servers\n  server s kind=engine service_mean=abc "
                       "mttf=100 mttr=10\nend\n")
          .ok());
  EXPECT_FALSE(
      ParseEnvironment("servers\n  server s kind=engine service_mean=0.01 "
                       "mttf=0 mttr=10\nend\n")
          .ok());
}

TEST(EnvironmentIoTest, NonFiniteAndNegativeRatesRejectedNamingTheServer) {
  // NaN/inf/negative moments and rates must die at parse time, with the
  // offending server type named in the message — not deep inside a solver.
  const struct {
    const char* line;
  } cases[] = {
      {"  server payments kind=engine service_mean=nan mttf=100 mttr=10"},
      {"  server payments kind=engine service_mean=inf mttf=100 mttr=10"},
      {"  server payments kind=engine service_mean=-0.5 mttf=100 mttr=10"},
      {"  server payments kind=engine service_mean=0.01 service_scv=nan "
       "mttf=100 mttr=10"},
      {"  server payments kind=engine service_mean=0.01 service_scv=-1 "
       "mttf=100 mttr=10"},
      {"  server payments kind=engine service_mean=0.01 mttf=inf mttr=10"},
      {"  server payments kind=engine service_mean=0.01 mttf=100 mttr=nan"},
      {"  server payments kind=engine service_mean=0.01 mttf=-100 mttr=10"},
  };
  for (const auto& c : cases) {
    auto env = ParseEnvironment(std::string("servers\n") + c.line + "\nend\n");
    ASSERT_FALSE(env.ok()) << c.line;
    EXPECT_EQ(env.status().code(), StatusCode::kParseError) << c.line;
    EXPECT_NE(env.status().ToString().find("payments"), std::string::npos)
        << env.status();
  }
  EXPECT_FALSE(ParseEnvironment(R"(servers
  server s kind=engine service_mean=0.01 mttf=100 mttr=10
end
workflows
  workflow W chart=W rate=inf
end
)")
                   .ok());
}

}  // namespace
}  // namespace wfms::workflow

// wfmsctl — command-line front end of the configuration tool (§7 of the
// paper): analyze workflows, assess candidate configurations, recommend
// minimum-cost configurations, and validate by simulation, driven by
// scenario files (see src/workflow/environment_io.h) or the built-in
// scenarios.
//
//   wfmsctl analyze   --scenario ep
//   wfmsctl assess    --scenario ep --config 2,2,3 --max-wait 0.05
//                     --min-avail 0.99999
//   wfmsctl recommend --scenario scenario.wfms --method greedy
//   wfmsctl simulate  --scenario ep --config 2,2,3 --duration 50000
//   wfmsctl autotune  --scenario ep --config 1,1,1 --load load.schedule
//                     --max-turnaround 40
//   wfmsctl export    --scenario benchmark > my_scenario.wfms

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "adapt/autotune.h"
#include "avail/availability_model.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "common/time_units.h"
#include "configtool/checkpoint.h"
#include "configtool/tool.h"
#include "corpus/sweep.h"
#include "markov/first_passage_moments.h"
#include "markov/transient_distribution.h"
#include "perf/performance_model.h"
#include "service/client.h"
#include "service/json.h"
#include "sim/fault_schedule.h"
#include "sim/load_schedule.h"
#include "sim/simulator.h"
#include "workflow/calibration.h"
#include "workflow/environment_io.h"
#include "workflow/scenarios.h"

namespace wfms {
namespace {

// Exit codes (documented in README): 0 success / goals met, 1 internal
// error, 2 usage error, 3 goals not met, 4 bad input (parse or
// validation, including stale/corrupt checkpoints), 5 numerical solve
// failure, 6 interrupted by SIGINT/SIGTERM with a final checkpoint
// written (resume with --resume), 7 deadline exceeded or service
// unavailable (daemon shed the request or cannot be reached).
int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kParseError:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
      return 4;
    case StatusCode::kNumericError:
      return 5;
    case StatusCode::kCancelled:
      return 6;
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
      return 7;
    default:
      return 1;
  }
}

// SIGINT/SIGTERM raise this flag; the searches and the simulator poll it
// at their wave/step/event boundaries, stop with best-so-far, and the
// front end writes a final checkpoint before exiting with code 6.
std::atomic<bool> g_cancel{false};

void HandleTerminationSignal(int) { g_cancel.store(true); }

void InstallSignalHandlers() {
  std::signal(SIGINT, HandleTerminationSignal);
  std::signal(SIGTERM, HandleTerminationSignal);
}

// Prints the full status chain (root cause plus every WithContext frame)
// to stderr and returns the matching exit code.
int FailWith(const Status& status) {
  std::fprintf(stderr, "wfmsctl: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

struct Flags {
  std::map<std::string, std::string> values;

  bool Has(const std::string& name) const { return values.count(name) > 0; }
  std::string Get(const std::string& name, const std::string& fallback) const {
    const auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    const auto it = values.find(name);
    double value = fallback;
    if (it != values.end()) ParseDouble(it->second, &value);
    return value;
  }
};

int Usage() {
  std::fprintf(stderr, R"(usage: wfmsctl <command> [--flag value]...

commands:
  analyze     turnaround times, loads, and quantiles per workflow type
  assess      evaluate one configuration against performability goals
  recommend   search a minimum-cost configuration (greedy|exhaustive|annealing)
  simulate    discrete-event simulation of a configuration
              (--trail-out FILE records the audit trail;
               --bind-instances uses per-instance server binding)
  calibrate   re-estimate the scenario from an audit trail (--trail FILE);
              prints the calibrated scenario to stdout
  autotune    closed-loop adaptive reconfiguration: simulate under a
              scripted load schedule, monitor the audit stream, detect
              drift / goal violations, and re-run the configuration
              search when warranted
  corpus      generate (or load) a manifest of workflow environments —
              WfCommons-style imports and recipe-generated DAGs — and
              sweep assess/recommend across all of them in parallel,
              writing a per-environment JSON report
  export      print a scenario file for a built-in scenario
  ping        liveness probe of a running wfmsd (requires --connect)

client mode (assess, recommend, autotune, ping):
  --connect HOST:PORT    execute the command on a running wfmsd instead
                         of in-process; scenario files are inlined into
                         the request, so the daemon needs no file access
  --tenant NAME          tenant id for the daemon's per-tenant admission
  --timeout S            response wait per attempt   (default 120)

common flags:
  --scenario  ep | geo | benchmark | <path to scenario file> (default: ep;
              geo = EP placed across two sites EU/US, see DESIGN.md §12)
  --config    comma-separated replication vector, e.g. 2,2,3; multi-site
              scenarios also accept per-site counts with '/', e.g.
              2/1,1/1,2/2 (type-major: type 0 gets 2 at site A + 1 at B)
  --max-wait  waiting-time goal in minutes      (default 0.05)
  --min-avail availability goal                 (default 0.99999)
  --method    greedy | greedy-site | exhaustive | annealing | bnb
              (default greedy; greedy-site searches per-site placements
               in a multi-site scenario)
  --max-replicas per-type search bound          (default 8)
  --lumping   off | auto | on — lumpability aggregation for the CTMC
              steady-state solve (assess, recommend). off (default)
              keeps solves bit-identical to previous releases; auto
              engages aggregation once a chain reaches 32768 states
              (falling back transparently when no symmetry is found)
  --deadline  wall-clock deadline in seconds. recommend/autotune: bounds
              the whole search AND each candidate's steady-state solve;
              on expiry the best-so-far result is reported. assess: bounds
              the solve itself; on expiry the command fails with exit 7
  --duration / --warmup / --seed / --no-failures   (simulate)
  --faults    fault-schedule file: scripted crash/repair/outage events
              replacing the random failure processes (simulate)
  --load      load-schedule file: timed arrival-rate phase changes
              (simulate, autotune)
  --iterations annealing iteration count          (recommend, default 2000)
  --verbose   also report cache statistics and per-candidate failure
              causes on stderr (recommend)

survivability goals (multi-site scenarios; assess, recommend):
  --survive-sites N      goals must also hold with any N sites down
                         (N = 0 or 1; default 0)
  --survive-partitions   goals must also hold under any two-way partition
  --degraded-max-wait    waiting-time goal under contingencies
                         (default: inherit --max-wait)
  --degraded-min-avail   availability goal under contingencies
                         (default: inherit --min-avail)
  --min-per-site         per-(type,site) placement minimums for
                         greedy-site: type-major comma list, e.g.
                         1,0,0,1 anchors types 0/1 at sites A/B

corpus flags:
  --generate N       generate an N-environment manifest (with --manifest:
                     also write it to that file)
  --manifest FILE    without --generate: load this manifest and sweep it
  --seed             manifest generation seed       (default 42)
  --max-tasks        largest generated workflow     (default 512)
  --mode             assess | recommend             (default assess)
  --max-replicas     recommend-mode per-type cap    (default 4)
  --phase-type       Erlang macro-state expansion for parallel regions
  --jobs N           sweep fan-out (default: WFMS_NUM_THREADS or cores)
  --report FILE      write the JSON report here instead of stdout
  --no-timings       omit wall times from the report (byte-stable output)
  --max-wait / --min-avail / --lumping as for assess and recommend

autotune flags:
  --config          initial configuration        (default all-ones)
  --load FILE       load schedule: timed arrival-rate phase changes
                    (at <t> rate <wf> <r> | scale <wf> <f> | scale-all <f>)
  --duration        total model minutes          (default 20000)
  --epoch           control period in model minutes (default 2000)
  --max-turnaround  observed mean-turnaround SLO in minutes (0 = off)
  --window / --tau  estimator window / decay constant (model minutes)
  --hysteresis      consecutive triggered periods before a search (default 2)
  --cooldown        minimum model minutes between reconfigurations
                    (default 2 epochs)
  --min-margin-gain minimum predicted improvement to act (default 0.05)
  --checkpoint PATH persist the search's assessment cache across periods

observability (any command):
  --metrics-out FILE     write a metrics snapshot after the command runs
  --metrics-format       json | prometheus        (default json)
  --trace-out FILE       record trace spans as Chrome trace_event JSON
                         (open in Perfetto or chrome://tracing)
  passing either export flag also prints a run-report summary to stdout

checkpointing (recommend, simulate):
  --checkpoint PATH      write crash-safe checkpoints to PATH (atomic
                         rename + CRC); on SIGINT/SIGTERM a final
                         checkpoint is written and the exit code is 6
  --checkpoint-interval  seconds between periodic search checkpoints
                         (recommend, default 60; 0 = every boundary)
  --checkpoint-events    events between simulator checkpoints
                         (simulate, default 100000)
  --resume               load PATH first: a search resumes from its
                         memoized assessments; a simulation replays and
                         verifies the saved cursor. A checkpoint from a
                         different scenario/goals/options is rejected.

exit codes:
  0 success / goals met     3 goals not met
  1 internal error          4 bad input (parse, validation, or a stale/
  2 usage error               corrupt checkpoint)
  5 numerical solve failure 6 interrupted; checkpoint written (resumable)
  7 deadline exceeded, request shed by the daemon, or daemon unreachable
)");
  return 2;
}

Result<workflow::Environment> LoadScenario(const std::string& name) {
  if (name == "ep") return workflow::EpEnvironment();
  if (name == "geo") return workflow::GeoEpEnvironment();
  if (name == "benchmark") return workflow::BenchmarkEnvironment();
  std::ifstream file(name);
  if (!file) {
    return Status::NotFound("cannot open scenario file '" + name + "'");
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return workflow::ParseEnvironment(buffer.str());
}

// Classic form "2,2,3" or, in a multi-site scenario, per-site counts with
// '/' separators: "2/1,1/1,2/2" places type 0 as 2 at site A + 1 at site B,
// and so on (type-major, one slash-group per server type).
Result<workflow::Configuration> ParseConfig(const std::string& text,
                                            size_t num_types,
                                            size_t num_sites) {
  if (text.empty()) {
    return Status::InvalidArgument("--config is required for this command");
  }
  if (text.find('/') != std::string::npos) {
    if (num_sites == 0) {
      return Status::InvalidArgument(
          "per-site --config (the a/b/... form) needs a scenario with a "
          "sites section");
    }
    std::vector<int> counts;
    for (const std::string& part : SplitString(text, ',')) {
      const std::vector<std::string> per_site = SplitString(part, '/');
      if (per_site.size() != num_sites) {
        return Status::InvalidArgument(
            "--config entry '" + part + "' must list one count per site (" +
            std::to_string(num_sites) + " sites)");
      }
      for (const std::string& entry : per_site) {
        int value = 0;
        if (!ParseInt(entry, &value)) {
          return Status::InvalidArgument("bad --config entry '" + entry +
                                         "'");
        }
        counts.push_back(value);
      }
    }
    workflow::Configuration config =
        workflow::Configuration::FromSiteCounts(std::move(counts), num_sites);
    WFMS_RETURN_NOT_OK(config.ValidateSites(num_types, num_sites));
    return config;
  }
  workflow::Configuration config;
  for (const std::string& part : SplitString(text, ',')) {
    int value = 0;
    if (!ParseInt(part, &value)) {
      return Status::InvalidArgument("bad --config entry '" + part + "'");
    }
    config.replicas.push_back(value);
  }
  WFMS_RETURN_NOT_OK(config.Validate(num_types));
  return config;
}

configtool::Goals GoalsFromFlags(const Flags& flags) {
  configtool::Goals goals;
  goals.max_waiting_time = flags.GetDouble("max-wait", 0.05);
  goals.min_availability = flags.GetDouble("min-avail", 0.99999);
  goals.survive_sites =
      static_cast<int>(flags.GetDouble("survive-sites", 0));
  goals.survive_partitions = flags.Has("survive-partitions");
  goals.degraded_max_waiting_time =
      flags.GetDouble("degraded-max-wait", 0.0);
  goals.degraded_min_availability =
      flags.GetDouble("degraded-min-avail", -1.0);
  return goals;
}

/// Solver-related tool options shared by assess and recommend. --lumping
/// selects lumpability aggregation for the availability CTMC solve; off is
/// the default so existing runs stay bit-identical.
Result<performability::PerformabilityOptions> ToolOptionsFromFlags(
    const Flags& flags) {
  performability::PerformabilityOptions options;
  const std::string lumping = flags.Get("lumping", "off");
  if (lumping == "off") {
    options.availability.solver.lumping = markov::LumpingMode::kOff;
  } else if (lumping == "auto") {
    options.availability.solver.lumping = markov::LumpingMode::kAuto;
  } else if (lumping == "on") {
    options.availability.solver.lumping = markov::LumpingMode::kOn;
  } else {
    return Status::InvalidArgument("bad --lumping '" + lumping +
                                   "' (on|off|auto)");
  }
  return options;
}

int Analyze(const workflow::Environment& env) {
  auto model = perf::PerformanceModel::Create(env);
  if (!model.ok()) return FailWith(model.status());
  for (const perf::WorkflowAnalysis& wf : model->workflows()) {
    std::printf("workflow %s (chart %s)\n", wf.workflow_type.c_str(),
                wf.chart.c_str());
    std::printf("  mean turnaround: %s\n",
                FormatMinutes(wf.turnaround_time).c_str());
    auto moments = markov::TurnaroundTimeMoments(wf.chain);
    if (moments.ok()) {
      std::printf("  turnaround stddev: %s (SCV %.2f)\n",
                  FormatMinutes(moments->stddev()).c_str(), moments->scv());
    }
    for (double q : {0.5, 0.95}) {
      auto quantile = markov::TurnaroundQuantile(wf.chain, q);
      if (quantile.ok()) {
        std::printf("  p%.0f turnaround: %s\n", q * 100,
                    FormatMinutes(*quantile).c_str());
      }
    }
    std::printf("  expected requests:");
    for (size_t x = 0; x < env.num_server_types(); ++x) {
      std::printf(" %s=%.2f", env.servers.type(x).name.c_str(),
                  wf.expected_requests[x]);
    }
    std::printf("\n");
  }
  std::printf("aggregate request rates (req/min):");
  for (size_t x = 0; x < env.num_server_types(); ++x) {
    std::printf(" %s=%.2f", env.servers.type(x).name.c_str(),
                model->total_request_rates()[x]);
  }
  std::printf("\n");
  return 0;
}

int Assess(const workflow::Environment& env, const Flags& flags) {
  auto config = ParseConfig(flags.Get("config", ""), env.num_server_types(),
                            env.topology.num_sites());
  if (!config.ok()) return FailWith(config.status());
  auto tool_options = ToolOptionsFromFlags(flags);
  if (!tool_options.ok()) return FailWith(tool_options.status());
  // --deadline bounds the assessment's steady-state solve itself (the
  // SolveBudget shared across cascade rungs), not just the caller's
  // patience: on expiry the solve fails with DeadlineExceeded (exit 7).
  const double deadline = flags.GetDouble("deadline", 0.0);
  if (deadline > 0.0) {
    auto& budget = tool_options->availability.solver.budget;
    if (budget.max_wall_time_seconds <= 0.0 ||
        deadline < budget.max_wall_time_seconds) {
      budget.max_wall_time_seconds = deadline;
    }
  }
  auto tool = configtool::ConfigurationTool::Create(env, *tool_options);
  if (!tool.ok()) return FailWith(tool.status());
  auto assessment = tool->Assess(*config, GoalsFromFlags(flags));
  if (!assessment.ok()) return FailWith(assessment.status());
  if (!assessment->error.ok()) return FailWith(assessment->error);
  std::printf("configuration %s (cost %.0f)\n", config->ToString().c_str(),
              assessment->cost);
  for (size_t x = 0; x < env.num_server_types(); ++x) {
    const double w = assessment->performability.expected_waiting[x];
    std::printf("  %-10s W^Y = %s\n", env.servers.type(x).name.c_str(),
                std::isinf(w) ? "saturated" : FormatMinutes(w).c_str());
  }
  std::printf("  availability %.8f (downtime %s/year)\n",
              assessment->performability.availability,
              FormatMinutes(UnavailabilityToDowntimeMinutesPerYear(
                                1.0 - assessment->performability.availability))
                  .c_str());
  std::printf("  P(saturated) %.3g, P(degraded) %.3g\n",
              assessment->performability.prob_saturated,
              assessment->performability.prob_degraded);
  if (!assessment->contingencies.empty()) {
    std::printf("  survivability:\n");
    for (const configtool::ContingencyAssessment& c :
         assessment->contingencies) {
      const double w = c.max_expected_waiting;
      std::printf("    %-20s availability %.8f, W = %s [%s]\n",
                  c.label.c_str(), c.availability,
                  std::isinf(w) ? "saturated" : FormatMinutes(w).c_str(),
                  c.satisfied ? "ok" : "violated");
    }
  }
  std::printf("verdict: %s\n",
              assessment->Satisfies() ? "goals met" : "goals NOT met");
  return assessment->Satisfies() ? 0 : 3;
}

int Recommend(const workflow::Environment& env, const Flags& flags) {
  auto tool_options = ToolOptionsFromFlags(flags);
  if (!tool_options.ok()) return FailWith(tool_options.status());
  auto tool = configtool::ConfigurationTool::Create(env, *tool_options);
  if (!tool.ok()) return FailWith(tool.status());
  configtool::SearchConstraints constraints;
  const int max_replicas =
      static_cast<int>(flags.GetDouble("max-replicas", 8));
  constraints.max_replicas.assign(env.num_server_types(), max_replicas);
  const configtool::Goals goals = GoalsFromFlags(flags);
  const std::string method = flags.Get("method", "greedy");
  configtool::AnnealingOptions annealing;
  annealing.iterations =
      static_cast<int>(flags.GetDouble("iterations", annealing.iterations));
  configtool::SearchOptions search;
  search.deadline_seconds = flags.GetDouble("deadline", 0.0);
  search.cancel = &g_cancel;

  // Crash-safe checkpointing: the memoized assessment cache is the
  // search's durable progress (see configtool/checkpoint.h). `--resume`
  // restores it; periodic and on-signal checkpoints persist it.
  const std::string checkpoint_path = flags.Get("checkpoint", "");
  uint64_t fingerprint = 0;
  // Deterministic crash injection for the chaos harness: SIGKILL
  // ourselves after the Nth checkpoint write (undocumented).
  const int crash_after =
      static_cast<int>(flags.GetDouble("crash-after-checkpoints", 0));
  int checkpoints_written = 0;
  Status checkpoint_error;
  if (!checkpoint_path.empty()) {
    fingerprint = configtool::SearchFingerprint(
        env, goals, constraints, configtool::CostModel::Uniform(), method,
        method == "annealing" ? &annealing : nullptr);
    if (flags.Has("resume")) {
      auto resumed = configtool::ResumeSearchFrom(*tool, checkpoint_path,
                                                  fingerprint, method);
      if (resumed.ok()) {
        std::fprintf(stderr,
                     "wfmsctl: resumed from %s (%zu cached assessments, "
                     "%zu cached failures)\n",
                     checkpoint_path.c_str(), resumed->cached_reports,
                     resumed->cached_failures);
      } else if (resumed.status().code() != StatusCode::kNotFound) {
        return FailWith(resumed.status());  // stale or corrupt: refuse
      }
      // NotFound: nothing to resume yet; run from scratch.
    }
    search.checkpoint_interval_seconds =
        flags.GetDouble("checkpoint-interval", 60.0);
    search.on_checkpoint = [&] {
      const Status written = configtool::WriteSearchCheckpoint(
          checkpoint_path, *tool, fingerprint, method);
      if (!written.ok() && checkpoint_error.ok()) {
        checkpoint_error = written;  // surfaced after the search returns
      }
      if (written.ok() && crash_after > 0 &&
          ++checkpoints_written >= crash_after) {
        std::raise(SIGKILL);
      }
    };
  }

  Result<configtool::SearchResult> result =
      Status::InvalidArgument("unknown --method '" + method + "'");
  const configtool::CostModel cost = configtool::CostModel::Uniform();
  if (method == "greedy") {
    result = tool->GreedyMinCost(goals, constraints, cost, search);
  } else if (method == "greedy-site") {
    configtool::SiteSearchConstraints site_constraints;
    site_constraints.max_per_type = max_replicas;
    if (flags.Has("min-per-site")) {
      for (const std::string& part :
           SplitString(flags.Get("min-per-site", ""), ',')) {
        int value = 0;
        if (!ParseInt(part, &value)) {
          return FailWith(Status::InvalidArgument(
              "bad --min-per-site entry '" + part + "'"));
        }
        site_constraints.min_per_site.push_back(value);
      }
    }
    result = tool->GreedySiteMinCost(goals, site_constraints, cost, search);
  } else if (method == "exhaustive") {
    result = tool->ExhaustiveMinCost(goals, constraints, cost, search);
  } else if (method == "annealing") {
    result = tool->AnnealingMinCost(goals, constraints, cost, annealing,
                                    search);
  } else if (method == "bnb") {
    result = tool->BranchAndBoundMinCost(goals, constraints, cost, search);
  }
  if (!result.ok()) return FailWith(result.status());
  if (!checkpoint_error.ok()) return FailWith(checkpoint_error);

  const bool cancelled =
      result->termination.code() == StatusCode::kCancelled;
  if (!checkpoint_path.empty() && cancelled) {
    // Final checkpoint carries the best-so-far so an operator can inspect
    // it without resuming.
    const Status written = configtool::WriteSearchCheckpoint(
        checkpoint_path, *tool, fingerprint, method, &*result);
    if (!written.ok()) return FailWith(written);
    std::fprintf(stderr, "wfmsctl: interrupted; checkpoint written to %s\n",
                 checkpoint_path.c_str());
  }
  std::printf("%s", tool->RenderRecommendation(*result).c_str());
  if (flags.Has("verbose")) {
    // Cache accounting is read back from the metrics registry — the same
    // counters --metrics-out exports — so stderr and the machine-readable
    // snapshot can never disagree. The counts are mirrored at the exact
    // sites that maintain the tool's own cache_stats() atomics.
    const metrics::MetricsSnapshot snap =
        metrics::MetricsRegistry::Global().Snapshot();
    std::fprintf(
        stderr,
        "cache: %llu entries, %llu hits, %llu misses (%llu of %llu "
        "evaluations served from cache)\n",
        static_cast<unsigned long long>(
            snap.gauge("wfms_configtool_cache_entries")),
        static_cast<unsigned long long>(
            snap.counter("wfms_configtool_cache_hits_total")),
        static_cast<unsigned long long>(
            snap.counter("wfms_configtool_cache_misses_total")),
        static_cast<unsigned long long>(
            snap.counter("wfms_configtool_search_cache_hits_total")),
        static_cast<unsigned long long>(
            snap.counter("wfms_configtool_candidates_assessed_total")));
    if (!result->failed_candidates.empty()) {
      // The counter is incremented exactly where a cause is recorded, so
      // it equals the number of lines below.
      std::fprintf(stderr, "failed candidates (%llu):\n",
                   static_cast<unsigned long long>(snap.counter(
                       "wfms_configtool_candidates_failed_total")));
      for (const configtool::FailedCandidate& failed :
           result->failed_candidates) {
        std::fprintf(stderr, "  %s: %s [%s, solver rung: %s]\n",
                     failed.config.ToString().c_str(),
                     failed.error.ToString().c_str(),
                     failed.numerical ? "numerical" : "structural",
                     failed.retried_exact
                         ? "iterative cascade + exact LU retry"
                         : "iterative cascade");
      }
    }
  }
  if (cancelled) return 6;
  return result->satisfied ? 0 : 3;
}

int Simulate(const workflow::Environment& env, const Flags& flags) {
  auto config = ParseConfig(flags.Get("config", ""), env.num_server_types(),
                            env.topology.num_sites());
  if (!config.ok()) return FailWith(config.status());
  sim::SimulationOptions options;
  options.config = *config;
  options.duration = flags.GetDouble("duration", 50000.0);
  options.warmup = flags.GetDouble("warmup", options.duration * 0.1);
  options.seed = static_cast<uint64_t>(flags.GetDouble("seed", 1.0));
  options.enable_failures = !flags.Has("no-failures");
  options.record_audit_trail = flags.Has("trail-out");
  if (flags.Has("bind-instances")) {
    options.dispatch = sim::DispatchPolicy::kPerInstanceBinding;
  }
  options.checkpoint_path = flags.Get("checkpoint", "");
  options.checkpoint_every_events =
      static_cast<int64_t>(flags.GetDouble("checkpoint-events", 100000.0));
  options.resume = flags.Has("resume");
  options.cancel = &g_cancel;
  if (flags.Has("faults")) {
    const std::string path = flags.Get("faults", "");
    std::ifstream file(path);
    if (!file) {
      return FailWith(
          Status::NotFound("cannot open fault schedule '" + path + "'"));
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto schedule =
        sim::ParseFaultSchedule(buffer.str(), env.servers, &env.topology);
    if (!schedule.ok()) return FailWith(schedule.status());
    options.faults = *std::move(schedule);
  }
  if (flags.Has("load")) {
    const std::string path = flags.Get("load", "");
    std::ifstream file(path);
    if (!file) {
      return FailWith(
          Status::NotFound("cannot open load schedule '" + path + "'"));
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto schedule = sim::ParseLoadSchedule(buffer.str(), env.workflows);
    if (!schedule.ok()) return FailWith(schedule.status());
    options.load = *std::move(schedule);
  }
  auto simulator = sim::Simulator::Create(env, options);
  if (!simulator.ok()) return FailWith(simulator.status());
  auto result = simulator->Run();
  if (!result.ok()) return FailWith(result.status());
  std::printf("simulated %s for %s (%lld events)\n",
              config->ToString().c_str(),
              FormatMinutes(options.duration).c_str(),
              static_cast<long long>(result->events_executed));
  for (size_t x = 0; x < env.num_server_types(); ++x) {
    const auto& stats = result->servers[x];
    std::printf(
        "  %-10s util %.3f, mean wait %s (n=%lld), failovers %lld, "
        "requeued %lld\n",
        env.servers.type(x).name.c_str(), result->utilization[x],
        FormatMinutes(stats.waiting_time.mean()).c_str(),
        static_cast<long long>(stats.waiting_time.count()),
        static_cast<long long>(stats.failovers),
        static_cast<long long>(stats.requeued));
  }
  for (const auto& [name, wf] : result->workflows) {
    std::printf("  workflow %-8s completed %lld, mean turnaround %s\n",
                name.c_str(), static_cast<long long>(wf.completed),
                FormatMinutes(wf.turnaround.mean()).c_str());
  }
  std::printf("  observed availability %.6f\n",
              result->observed_availability);
  if (!options.faults.empty()) {
    auto prescribed = options.faults.PrescribedAvailability(
        *config, env.num_server_types(), options.warmup, options.duration,
        &env.topology);
    if (prescribed.ok()) {
      std::printf("  prescribed availability %.6f (scripted faults)\n",
                  *prescribed);
    }
  }
  if (flags.Has("trail-out")) {
    const std::string path = flags.Get("trail-out", "");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write trail to '%s'\n", path.c_str());
      return 1;
    }
    out << result->trail.Serialize();
    std::printf("  audit trail (%zu records) written to %s\n",
                result->trail.size(), path.c_str());
  }
  return 0;
}

int Calibrate(const workflow::Environment& env, const Flags& flags) {
  const std::string path = flags.Get("trail", "");
  if (path.empty()) {
    std::fprintf(stderr, "calibrate requires --trail <file>\n");
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    return FailWith(Status::NotFound("cannot open trail '" + path + "'"));
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  auto trail = workflow::AuditTrail::Deserialize(buffer.str());
  if (!trail.ok()) return FailWith(trail.status());
  workflow::CalibrationReport report;
  auto calibrated = workflow::CalibrateEnvironment(env, *trail, {}, &report);
  if (!calibrated.ok()) return FailWith(calibrated.status());
  std::fprintf(stderr,
               "calibrated: %d states re-estimated (%d kept), %d server "
               "types, %d workflow rates\n",
               report.states_recalibrated, report.states_kept,
               report.server_types_recalibrated,
               report.workflow_types_recalibrated);
  // The calibrated scenario goes to stdout so it can be piped to a file
  // and fed back into assess/recommend.
  std::printf("%s", workflow::SerializeEnvironment(*calibrated).c_str());
  return 0;
}

int Autotune(const workflow::Environment& env, const Flags& flags) {
  adapt::AutotuneOptions options;
  if (flags.Has("config")) {
    auto config = ParseConfig(flags.Get("config", ""),
                              env.num_server_types(),
                              env.topology.num_sites());
    if (!config.ok()) return FailWith(config.status());
    options.initial = *config;
  } else {
    options.initial = workflow::Configuration::Ones(env.num_server_types());
  }
  options.duration = flags.GetDouble("duration", 20000.0);
  options.epoch = flags.GetDouble("epoch", 2000.0);
  options.seed = static_cast<uint64_t>(flags.GetDouble("seed", 1.0));
  options.enable_failures = !flags.Has("no-failures");
  if (flags.Has("bind-instances")) {
    options.dispatch = sim::DispatchPolicy::kPerInstanceBinding;
  }
  if (flags.Has("load")) {
    const std::string path = flags.Get("load", "");
    std::ifstream file(path);
    if (!file) {
      return FailWith(
          Status::NotFound("cannot open load schedule '" + path + "'"));
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto schedule = sim::ParseLoadSchedule(buffer.str(), env.workflows);
    if (!schedule.ok()) return FailWith(schedule.status());
    options.load = *std::move(schedule);
  }

  options.controller.goals = GoalsFromFlags(flags);
  const int max_replicas =
      static_cast<int>(flags.GetDouble("max-replicas", 8));
  options.controller.constraints.max_replicas.assign(env.num_server_types(),
                                                     max_replicas);
  auto method = adapt::ParseSearchMethod(flags.Get("method", "greedy"));
  if (!method.ok()) return FailWith(method.status());
  options.controller.method = *method;
  options.controller.annealing.iterations = static_cast<int>(
      flags.GetDouble("iterations", options.controller.annealing.iterations));
  options.controller.max_turnaround = flags.GetDouble("max-turnaround", 0.0);
  options.controller.search_deadline_seconds =
      flags.GetDouble("deadline", 0.0);
  options.controller.hysteresis =
      static_cast<int>(flags.GetDouble("hysteresis", 2));
  options.controller.cooldown =
      flags.GetDouble("cooldown", 2.0 * options.epoch);
  options.controller.min_margin_gain =
      flags.GetDouble("min-margin-gain", 0.05);
  options.controller.migration_cost_per_server =
      flags.GetDouble("migration-cost", 0.5);
  options.controller.min_observations =
      static_cast<int>(flags.GetDouble("min-observations", 10));
  options.controller.checkpoint_path = flags.Get("checkpoint", "");
  options.calibrator.window = flags.GetDouble("window", 2.0 * options.epoch);
  options.calibrator.tau = flags.GetDouble("tau", options.epoch);
  options.calibrator.min_observations = options.controller.min_observations;

  auto report = adapt::RunAutotune(env, options);
  if (!report.ok()) return FailWith(report.status());

  std::printf("autotune: initial %s, %s in epochs of %s\n",
              options.initial.ToString().c_str(),
              FormatMinutes(options.duration).c_str(),
              FormatMinutes(options.epoch).c_str());
  for (const adapt::EpochReport& epoch : report->epochs) {
    std::printf("epoch %d [%.0f, %.0f) config %s rates (", epoch.index,
                epoch.start, epoch.end, epoch.config.ToString().c_str());
    for (size_t i = 0; i < epoch.scheduled_rates.size(); ++i) {
      std::printf("%s%.4g", i ? "," : "", epoch.scheduled_rates[i]);
    }
    std::printf(") turnaround %.3f events %llu\n", epoch.observed_turnaround,
                static_cast<unsigned long long>(epoch.events));
    std::printf("  decision: %s\n", epoch.decision.reason.c_str());
  }
  std::printf("final config %s after %d reconfiguration%s (%zu epochs, "
              "%llu events, %llu dropped)\n",
              report->final_config.ToString().c_str(),
              report->reconfigurations,
              report->reconfigurations == 1 ? "" : "s",
              report->epochs.size(),
              static_cast<unsigned long long>(report->events_total),
              static_cast<unsigned long long>(report->dropped_total));
  return 0;
}

// Human summary of the metrics registry, printed to stdout only alongside
// the machine-readable exports (the default stdout stays byte-identical —
// the chaos harness diffs it). Lines appear only for subsystems that ran.
void PrintRunReport(const metrics::MetricsSnapshot& snap,
                    double wall_seconds) {
  std::printf("run report:\n");
  std::printf("  wall time %.3f s\n", wall_seconds);
  const uint64_t assessed =
      snap.counter("wfms_configtool_candidates_assessed_total");
  if (assessed > 0) {
    const uint64_t hits =
        snap.counter("wfms_configtool_search_cache_hits_total");
    std::printf(
        "  candidates assessed %llu (%.1f/s), cache hits %llu (%.1f%%), "
        "failed %llu, pruned %llu\n",
        static_cast<unsigned long long>(assessed),
        wall_seconds > 0.0 ? static_cast<double>(assessed) / wall_seconds
                           : 0.0,
        static_cast<unsigned long long>(hits),
        100.0 * static_cast<double>(hits) / static_cast<double>(assessed),
        static_cast<unsigned long long>(
            snap.counter("wfms_configtool_candidates_failed_total")),
        static_cast<unsigned long long>(
            snap.counter("wfms_configtool_candidates_pruned_total")));
  }
  if (const metrics::HistogramSnapshot* latency =
          snap.histogram("wfms_configtool_assessment_seconds");
      latency != nullptr && latency->count > 0) {
    std::printf("  assessment latency p50 %.3f ms, p99 %.3f ms\n",
                latency->p50 * 1e3, latency->p99 * 1e3);
  }
  const uint64_t solves = snap.counter("wfms_markov_steady_solves_total");
  if (solves > 0) {
    const uint64_t fallbacks =
        snap.counter("wfms_markov_steady_fallbacks_total");
    std::printf(
        "  steady-state solves %llu, fallbacks %llu (%.1f%%), failures "
        "%llu\n",
        static_cast<unsigned long long>(solves),
        static_cast<unsigned long long>(fallbacks),
        100.0 * static_cast<double>(fallbacks) / static_cast<double>(solves),
        static_cast<unsigned long long>(
            snap.counter("wfms_markov_steady_failures_total")));
  }
  const uint64_t sim_events = snap.counter("wfms_sim_events_total");
  if (sim_events > 0) {
    std::printf("  sim events %llu (%.0f events/s, peak queue %.0f)\n",
                static_cast<unsigned long long>(sim_events),
                snap.gauge("wfms_sim_events_per_second"),
                snap.gauge("wfms_sim_event_queue_peak"));
  }
  const uint64_t adapt_evals = snap.counter("wfms_adapt_evaluations_total");
  if (adapt_evals > 0) {
    std::printf(
        "  adapt evaluations %llu, triggers %llu, searches %llu, "
        "reconfigurations %llu (stream events %llu, dropped %llu)\n",
        static_cast<unsigned long long>(adapt_evals),
        static_cast<unsigned long long>(
            snap.counter("wfms_adapt_triggers_total")),
        static_cast<unsigned long long>(
            snap.counter("wfms_adapt_searches_total")),
        static_cast<unsigned long long>(
            snap.counter("wfms_adapt_reconfigurations_total")),
        static_cast<unsigned long long>(
            snap.counter("wfms_adapt_stream_published_total")),
        static_cast<unsigned long long>(
            snap.counter("wfms_adapt_stream_dropped_total")));
  }
  const uint64_t checkpoint_writes =
      snap.counter("wfms_configtool_checkpoint_writes_total") +
      snap.counter("wfms_sim_checkpoint_writes_total");
  if (checkpoint_writes > 0) {
    std::printf("  checkpoint writes %llu\n",
                static_cast<unsigned long long>(checkpoint_writes));
  }
}

// Writes --metrics-out / --trace-out and prints the run report after the
// command finishes. A failed export turns a successful run into exit 1;
// a failed command keeps its own exit code (exports are still attempted —
// the partial snapshot is exactly what an operator wants post-mortem).
int ObservabilityEpilogue(int code, const Flags& flags,
                          double wall_seconds) {
  const std::string metrics_out = flags.Get("metrics-out", "");
  const std::string trace_out = flags.Get("trace-out", "");
  if (metrics_out.empty() && trace_out.empty()) return code;

  const metrics::MetricsSnapshot snap =
      metrics::MetricsRegistry::Global().Snapshot();
  Status export_error;
  if (!metrics_out.empty()) {
    const std::string body =
        flags.Get("metrics-format", "json") == "prometheus"
            ? snap.ToPrometheusText()
            : snap.ToJson();
    std::ofstream out(metrics_out, std::ios::binary);
    if (out) out << body;
    if (!out) {
      export_error =
          Status::Internal("cannot write metrics to '" + metrics_out + "'");
    }
  }
  if (!trace_out.empty()) {
    const Status written = trace::WriteJson(trace_out);
    if (!written.ok() && export_error.ok()) export_error = written;
  }
  PrintRunReport(snap, wall_seconds);
  if (!export_error.ok()) {
    std::fprintf(stderr, "wfmsctl: %s\n",
                 export_error.ToString().c_str());
    if (code == 0) return 1;
  }
  return code;
}

// Client mode (`--connect HOST:PORT`): the command is executed by a
// running wfmsd instead of in-process. Only the protocol ops (ping,
// assess, recommend, autotune) are supported remotely; the scenario is
// passed by name for the builtins and inlined for scenario files, so the
// daemon needs no filesystem access. Dispositions map onto the standard
// exit codes: completed/degraded follow the goal verdict (0 or 3),
// rejected-overloaded / deadline-exceeded / unreachable exit 7, a server
// error exits 4.
int RemoteCommand(const std::string& command, const Flags& flags) {
  const std::string endpoint = flags.Get("connect", "");
  const size_t colon = endpoint.rfind(':');
  int port = 0;
  if (colon == std::string::npos ||
      !ParseInt(endpoint.substr(colon + 1), &port) || port <= 0 ||
      port > 65535) {
    std::fprintf(stderr, "wfmsctl: bad --connect '%s' (HOST:PORT)\n",
                 endpoint.c_str());
    return 2;
  }

  service::Json request = service::Json::Object();
  request.Set("id", service::Json::Str("wfmsctl"));
  request.Set("op", service::Json::Str(command));
  if (flags.Has("tenant")) {
    request.Set("tenant", service::Json::Str(flags.Get("tenant", "")));
  }
  if (command != "ping") {
    const std::string scenario = flags.Get("scenario", "ep");
    if (scenario == "ep" || scenario == "benchmark") {
      request.Set("scenario", service::Json::Str(scenario));
    } else {
      std::ifstream file(scenario);
      if (!file) {
        return FailWith(Status::NotFound("cannot open scenario file '" +
                                         scenario + "'"));
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      request.Set("scenario", service::Json::Str(buffer.str()));
    }
    if (flags.Has("config")) {
      const std::string text = flags.Get("config", "");
      if (text.find('/') != std::string::npos) {
        // Per-site placement: shipped as 'site_config' (type-major); the
        // daemon validates the shape against its scenario's topology.
        service::Json site_config = service::Json::Array();
        size_t sites_per_type = 0;
        for (const std::string& part : SplitString(text, ',')) {
          const std::vector<std::string> per_site = SplitString(part, '/');
          if (sites_per_type == 0) sites_per_type = per_site.size();
          if (per_site.size() != sites_per_type) {
            return FailWith(Status::InvalidArgument(
                "per-site --config entries must all list the same number "
                "of sites"));
          }
          for (const std::string& entry : per_site) {
            int value = 0;
            if (!ParseInt(entry, &value)) {
              return FailWith(Status::InvalidArgument(
                  "bad --config entry '" + entry + "'"));
            }
            site_config.Append(service::Json::Number(value));
          }
        }
        request.Set("site_config", site_config);
      } else {
        service::Json config = service::Json::Array();
        for (const std::string& part : SplitString(text, ',')) {
          int value = 0;
          if (!ParseInt(part, &value)) {
            return FailWith(Status::InvalidArgument("bad --config entry '" +
                                                    part + "'"));
          }
          config.Append(service::Json::Number(value));
        }
        request.Set("config", config);
      }
    }
    request.Set("max_wait",
                service::Json::Number(flags.GetDouble("max-wait", 0.05)));
    request.Set("min_avail",
                service::Json::Number(flags.GetDouble("min-avail", 0.99999)));
    const int survive_sites =
        static_cast<int>(flags.GetDouble("survive-sites", 0));
    if (survive_sites > 0) {
      request.Set("survive_sites", service::Json::Number(survive_sites));
    }
    if (flags.Has("survive-partitions")) {
      request.Set("survive_partitions", service::Json::Bool(true));
    }
    const double degraded_max_wait =
        flags.GetDouble("degraded-max-wait", 0.0);
    if (degraded_max_wait > 0.0) {
      request.Set("degraded_max_wait",
                  service::Json::Number(degraded_max_wait));
    }
    const double degraded_min_avail =
        flags.GetDouble("degraded-min-avail", -1.0);
    if (degraded_min_avail >= 0.0) {
      request.Set("degraded_min_avail",
                  service::Json::Number(degraded_min_avail));
    }
    request.Set("method",
                service::Json::Str(flags.Get("method", "greedy")));
    request.Set("max_replicas",
                service::Json::Number(flags.GetDouble("max-replicas", 8)));
    request.Set("iterations",
                service::Json::Number(flags.GetDouble("iterations", 2000)));
    const double deadline = flags.GetDouble("deadline", 0.0);
    if (deadline > 0.0) {
      request.Set("deadline_seconds", service::Json::Number(deadline));
    }
    if (command == "autotune") {
      request.Set("duration",
                  service::Json::Number(flags.GetDouble("duration", 4000)));
      request.Set("epoch",
                  service::Json::Number(flags.GetDouble("epoch", 1000)));
      request.Set("max_turnaround", service::Json::Number(
                                        flags.GetDouble("max-turnaround", 0)));
    }
  }

  // Distributed tracing (DESIGN.md §13): the trace is minted client-side
  // and shipped in the request, so the daemon's spans and flight-recorder
  // record attach under this invocation's root span. With --trace-out the
  // root span lands in the client trace; merged with the server's
  // --trace-out file the two render as one tree in Perfetto.
  const trace::TraceContext minted = trace::TraceContext::Mint();
  trace::TraceSpan root_span(std::string("wfmsctl/") + command, "client",
                             minted);
  {
    service::Json trace_field = service::Json::Object();
    trace_field.Set("trace_id", service::Json::Str(minted.trace_id_hex()));
    const trace::TraceContext ctx = root_span.context();
    if (ctx.span_id != 0) {
      trace_field.Set("parent_span_id",
                      service::Json::Str(ctx.span_id_hex()));
    }
    request.Set("trace", trace_field);
  }

  service::ClientOptions client_options;
  client_options.host = endpoint.substr(0, colon);
  client_options.port = port;
  client_options.io_timeout_seconds = flags.GetDouble("timeout", 120.0);
  service::Client client(client_options);
  // ping/assess/recommend are pure functions of (scenario, request) — safe
  // to retry under the client's backoff. autotune runs a whole control
  // horizon; it is only retried while the request provably never reached
  // the wire (see service/client.h).
  auto response_line = client.Call(request.Dump(), command != "autotune");
  if (!response_line.ok()) return FailWith(response_line.status());

  auto response = service::Json::Parse(*response_line);
  if (!response.ok()) {
    return FailWith(response.status().WithContext("parsing daemon response"));
  }
  const std::string status = response->GetString("status", "");
  const std::string error = response->GetString("error", "");
  if (status == "rejected-overloaded") {
    std::fprintf(stderr, "wfmsctl: request shed by the daemon: %s\n",
                 error.c_str());
    return 7;
  }
  if (status == "deadline-exceeded") {
    std::fprintf(stderr, "wfmsctl: %s\n", error.c_str());
    return 7;
  }
  if (status == "error") {
    std::fprintf(stderr, "wfmsctl: daemon: %s\n", error.c_str());
    return 4;
  }
  if (status == "degraded") {
    std::fprintf(stderr, "wfmsctl: degraded answer (%s)\n",
                 response->GetString("degrade_reason", "").c_str());
  }
  if (flags.Has("verbose")) {
    // The id to grep for in the daemon's /debug/requests and slow log.
    std::fprintf(stderr, "wfmsctl: trace %s\n",
                 response->GetString("trace_id", "(none)").c_str());
  }
  const service::Json* result = response->Find("result");
  std::printf("%s\n", result != nullptr ? result->Dump().c_str() : "null");
  if (result != nullptr) {
    if (const service::Json* goal = result->Find("satisfies")) {
      return goal->bool_value() ? 0 : 3;
    }
    if (const service::Json* goal = result->Find("satisfied")) {
      return goal->bool_value() ? 0 : 3;
    }
  }
  return 0;
}

/// `wfmsctl corpus`: generate or load a manifest of workflow environments
/// and sweep assess/recommend across them (DESIGN.md §14). Needs no
/// --scenario — the corpus *is* the scenario population.
int Corpus(const Flags& flags) {
  corpus::Manifest manifest;
  const std::string manifest_path = flags.Get("manifest", "");
  if (flags.Has("generate")) {
    const double count = flags.GetDouble("generate", 50.0);
    const double max_tasks = flags.GetDouble("max-tasks", 512.0);
    if (count < 1.0 || max_tasks < 1.0) {
      std::fprintf(stderr,
                   "wfmsctl: --generate and --max-tasks must be >= 1\n");
      return 2;
    }
    manifest = corpus::GenerateManifest(
        static_cast<size_t>(count),
        static_cast<uint64_t>(flags.GetDouble("seed", 42.0)),
        static_cast<size_t>(max_tasks));
    if (!manifest_path.empty()) {
      std::ofstream out(manifest_path);
      if (!out) {
        return FailWith(Status::NotFound("cannot write manifest '" +
                                         manifest_path + "'"));
      }
      out << corpus::ManifestToJson(manifest) << "\n";
    }
  } else if (!manifest_path.empty()) {
    std::ifstream in(manifest_path);
    if (!in) {
      return FailWith(Status::NotFound("cannot open manifest '" +
                                       manifest_path + "'"));
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto loaded = corpus::ManifestFromJson(buffer.str());
    if (!loaded.ok()) return FailWith(loaded.status());
    manifest = *std::move(loaded);
  } else {
    std::fprintf(stderr,
                 "wfmsctl: corpus needs --generate N and/or --manifest "
                 "FILE\n");
    return 2;
  }

  corpus::SweepOptions options;
  options.goals = GoalsFromFlags(flags);
  const std::string mode = flags.Get("mode", "assess");
  if (mode == "assess") {
    options.mode = corpus::SweepMode::kAssess;
  } else if (mode == "recommend") {
    options.mode = corpus::SweepMode::kRecommend;
  } else {
    std::fprintf(stderr, "wfmsctl: bad --mode '%s' (assess|recommend)\n",
                 mode.c_str());
    return 2;
  }
  options.max_replicas =
      static_cast<int>(flags.GetDouble("max-replicas", 4.0));
  auto tool_options = ToolOptionsFromFlags(flags);
  if (!tool_options.ok()) return FailWith(tool_options.status());
  options.lumping = tool_options->availability.solver.lumping;
  options.phase_type_composites = flags.Has("phase-type");
  options.num_threads = static_cast<size_t>(flags.GetDouble("jobs", 0.0));
  options.include_timings = !flags.Has("no-timings");
  options.progress = [](const corpus::EnvironmentResult& r, size_t done,
                        size_t total) {
    std::fprintf(stderr, "corpus: [%zu/%zu] %s %s tasks=%zu %s\n", done,
                 total, r.id.c_str(), r.pattern.c_str(), r.tasks,
                 r.error.empty() ? (r.satisfied ? "ok" : "goals-missed")
                                 : r.error.c_str());
  };

  auto report = corpus::RunSweep(manifest, options);
  if (!report.ok()) return FailWith(report.status());
  const std::string dump =
      corpus::ReportToJson(*report, options.include_timings).Dump();
  const std::string report_path = flags.Get("report", "");
  if (report_path.empty()) {
    std::printf("%s\n", dump.c_str());
  } else {
    std::ofstream out(report_path);
    if (!out) {
      return FailWith(
          Status::NotFound("cannot write report '" + report_path + "'"));
    }
    out << dump << "\n";
  }
  std::fprintf(stderr,
               "corpus: %zu environments, %zu satisfied, %zu errors\n",
               report->results.size(), report->satisfied_count,
               report->error_count);
  return report->error_count == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return Usage();
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {  // --flag=value form
      flags.values[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (arg == "no-failures" || arg == "bind-instances" ||
               arg == "resume" || arg == "verbose" ||
               arg == "survive-partitions" || arg == "phase-type" ||
               arg == "no-timings") {
      // clear+push_back instead of assigning a literal: GCC 12's
      // -Wrestrict misreads the literal assignment as a potential
      // self-overlap and -Werror trips (GCC PR105329).
      std::string& value = flags.values[arg];
      value.clear();
      value.push_back('1');
    } else if (i + 1 < argc) {
      flags.values[arg] = argv[++i];
    } else {
      std::fprintf(stderr, "flag --%s needs a value\n", arg.c_str());
      return Usage();
    }
  }

  const std::string metrics_format = flags.Get("metrics-format", "json");
  if (metrics_format != "json" && metrics_format != "prometheus") {
    std::fprintf(stderr, "bad --metrics-format '%s' (json|prometheus)\n",
                 metrics_format.c_str());
    return Usage();
  }
  // Tracing must be on before the command runs; spans recorded while
  // disabled are dropped at the start site, not filtered at export.
  if (flags.Has("trace-out")) trace::SetEnabled(true);

  // Client mode runs before any local scenario resolution — the daemon
  // owns the scenario (builtins by name, files inlined by RemoteCommand).
  if (flags.Has("connect")) {
    if (command == "ping" || command == "assess" || command == "recommend" ||
        command == "autotune") {
      // The epilogue runs for remote commands too: --trace-out holds the
      // client half of the distributed trace (the root span plus
      // transport time), mergeable with the daemon's own export.
      const auto remote_start = std::chrono::steady_clock::now();
      const int code = RemoteCommand(command, flags);
      return ObservabilityEpilogue(
          code, flags,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        remote_start)
              .count());
    }
    std::fprintf(stderr,
                 "wfmsctl: --connect supports ping, assess, recommend, and "
                 "autotune\n");
    return 2;
  }
  if (command == "ping") {
    std::fprintf(stderr, "wfmsctl: ping needs --connect HOST:PORT\n");
    return 2;
  }

  InstallSignalHandlers();
  const auto run_start = std::chrono::steady_clock::now();
  if (command == "corpus") {
    // The corpus carries its own environments; no --scenario involved.
    const int corpus_code = Corpus(flags);
    const double corpus_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();
    return ObservabilityEpilogue(corpus_code, flags, corpus_wall);
  }
  auto env = LoadScenario(flags.Get("scenario", "ep"));
  if (!env.ok()) return FailWith(env.status());
  int code;
  if (command == "analyze") {
    code = Analyze(*env);
  } else if (command == "assess") {
    code = Assess(*env, flags);
  } else if (command == "recommend") {
    code = Recommend(*env, flags);
  } else if (command == "simulate") {
    code = Simulate(*env, flags);
  } else if (command == "calibrate") {
    code = Calibrate(*env, flags);
  } else if (command == "autotune") {
    code = Autotune(*env, flags);
  } else if (command == "export") {
    std::printf("%s", workflow::SerializeEnvironment(*env).c_str());
    code = 0;
  } else {
    return Usage();
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    run_start)
          .count();
  return ObservabilityEpilogue(code, flags, wall_seconds);
}

}  // namespace
}  // namespace wfms

int main(int argc, char** argv) { return wfms::Main(argc, argv); }

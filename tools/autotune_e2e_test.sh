#!/usr/bin/env bash
# End-to-end check of the closed adaptive loop (`wfmsctl autotune`):
#   1. a mid-run load doubling drives a reconfiguration to a strictly
#      larger, component-wise >= replication vector whose plan predicts
#      the goals met again;
#   2. the run is deterministic: a repeat under the same seed is
#      byte-identical;
#   3. a steady-load control run under the same goals performs ZERO
#      reconfigurations (no flapping);
#   4. the controller's decisions are observable: --metrics-out carries
#      the wfms_adapt_* counters consistent with the printed report.
#
# usage: autotune_e2e_test.sh <wfmsctl> <workdir>
set -eu

WFMSCTL="$1"
WORKDIR="$2/autotune_e2e_test"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

cat > "$WORKDIR/double.schedule" << 'EOF'
# load doubles a third of the way into the run
at 3000 scale-all 2.0
EOF

run_autotune() {
  "$WFMSCTL" autotune --scenario ep --config 1,1,2 \
      --duration 9000 --epoch 1000 --seed 7 --no-failures \
      --max-wait 0.05 --min-avail 0.99 --max-turnaround 250 \
      --hysteresis 1 --cooldown 2000 \
      "$@"
}

echo "== load doubling mid-run reconfigures to a larger vector"
run_autotune --load "$WORKDIR/double.schedule" > "$WORKDIR/shift.txt"
grep -q "final config" "$WORKDIR/shift.txt"

initial_vec="1,1,2"
final_vec=$(sed -n 's/^final config (\([0-9,]*\)).*/\1/p' "$WORKDIR/shift.txt")
reconfigs=$(sed -n 's/^final config [^)]*) after \([0-9]*\) reconfiguration.*/\1/p' \
    "$WORKDIR/shift.txt")
[ -n "$final_vec" ] || { echo "FAIL: no final config line" >&2; exit 1; }
if [ "$reconfigs" -lt 1 ]; then
  echo "FAIL: load doubling caused no reconfiguration" >&2
  cat "$WORKDIR/shift.txt" >&2
  exit 1
fi

# Component-wise >= with a strictly larger total.
initial_total=0; final_total=0
IFS=, read -r -a init_arr <<< "$initial_vec"
IFS=, read -r -a final_arr <<< "$final_vec"
[ "${#init_arr[@]}" -eq "${#final_arr[@]}" ] || {
  echo "FAIL: vector length changed: ($initial_vec) -> ($final_vec)" >&2
  exit 1
}
for idx in "${!init_arr[@]}"; do
  if [ "${final_arr[$idx]}" -lt "${init_arr[$idx]}" ]; then
    echo "FAIL: component $idx shrank: ($initial_vec) -> ($final_vec)" >&2
    exit 1
  fi
  initial_total=$((initial_total + init_arr[idx]))
  final_total=$((final_total + final_arr[idx]))
done
if [ "$final_total" -le "$initial_total" ]; then
  echo "FAIL: total replicas did not grow: ($initial_vec) -> ($final_vec)" >&2
  exit 1
fi

# The applied plan must predict the goals met again.
grep -q "reconfigured: .*, goals met)" "$WORKDIR/shift.txt" || {
  echo "FAIL: no 'goals met' prediction in the applied plan" >&2
  cat "$WORKDIR/shift.txt" >&2
  exit 1
}

echo "== same seed, byte-identical repeat"
run_autotune --load "$WORKDIR/double.schedule" > "$WORKDIR/shift2.txt"
cmp "$WORKDIR/shift.txt" "$WORKDIR/shift2.txt" || {
  echo "FAIL: repeat run differs under the same seed" >&2
  exit 1
}

echo "== steady-load control run never reconfigures"
run_autotune > "$WORKDIR/steady.txt"
grep -q "after 0 reconfigurations" "$WORKDIR/steady.txt" || {
  echo "FAIL: control run reconfigured under steady load" >&2
  cat "$WORKDIR/steady.txt" >&2
  exit 1
}

echo "== controller decisions visible in the metrics export"
run_autotune --load "$WORKDIR/double.schedule" \
    --metrics-out "$WORKDIR/metrics.json" > /dev/null
if command -v python3 > /dev/null; then
  python3 - "$WORKDIR/metrics.json" "$reconfigs" << 'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
counters = doc["counters"]
assert counters["wfms_adapt_epochs_total"] == 9, counters
assert counters["wfms_adapt_evaluations_total"] == 9, counters
assert counters["wfms_adapt_triggers_total"] >= 1, counters
assert counters["wfms_adapt_searches_total"] >= 1, counters
assert counters["wfms_adapt_reconfigurations_total"] == int(sys.argv[2]), counters
assert counters["wfms_adapt_stream_published_total"] > 0, counters
assert counters.get("wfms_adapt_stream_dropped_total", 0) == 0, counters
PYEOF
else
  grep -q "wfms_adapt_reconfigurations_total" "$WORKDIR/metrics.json"
fi

echo "autotune_e2e_test: OK"

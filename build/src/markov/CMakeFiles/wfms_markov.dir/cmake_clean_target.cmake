file(REMOVE_RECURSE
  "libwfms_markov.a"
)

// Scripted load-phase changes for the simulator: a deterministic schedule
// of timed arrival-rate changes per workflow type (or across the whole
// mix), the workload-side twin of sim/fault_schedule. A schedule turns the
// simulator's stationary Poisson arrivals into a phase-type workload — the
// WfBench-style "phase-shifting workload generator" the adaptive
// reconfiguration loop (src/adapt) is exercised against, and a useful
// standalone tool for transient-load experiments.
//
// Text DSL (one event per line; blank lines and '#' comments ignored):
//
//   at <time> rate      <workflow-type> <arrivals-per-minute>
//   at <time> scale     <workflow-type> <factor>   # multiply current rate
//   at <time> scale-all <factor>                   # whole mix
//
// Times are simulation minutes. Events firing at the same instant apply in
// schedule order. A change affects the *next* interarrival draw; an
// arrival already scheduled keeps its drawn time (the memoryless
// approximation is exact when rates only ever increase, and the error is
// one interarrival otherwise).
#ifndef WFMS_SIM_LOAD_SCHEDULE_H_
#define WFMS_SIM_LOAD_SCHEDULE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "workflow/environment.h"

namespace wfms::sim {

enum class LoadAction {
  kSetRate,   // set one workflow type's arrival rate
  kScale,     // multiply one workflow type's current rate
  kScaleAll,  // multiply every workflow type's current rate
};

const char* LoadActionName(LoadAction action);

struct LoadEvent {
  double time = 0.0;
  LoadAction action = LoadAction::kSetRate;
  /// Index into the environment's workflow list; ignored by kScaleAll.
  size_t workflow = 0;
  /// New rate (kSetRate) or multiplicative factor (kScale/kScaleAll).
  double value = 0.0;
};

struct LoadSchedule {
  std::vector<LoadEvent> events;

  bool empty() const { return events.empty(); }

  /// Finite non-negative times, known workflow indices, finite
  /// non-negative rates/factors.
  Status Validate(size_t num_workflows) const;

  /// Events sorted by time (stable: same-instant events keep schedule
  /// order) — the order the simulator applies them in.
  std::vector<LoadEvent> Sorted() const;

  /// The arrival-rate vector in force at `time` (events with time <= the
  /// query instant applied, in order), starting from `base_rates`. This is
  /// the symbolic replay the epoch-based autotune loop and the tests use
  /// as ground truth.
  Result<std::vector<double>> RatesAt(double time,
                                      const std::vector<double>& base_rates)
      const;

  /// The sub-schedule covering [from, to), with event times shifted by
  /// -from, so a window of a long schedule can drive a simulation that
  /// starts its clock at zero.
  LoadSchedule Slice(double from, double to) const;
};

/// Parses the text DSL above, resolving workflow types by name against the
/// environment's workflow list. Errors carry the 1-based line number.
Result<LoadSchedule> ParseLoadSchedule(
    const std::string& text,
    const std::vector<workflow::WorkflowTypeSpec>& workflows);

}  // namespace wfms::sim

#endif  // WFMS_SIM_LOAD_SCHEDULE_H_

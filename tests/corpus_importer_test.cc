#include "corpus/importer.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "corpus/compile.h"
#include "workflow/environment_io.h"

namespace wfms::corpus {
namespace {

std::string Doc(const std::string& tasks) {
  return R"({"name": "w", "schemaVersion": "1.3", "workflow": {"tasks": [)" +
         tasks + "]}}";
}

TEST(CorpusImporterTest, ParsesMinimalTwoTaskWorkflow) {
  const auto dag = ParseWfCommons(Doc(
      R"({"name": "a", "runtimeInSeconds": 30},
         {"name": "b", "runtimeInSeconds": 60, "parents": ["a"],
          "files": [{"name": "f", "sizeInBytes": 1024, "link": "input"},
                    {"name": "g", "sizeInBytes": 2048, "link": "output"}]})"));
  ASSERT_TRUE(dag.ok()) << dag.status();
  ASSERT_EQ(dag->tasks.size(), 2u);
  EXPECT_DOUBLE_EQ(dag->tasks[0].runtime, 0.5);  // seconds -> minutes
  EXPECT_DOUBLE_EQ(dag->tasks[1].runtime, 1.0);
  EXPECT_DOUBLE_EQ(dag->tasks[0].runtime_scv, 1.0);  // default
  EXPECT_DOUBLE_EQ(dag->tasks[1].data_bytes, 3072.0);
  ASSERT_EQ(dag->tasks[1].parents.size(), 1u);
  EXPECT_EQ(dag->tasks[1].parents[0], 0u);
}

TEST(CorpusImporterTest, RejectsDuplicateTaskName) {
  const auto dag = ParseWfCommons(Doc(
      R"({"name": "a", "runtimeInSeconds": 1},
         {"name": "a", "runtimeInSeconds": 2})"));
  ASSERT_FALSE(dag.ok());
  EXPECT_NE(dag.status().message().find("duplicate task name"),
            std::string::npos)
      << dag.status();
  EXPECT_NE(dag.status().message().find("'a'"), std::string::npos);
}

TEST(CorpusImporterTest, RejectsDanglingParentByName) {
  const auto dag = ParseWfCommons(Doc(
      R"({"name": "a", "runtimeInSeconds": 1, "parents": ["ghost"]})"));
  ASSERT_FALSE(dag.ok());
  EXPECT_NE(dag.status().message().find("parent 'ghost' is not a declared"),
            std::string::npos)
      << dag.status();
}

TEST(CorpusImporterTest, RejectsCycleNamingATaskOnIt) {
  const auto dag = ParseWfCommons(Doc(
      R"({"name": "a", "runtimeInSeconds": 1, "parents": ["c"]},
         {"name": "b", "runtimeInSeconds": 1, "parents": ["a"]},
         {"name": "c", "runtimeInSeconds": 1, "parents": ["b"]})"));
  ASSERT_FALSE(dag.ok());
  EXPECT_NE(dag.status().message().find("cycle"), std::string::npos)
      << dag.status();
}

TEST(CorpusImporterTest, RejectsNonPositiveRuntime) {
  const auto dag = ParseWfCommons(Doc(
      R"({"name": "a", "runtimeInSeconds": 0})"));
  ASSERT_FALSE(dag.ok());
  EXPECT_NE(dag.status().message().find("'a'"), std::string::npos)
      << dag.status();
  EXPECT_NE(dag.status().message().find("must be positive"),
            std::string::npos);
}

TEST(CorpusImporterTest, RejectsNonFiniteRuntime) {
  // The JSON codec itself refuses non-finite numbers, so an overflowing
  // literal never reaches the importer as +inf.
  const auto dag = ParseWfCommons(Doc(
      R"({"name": "a", "runtimeInSeconds": 1e999})"));
  EXPECT_FALSE(dag.ok());
}

TEST(CorpusImporterTest, RejectsMissingRuntime) {
  const auto dag = ParseWfCommons(Doc(R"({"name": "a"})"));
  ASSERT_FALSE(dag.ok());
  EXPECT_NE(dag.status().message().find("runtimeInSeconds"),
            std::string::npos)
      << dag.status();
}

TEST(CorpusImporterTest, RejectsReservedAndMalformedTaskNames) {
  EXPECT_FALSE(
      ParseWfCommons(Doc(R"({"name": "init", "runtimeInSeconds": 1})")).ok());
  EXPECT_FALSE(
      ParseWfCommons(Doc(R"({"name": "a b", "runtimeInSeconds": 1})")).ok());
}

TEST(CorpusImporterTest, RejectsStructurallyBrokenDocuments) {
  EXPECT_FALSE(ParseWfCommons("[]").ok());
  EXPECT_FALSE(ParseWfCommons(R"({"workflow": {"tasks": []}})").ok());
  EXPECT_FALSE(ParseWfCommons(R"({"name": "w"})").ok());
  EXPECT_FALSE(ParseWfCommons(R"({"name": "w", "workflow": {}})").ok());
  EXPECT_FALSE(
      ParseWfCommons(R"({"name": "w", "workflow": {"tasks": []}})").ok());
}

// --- Fixture goldens -------------------------------------------------------
//
// Each WfCommons fixture under tests/data/ compiles to a golden
// environment dump that is byte-compared. Regenerate after an intentional
// compiler change with:
//   WFMS_REGENERATE_GOLDEN=1 ./tests/corpus_importer_test

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void CheckGolden(const std::string& stem) {
  const std::string data_dir = WFMS_TEST_DATA_DIR;
  const std::string fixture = data_dir + "/wfcommons_" + stem + ".json";
  const std::string golden = data_dir + "/golden_" + stem + ".wfms";

  const auto dag = ParseWfCommons(ReadFile(fixture));
  ASSERT_TRUE(dag.ok()) << dag.status();
  const auto env = CompileDag(*dag);
  ASSERT_TRUE(env.ok()) << env.status();
  const std::string dump = workflow::SerializeEnvironment(*env);

  if (std::getenv("WFMS_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(golden, std::ios::binary);
    out << dump;
    ASSERT_TRUE(out.good()) << "cannot write " << golden;
    GTEST_SKIP() << "regenerated " << golden;
  }
  EXPECT_EQ(dump, ReadFile(golden)) << "golden mismatch for " << stem
                                    << "; see regeneration note above";
  // The golden itself must parse back into a valid environment.
  const auto reparsed = workflow::ParseEnvironment(dump);
  EXPECT_TRUE(reparsed.ok()) << reparsed.status();
}

TEST(CorpusImporterTest, ChainFixtureMatchesGolden) { CheckGolden("chain"); }

TEST(CorpusImporterTest, ForkJoinFixtureMatchesGolden) {
  CheckGolden("forkjoin");
}

TEST(CorpusImporterTest, MixedFixtureMatchesGolden) { CheckGolden("mixed"); }

}  // namespace
}  // namespace wfms::corpus

file(REMOVE_RECURSE
  "CMakeFiles/wfms_common.dir/logging.cc.o"
  "CMakeFiles/wfms_common.dir/logging.cc.o.d"
  "CMakeFiles/wfms_common.dir/random.cc.o"
  "CMakeFiles/wfms_common.dir/random.cc.o.d"
  "CMakeFiles/wfms_common.dir/statistics.cc.o"
  "CMakeFiles/wfms_common.dir/statistics.cc.o.d"
  "CMakeFiles/wfms_common.dir/status.cc.o"
  "CMakeFiles/wfms_common.dir/status.cc.o.d"
  "CMakeFiles/wfms_common.dir/string_util.cc.o"
  "CMakeFiles/wfms_common.dir/string_util.cc.o.d"
  "CMakeFiles/wfms_common.dir/time_units.cc.o"
  "CMakeFiles/wfms_common.dir/time_units.cc.o.d"
  "libwfms_common.a"
  "libwfms_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

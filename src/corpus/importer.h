// WfCommons-style workflow import (DESIGN.md §14). Accepts the community
// JSON format of Coleman et al. (wfformat v1.3 layout):
//
//   {
//     "name": "epigenomics-100",
//     "workflow": {
//       "tasks": [
//         { "name": "t0001",
//           "runtimeInSeconds": 12.5,
//           "runtimeScv": 1,                  // our moment extension
//           "parents": ["t0000"],
//           "files": [ {"name": "f1", "sizeInBytes": 4096,
//                       "link": "input"} ] },
//         ...
//       ]
//     }
//   }
//
// Field mapping (full table in DESIGN.md §14): runtimeInSeconds / 60
// becomes the task's mean runtime in model minutes; the optional
// runtimeScv (default 1 = exponential) is the runtime's squared
// coefficient of variation; file sizes (input and output) sum into
// Task::data_bytes; parents name earlier tasks. Validation failures carry
// the offending task and field name.
#ifndef WFMS_CORPUS_IMPORTER_H_
#define WFMS_CORPUS_IMPORTER_H_

#include <string_view>

#include "common/result.h"
#include "corpus/dag.h"

namespace wfms::corpus {

/// Parses and validates one WfCommons-style document. The returned DAG has
/// passed TaskDag::Validate() — cycles, dangling parents, duplicate names,
/// and non-finite runtimes are all rejected with named errors.
Result<TaskDag> ParseWfCommons(std::string_view json_text);

}  // namespace wfms::corpus

#endif  // WFMS_CORPUS_IMPORTER_H_

// Transient analysis of the workflow CTMC (§4.2.1 of the paper): the
// Markov reward model that yields the expected number of service requests
// a workflow instance generates, computed via uniformization and taboo
// probabilities, with the embedded-jump-chain fundamental matrix as an
// independent exact baseline.
#ifndef WFMS_MARKOV_TRANSIENT_H_
#define WFMS_MARKOV_TRANSIENT_H_

#include "common/result.h"
#include "linalg/vector.h"
#include "markov/absorbing_ctmc.h"

namespace wfms::markov {

struct RewardOptions {
  /// Stop the step summation once the probability of *not* yet having been
  /// absorbed falls below this (the paper suggests bounding z_max so that
  /// absorption has occurred with e.g. 99 percent probability; the default
  /// is much tighter so results are effectively exact).
  double residual_mass_threshold = 1e-12;
  /// Hard cap on the number of uniformized steps.
  int max_steps = 1000000;
};

struct RewardResult {
  /// Expected total reward accumulated until absorption.
  double expected_reward = 0.0;
  /// Number of uniformized steps actually summed (the paper's z_max).
  int steps = 0;
  /// Unabsorbed probability mass remaining at the last step — an upper
  /// bound indicator of truncation error.
  double residual_mass = 0.0;
};

/// Expected reward earned until absorption when entering state s yields
/// reward `entry_rewards[s]` (§4.2.1): the initial state's reward is earned
/// once at start, and every subsequent *entry* into a state earns that
/// state's reward. The absorbing state's reward is ignored.
///
///   r = l_0 + (1/v) * sum_z sum_{a != A} taboo_p(z)_{0a}
///                      * sum_{b != A, b != a} q_ab * l_b
///
/// computed with taboo probabilities of the uniformized chain.
Result<RewardResult> ExpectedRewardUntilAbsorption(
    const AbsorbingCtmc& chain, const linalg::Vector& entry_rewards,
    const RewardOptions& options = {});

/// Expected number of entries into each state until absorption, starting
/// from the chain's initial state (initial occupancy counts as one entry).
/// Exact, via the fundamental matrix of the embedded jump chain. The
/// absorbing state's entry is 0.
Result<linalg::Vector> ExpectedStateVisits(const AbsorbingCtmc& chain);

/// Determines the paper's z_max: the smallest number of uniformized steps
/// after which the chain has been absorbed with probability at least
/// `confidence` (default 0.99), capped at options.max_steps.
Result<int> AbsorptionStepBound(const AbsorbingCtmc& chain,
                                double confidence = 0.99,
                                int max_steps = 1000000);

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_TRANSIENT_H_

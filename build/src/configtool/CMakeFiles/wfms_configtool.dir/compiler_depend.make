# Empty compiler generated dependencies file for wfms_configtool.
# This may be replaced when dependencies are built.

// Scripted fault injection: deterministic timed crash/repair/outage
// events that replace the simulator's random failure processes, and the
// symbolic PrescribedAvailability replay that cross-validates what the
// simulator observes.
#include "sim/fault_schedule.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "workflow/scenarios.h"

namespace wfms::sim {
namespace {

using workflow::Configuration;
using workflow::Environment;

SimulationResult RunSim(const Environment& env, SimulationOptions options) {
  auto sim = Simulator::Create(env, std::move(options));
  EXPECT_TRUE(sim.ok()) << sim.status();
  auto result = sim->Run();
  EXPECT_TRUE(result.ok()) << result.status();
  return *std::move(result);
}

FaultEvent Event(double time, FaultAction action, size_t type,
                 int index = 0) {
  FaultEvent event;
  event.time = time;
  event.action = action;
  event.server_type = type;
  event.server_index = index;
  return event;
}

TEST(FaultScheduleTest, PrescribedAvailabilityClosedForm) {
  // One replica per type; the engine (type 1) is down for 100 of the
  // 1000 measured minutes -> availability 0.9.
  FaultSchedule schedule;
  schedule.events = {Event(100.0, FaultAction::kCrash, 1),
                     Event(200.0, FaultAction::kRepair, 1)};
  const Configuration config({1, 1, 1});
  auto availability =
      schedule.PrescribedAvailability(config, 3, /*warmup=*/0.0,
                                      /*duration=*/1000.0);
  ASSERT_TRUE(availability.ok()) << availability.status();
  EXPECT_DOUBLE_EQ(*availability, 0.9);

  // A single crash with 2 replicas keeps the type (and the WFMS) up.
  FaultSchedule redundant;
  redundant.events = {Event(100.0, FaultAction::kCrash, 1)};
  auto still_up = redundant.PrescribedAvailability(Configuration({1, 2, 1}),
                                                   3, 0.0, 1000.0);
  ASSERT_TRUE(still_up.ok());
  EXPECT_DOUBLE_EQ(*still_up, 1.0);

  // A whole-type outage takes the WFMS down regardless of replication.
  FaultSchedule outage;
  outage.events = {Event(100.0, FaultAction::kTypeOutage, 1),
                   Event(350.0, FaultAction::kTypeRestore, 1)};
  auto with_outage = outage.PrescribedAvailability(Configuration({1, 2, 1}),
                                                   3, 0.0, 1000.0);
  ASSERT_TRUE(with_outage.ok());
  EXPECT_DOUBLE_EQ(*with_outage, 0.75);
}

TEST(FaultScheduleTest, ValidateRejectsBadEvents) {
  const Configuration config({2, 2, 2});
  FaultSchedule bad_type;
  bad_type.events = {Event(1.0, FaultAction::kCrash, 7)};
  EXPECT_FALSE(bad_type.Validate(config, 3).ok());

  FaultSchedule bad_index;
  bad_index.events = {Event(1.0, FaultAction::kCrash, 0, 2)};
  EXPECT_FALSE(bad_index.Validate(config, 3).ok());

  FaultSchedule bad_time;
  bad_time.events = {Event(-1.0, FaultAction::kCrash, 0)};
  EXPECT_FALSE(bad_time.Validate(config, 3).ok());

  FaultSchedule ok;
  ok.events = {Event(1.0, FaultAction::kCrash, 0, 1),
               Event(2.0, FaultAction::kTypeOutage, 2)};
  EXPECT_TRUE(ok.Validate(config, 3).ok());
}

TEST(FaultScheduleTest, ParsesDslWithLineNumberedErrors) {
  auto env = workflow::EpEnvironment();
  ASSERT_TRUE(env.ok());
  auto schedule = ParseFaultSchedule(R"(# schedule
at 100 crash engine 1
at 200 repair engine 1

at 5000 outage app
at 5500 restore app
)",
                                     env->servers);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  ASSERT_EQ(schedule->events.size(), 4u);
  EXPECT_EQ(schedule->events[0].action, FaultAction::kCrash);
  EXPECT_EQ(schedule->events[0].server_index, 1);
  EXPECT_EQ(schedule->events[2].action, FaultAction::kTypeOutage);

  auto bad_verb = ParseFaultSchedule("at 1 explode engine", env->servers);
  ASSERT_FALSE(bad_verb.ok());
  EXPECT_EQ(bad_verb.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad_verb.status().ToString().find("line 1"), std::string::npos);

  auto bad_type = ParseFaultSchedule("\nat 1 crash warp-core", env->servers);
  ASSERT_FALSE(bad_type.ok());
  EXPECT_NE(bad_type.status().ToString().find("line 2"), std::string::npos);

  auto extra_index =
      ParseFaultSchedule("at 1 outage engine 1", env->servers);
  EXPECT_FALSE(extra_index.ok());
}

TEST(FaultScheduleTest, HardeningRejectsWithLineNumbers) {
  auto env = workflow::GeoEpEnvironment();
  ASSERT_TRUE(env.ok());
  const auto expect_error_at = [&](const std::string& text, int line,
                                   const std::string& needle) {
    auto parsed = ParseFaultSchedule(text, env->servers, &env->topology);
    ASSERT_FALSE(parsed.ok()) << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
    const std::string message = parsed.status().ToString();
    EXPECT_NE(message.find("line " + std::to_string(line)), std::string::npos)
        << message;
    EXPECT_NE(message.find(needle), std::string::npos) << message;
  };

  // Out-of-order timestamps.
  expect_error_at("at 100 crash engine\nat 50 crash comm\n", 2,
                  "out-of-order timestamp");
  // Unknown server and site names.
  expect_error_at("at 1 crash warp-core\n", 1, "unknown server type");
  expect_error_at("at 1 site-crash MARS\n", 1, "unknown site");
  expect_error_at("at 1 partition EU|MARS\n", 1, "unknown site");
  // Overlapping crash windows: a replica or site crashed again before its
  // scripted repair.
  expect_error_at("at 1 crash engine 0\nat 2 crash engine 0\n", 2,
                  "overlapping crash window");
  expect_error_at(
      "at 1 site-crash EU\nat 2 site-repair EU\nat 3 site-crash EU\n"
      "at 4 site-crash EU\n",
      4, "overlapping crash window");
  // A site cannot partition from itself.
  expect_error_at("at 1 partition EU|EU\n", 1, "partitioned from itself");

  // Site directives without a topology are errors, with the line number.
  auto no_topology =
      ParseFaultSchedule("at 1 site-crash EU", env->servers, nullptr);
  ASSERT_FALSE(no_topology.ok());
  EXPECT_NE(no_topology.status().ToString().find("sites section"),
            std::string::npos);

  // Repair closes the window; distinct replicas do not collide.
  auto ok = ParseFaultSchedule(
      "at 1 crash engine 0\nat 2 repair engine 0\nat 3 crash engine 0\n"
      "at 3 crash engine 1\nat 4 site-crash EU\nat 5 site-repair EU\n"
      "at 6 site-crash EU\n",
      env->servers, &env->topology);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(FaultScheduleTest, EveryPrefixOfAValidScheduleParses) {
  auto env = workflow::GeoEpEnvironment();
  ASSERT_TRUE(env.ok());
  const std::string text =
      "# geo schedule\n"
      "mode overlay\n"
      "at 100 partition EU|US\n"
      "at 160 heal EU|US\n"
      "at 2000 site-crash EU\n"
      "\n"
      "at 2500 site-repair EU\n"
      "at 3000 site-crash US\n";
  auto full = ParseFaultSchedule(text, env->servers, &env->topology);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_EQ(full->events.size(), 5u);

  // Property: the hardening state (chronology, open crash windows) is
  // prefix-closed, so truncating a valid schedule after any complete line
  // still parses — a partially written schedule file never turns into a
  // hard error — and yields a prefix of the full event list.
  size_t newline = 0;
  while ((newline = text.find('\n', newline)) != std::string::npos) {
    ++newline;
    const std::string prefix = text.substr(0, newline);
    auto parsed = ParseFaultSchedule(prefix, env->servers, &env->topology);
    ASSERT_TRUE(parsed.ok())
        << parsed.status() << " for prefix:\n" << prefix;
    ASSERT_LE(parsed->events.size(), full->events.size());
    for (size_t i = 0; i < parsed->events.size(); ++i) {
      EXPECT_EQ(parsed->events[i].time, full->events[i].time);
      EXPECT_EQ(parsed->events[i].action, full->events[i].action);
    }
  }

  // Character-level truncation may cut a line mid-token: the parser must
  // answer ok or a line-numbered parse error — never anything else.
  for (size_t cut = 0; cut <= text.size(); ++cut) {
    auto parsed = ParseFaultSchedule(text.substr(0, cut), env->servers,
                                     &env->topology);
    if (parsed.ok()) continue;
    EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
    EXPECT_NE(parsed.status().ToString().find("line "), std::string::npos)
        << parsed.status();
  }
}

TEST(FaultInjectionTest, WholeTypeOutageDowntimeMatchesPrescribed) {
  auto env = workflow::EpEnvironment();
  ASSERT_TRUE(env.ok());
  SimulationOptions options;
  options.config = Configuration({2, 2, 2});
  options.duration = 40000.0;
  options.warmup = 2000.0;
  options.seed = 3;
  // Whole app tier down for 500 minutes inside the measurement window.
  options.faults.events = {Event(10000.0, FaultAction::kTypeOutage, 2),
                           Event(10500.0, FaultAction::kTypeRestore, 2)};

  auto prescribed = options.faults.PrescribedAvailability(
      options.config, env->num_server_types(), options.warmup,
      options.duration);
  ASSERT_TRUE(prescribed.ok()) << prescribed.status();
  EXPECT_NEAR(*prescribed, 1.0 - 500.0 / 38000.0, 1e-12);

  const SimulationResult result = RunSim(*env, options);
  // ISSUE acceptance: observed downtime within 1% of the prescribed
  // schedule. The gauge integrates the exact same event times, so the
  // match is in fact much tighter.
  EXPECT_NEAR(result.observed_availability, *prescribed,
              0.01 * *prescribed);
  // Work displaced by the outage is parked, not lost: requests submitted
  // during the outage complete after the restore.
  EXPECT_GT(result.servers[2].completed_requests, 0);
}

TEST(FaultInjectionTest, CrashDuringServiceRequeuesRequests) {
  auto env = workflow::EpEnvironment();
  ASSERT_TRUE(env.ok());
  SimulationOptions options;
  options.config = Configuration({2, 2, 2});
  options.duration = 30000.0;
  options.warmup = 1000.0;
  options.seed = 5;
  // Repeatedly crash one app replica (the busiest type) so that some
  // crash lands mid-service; its work must fail over to the survivor.
  for (int i = 0; i < 40; ++i) {
    const double t = 2000.0 + 500.0 * i;
    options.faults.events.push_back(Event(t, FaultAction::kCrash, 2, 0));
    options.faults.events.push_back(
        Event(t + 50.0, FaultAction::kRepair, 2, 0));
  }

  const SimulationResult faulted = RunSim(*env, options);
  EXPECT_GT(faulted.servers[2].requeued, 0);
  EXPECT_GT(faulted.servers[2].failovers, 0);

  // Requeued requests are not lost: throughput stays close to the
  // fault-free run (one of two replicas down 10% of the time).
  SimulationOptions clean = options;
  clean.faults = FaultSchedule();
  clean.enable_failures = false;
  const SimulationResult baseline = RunSim(*env, clean);
  EXPECT_GT(faulted.servers[2].completed_requests,
            baseline.servers[2].completed_requests * 9 / 10);
}

TEST(FaultInjectionTest, ScriptedRunsAreBitIdentical) {
  auto env = workflow::EpEnvironment();
  ASSERT_TRUE(env.ok());
  SimulationOptions options;
  options.config = Configuration({1, 1, 1});
  options.duration = 8000.0;
  options.warmup = 500.0;
  options.seed = 17;
  options.faults.events = {Event(1000.0, FaultAction::kCrash, 1),
                           Event(1100.0, FaultAction::kRepair, 1),
                           Event(4000.0, FaultAction::kTypeOutage, 2),
                           Event(4200.0, FaultAction::kTypeRestore, 2)};

  const SimulationResult a = RunSim(*env, options);
  const SimulationResult b = RunSim(*env, options);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (size_t x = 0; x < a.servers.size(); ++x) {
    EXPECT_EQ(a.servers[x].completed_requests,
              b.servers[x].completed_requests);
    EXPECT_EQ(a.servers[x].requeued, b.servers[x].requeued);
    EXPECT_EQ(a.servers[x].failovers, b.servers[x].failovers);
    EXPECT_EQ(a.servers[x].waiting_time.count(),
              b.servers[x].waiting_time.count());
    EXPECT_DOUBLE_EQ(a.servers[x].waiting_time.mean(),
                     b.servers[x].waiting_time.mean());
    EXPECT_DOUBLE_EQ(a.servers[x].up_servers.time_average(),
                     b.servers[x].up_servers.time_average());
  }
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.observed_availability, b.observed_availability);

  // With a single replica per type the dispatch policy is irrelevant:
  // stats must be bit-identical across policies too.
  SimulationOptions bound = options;
  bound.dispatch = DispatchPolicy::kPerInstanceBinding;
  const SimulationResult c = RunSim(*env, bound);
  for (size_t x = 0; x < a.servers.size(); ++x) {
    EXPECT_EQ(a.servers[x].completed_requests,
              c.servers[x].completed_requests);
    EXPECT_DOUBLE_EQ(a.servers[x].waiting_time.mean(),
                     c.servers[x].waiting_time.mean());
  }
  EXPECT_EQ(a.events_executed, c.events_executed);
}

TEST(FaultInjectionTest, ScheduleDisablesRandomFailures) {
  // With a schedule and enable_failures=true, only scripted events fire:
  // the up-server gauge outside the scripted windows must pin at the full
  // replication level.
  auto env = workflow::EpEnvironment();
  ASSERT_TRUE(env.ok());
  SimulationOptions options;
  options.config = Configuration({1, 1, 1});
  options.duration = 5000.0;
  options.warmup = 100.0;
  options.seed = 23;
  options.enable_failures = true;
  options.faults.events = {Event(6000.0, FaultAction::kCrash, 0)};  // after end
  const SimulationResult result = RunSim(*env, options);
  EXPECT_DOUBLE_EQ(result.observed_availability, 1.0);
  for (size_t x = 0; x < result.servers.size(); ++x) {
    EXPECT_DOUBLE_EQ(result.servers[x].up_servers.time_average(), 1.0);
  }
}

}  // namespace
}  // namespace wfms::sim

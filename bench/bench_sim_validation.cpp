// E8 — validation of the §5 availability CTMC against failure-injecting
// discrete-event simulation. Failure rates are accelerated (MTTF 200 min,
// MTTR 10 min) so the observed estimate converges within the simulated
// horizon; the analytic model uses exactly the same rates.

#include <cstdio>

#include "avail/availability_model.h"
#include "sim/simulator.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;
  auto env = workflow::EpEnvironment(/*arrival_rate=*/0.05);
  if (!env.ok()) return 1;
  for (size_t x = 0; x < env->servers.size(); ++x) {
    env->servers.mutable_type(x).failure_rate = 1.0 / 200.0;
    env->servers.mutable_type(x).repair_rate = 1.0 / 10.0;
  }
  auto model = avail::AvailabilityModel::Create(env->servers);
  if (!model.ok()) return 1;

  std::printf("E8: availability, CTMC prediction vs simulation "
              "(accelerated rates: MTTF 200 min, MTTR 10 min)\n\n");
  std::printf("%-10s %12s %12s %10s\n", "config", "analytic", "simulated",
              "rel.err");
  for (const workflow::Configuration& config :
       {workflow::Configuration({1, 1, 1}), workflow::Configuration({2, 1, 1}),
        workflow::Configuration({2, 2, 2}),
        workflow::Configuration({3, 2, 2})}) {
    auto prediction = model->Evaluate(config);
    if (!prediction.ok()) return 1;
    sim::SimulationOptions options;
    options.config = config;
    options.duration = 300000.0;
    options.warmup = 5000.0;
    options.seed = 7;
    auto simulator = sim::Simulator::Create(*env, options);
    if (!simulator.ok()) return 1;
    auto result = simulator->Run();
    if (!result.ok()) return 1;
    const double analytic_unavail = prediction->unavailability;
    const double observed_unavail = 1.0 - result->observed_availability;
    std::printf("%-10s %12.5f %12.5f %10.1f%%\n", config.ToString().c_str(),
                analytic_unavail, observed_unavail,
                analytic_unavail > 0
                    ? 100.0 * (observed_unavail - analytic_unavail) /
                          analytic_unavail
                    : 0.0);
  }
  std::printf("\nexpected shape: simulated unavailability tracks the CTMC "
              "within sampling noise; replication drops it superlinearly.\n");
  return 0;
}

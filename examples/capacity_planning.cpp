// Capacity planning for a growing workload: as the arrival rate of the
// benchmark mix (EP + loan approval + insurance claim) rises, ask the
// configuration tool for the minimum-cost configuration meeting fixed
// performability goals, and report how the bottleneck shifts.
//
// Build & run:  ./build/examples/capacity_planning

#include <cstdio>

#include "common/time_units.h"
#include "configtool/tool.h"
#include "perf/performance_model.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;

  configtool::Goals goals;
  goals.max_waiting_time = 0.1;     // 6 seconds
  goals.min_availability = 0.9999;  // ~53 min/year

  std::printf("%-8s %-14s %6s %6s %-10s %18s\n", "scale", "config", "cost",
              "evals", "bottleneck", "max throughput/min");
  for (double scale : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    auto env = workflow::BenchmarkEnvironment(0.3 * scale, 0.1 * scale,
                                              0.05 * scale);
    if (!env.ok()) {
      std::fprintf(stderr, "%s\n", env.status().ToString().c_str());
      return 1;
    }
    auto tool = configtool::ConfigurationTool::Create(*env);
    if (!tool.ok()) {
      std::fprintf(stderr, "%s\n", tool.status().ToString().c_str());
      return 1;
    }
    configtool::SearchConstraints constraints;
    constraints.max_replicas.assign(env->num_server_types(), 12);
    auto result = tool->GreedyMinCost(goals, constraints);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    // Where would the recommended configuration saturate?
    auto perf = perf::PerformanceModel::Create(*env);
    if (!perf.ok()) return 1;
    auto throughput = perf->MaxSustainableThroughput(result->config);
    const char* bottleneck =
        throughput.ok()
            ? env->servers.type(throughput->bottleneck).name.c_str()
            : "-";
    std::printf("%-8.1f %-14s %6.0f %6d %-10s %18.3f\n", scale,
                result->config.ToString().c_str(), result->cost,
                result->evaluations, bottleneck,
                throughput.ok() ? throughput->max_workflows_per_time_unit
                                : 0.0);
    if (!result->satisfied) {
      std::printf("         (goals not reachable within constraints)\n");
    }
  }
  return 0;
}

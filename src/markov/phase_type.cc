#include "markov/phase_type.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"

namespace wfms::markov {

using linalg::DenseMatrix;
using linalg::Vector;

Vector ErlangExpansion::LiftEntryRewards(const Vector& rewards) const {
  WFMS_CHECK_EQ(origin.size(), chain.num_states());
  Vector lifted(chain.num_states(), 0.0);
  for (size_t i = 0; i < lifted.size(); ++i) {
    if (is_first_stage[i]) lifted[i] = rewards[origin[i]];
  }
  return lifted;
}

Result<ErlangExpansion> ExpandErlangStages(const AbsorbingCtmc& chain,
                                           const std::vector<int>& stages) {
  const size_t n = chain.num_states();
  if (stages.size() != n) {
    return Status::InvalidArgument("stage count vector size mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    if (stages[i] < 1) {
      return Status::InvalidArgument("stage counts must be >= 1");
    }
    if (i == chain.absorbing_state() && stages[i] != 1) {
      return Status::InvalidArgument("absorbing state cannot be expanded");
    }
  }

  // Map original state -> index of its first stage in the expanded chain.
  std::vector<size_t> first_stage(n);
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    first_stage[i] = total;
    total += static_cast<size_t>(stages[i]);
  }

  DenseMatrix p(total, total);
  Vector h(total, 0.0);
  std::vector<std::string> names(total);
  std::vector<size_t> origin(total);
  std::vector<bool> is_first(total, false);

  for (size_t i = 0; i < n; ++i) {
    const auto k = static_cast<size_t>(stages[i]);
    const double stage_time =
        i == chain.absorbing_state()
            ? kInfiniteResidence
            : chain.residence_times()[i] / static_cast<double>(k);
    for (size_t s = 0; s < k; ++s) {
      const size_t idx = first_stage[i] + s;
      origin[idx] = i;
      is_first[idx] = (s == 0);
      h[idx] = stage_time;
      names[idx] = chain.state_name(i);
      // Appended in two steps: GCC 12's -Wrestrict flags the fused
      // literal+number concatenation as a potential self-overlap and
      // -Werror trips on the false positive (GCC PR105329).
      if (k > 1) {
        names[idx] += '#';
        names[idx] += std::to_string(s + 1);
      }
      if (s + 1 < k) {
        p.At(idx, idx + 1) = 1.0;  // advance to next stage
      } else if (i != chain.absorbing_state()) {
        // Last stage: the original state's outgoing distribution, with
        // targets redirected to first stages.
        for (size_t j = 0; j < n; ++j) {
          const double pij = chain.transition_probabilities().At(i, j);
          if (pij > 0.0) p.At(idx, first_stage[j]) = pij;
        }
      }
    }
  }

  auto expanded = AbsorbingCtmc::Create(
      std::move(p), std::move(h), std::move(names),
      first_stage[chain.initial_state()],
      first_stage[chain.absorbing_state()]);
  if (!expanded.ok()) {
    return expanded.status().WithContext("Erlang expansion");
  }
  ErlangExpansion result{*std::move(expanded), std::move(origin),
                         std::move(is_first)};
  return result;
}

int ErlangStagesForScv(double scv, int max_stages) {
  if (max_stages < 1) max_stages = 1;
  if (!std::isfinite(scv) || scv <= 0.0) return 1;
  if (scv >= 1.0) return 1;
  const double k = std::round(1.0 / scv);
  if (k >= static_cast<double>(max_stages)) return max_stages;
  return std::max(1, static_cast<int>(k));
}

}  // namespace wfms::markov

# Empty compiler generated dependencies file for performability_test.
# This may be replaced when dependencies are built.

// Discrete-event simulator of the distributed WFMS — the stand-in for the
// measurements of real WFMS products the paper references (§8). It shares
// *no* solver code with the analytic models: workflow instances walk the
// state charts directly (sampling branches and residence times), activity
// service requests queue at simulated FCFS servers with failure/repair
// processes, and all metrics are observed, not computed.
//
// Correspondence with the analytic models:
//  - residence times are sampled exponentially (the CTMC assumption);
//  - per-activity request counts follow the environment's load table, and
//    requests are spread uniformly over the activity's residence;
//  - service times are lognormal, matching the registry's first two
//    moments (all the M/G/1 model consumes);
//  - failures/repairs are exponential with the registry's rates,
//    independent per server (the §5 availability CTMC's assumption).
#ifndef WFMS_SIM_SIMULATOR_H_
#define WFMS_SIM_SIMULATOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/statistics.h"
#include "common/trace.h"
#include "sim/event_queue.h"
#include "sim/fault_schedule.h"
#include "sim/load_schedule.h"
#include "sim/server_pool.h"
#include "workflow/audit_trail.h"
#include "workflow/configuration.h"
#include "workflow/environment.h"

namespace wfms::sim {

/// How a workflow instance's service requests are assigned to the
/// replicas of a server type.
enum class DispatchPolicy {
  /// Per-request round-robin over the up servers (smooths arrivals).
  kRoundRobin,
  /// The paper's policy (§4.4): all requests of one workflow instance go
  /// to the same server, hashed by instance id "for locality"; failover
  /// probes the next up server.
  kPerInstanceBinding,
};

struct SimulationOptions {
  workflow::Configuration config;
  DispatchPolicy dispatch = DispatchPolicy::kRoundRobin;
  /// Simulated minutes (measurement window ends here).
  double duration = 50000.0;
  /// Statistics before this time are discarded.
  double warmup = 2000.0;
  uint64_t seed = 1;
  /// Emit an audit trail (state visits, service records, arrivals) for the
  /// calibration experiments. Costs memory on long runs.
  bool record_audit_trail = false;
  /// Disable server failures for pure performance experiments.
  bool enable_failures = true;
  /// Sample state residence times exponentially (matching the CTMC
  /// assumption); when false, residences are deterministic.
  bool exponential_residence = true;
  /// Scripted fault injection. A non-empty schedule *replaces* the random
  /// exponential failure/repair processes (regardless of enable_failures):
  /// only the listed events fire, so runs are bit-identical given the same
  /// seed and schedule.
  FaultSchedule faults;
  /// Scripted arrival-rate phase changes (see sim/load_schedule.h). The
  /// environment's rates are the phase-0 baseline; each event retargets
  /// the interarrival draws from its firing time on. Deterministic: the
  /// same seed and schedule replay bit-identically.
  LoadSchedule load;
  /// Online-monitoring hook: when non-null, every audit record (state
  /// visit, service, arrival), instance completion, and server up-count
  /// change is pushed into the sink as it happens, independent of
  /// `record_audit_trail`. Callbacks run on the simulation thread; the
  /// sink must not re-enter the simulator. The sink does not alter the
  /// event trajectory (pure observation).
  workflow::AuditSink* sink = nullptr;
  /// Crash-safe checkpointing (DESIGN.md "Checkpointing and recovery"):
  /// when non-empty, a replay cursor (event count, clock, RNG states, pool
  /// occupancy) is written here atomically every `checkpoint_every_events`
  /// executed events. Checkpoints happen at event boundaries, outside the
  /// queue, so a checkpointed run's event sequence is bit-identical to an
  /// uncheckpointed one.
  std::string checkpoint_path;
  int64_t checkpoint_every_events = 0;
  /// Load `checkpoint_path` (if it exists) before running and validate the
  /// deterministic replay against it when the run reaches the saved
  /// cursor; a divergence (or a checkpoint from a different scenario —
  /// fingerprint mismatch) is a FailedPrecondition, not a silent skew.
  bool resume = false;
  /// Cooperative cancellation, checked at event boundaries. When raised,
  /// Run() writes a final checkpoint (if checkpointing) and returns
  /// StatusCode::kCancelled.
  const std::atomic<bool>* cancel = nullptr;
  /// Request-trace context the run executes under (DESIGN.md §13): the
  /// event-loop span parents into it, so a daemon-triggered simulation
  /// (autotune) appears inside the request's trace tree. Carried
  /// explicitly with the options — like `sink` — never via a
  /// thread-local. Invalid (default) outside a traced request.
  trace::TraceContext trace;
};

struct WorkflowTypeResult {
  int64_t started = 0;
  int64_t completed = 0;
  RunningStats turnaround;
};

struct SimulationResult {
  /// Per server type, aligned with the environment's registry.
  std::vector<ServerPoolStats> servers;
  /// Observed utilization per server (time-avg busy servers / configured).
  std::vector<double> utilization;
  /// Fraction of (post-warmup) time with >= 1 server of every type up.
  double observed_availability = 1.0;
  std::map<std::string, WorkflowTypeResult> workflows;
  workflow::AuditTrail trail;
  int64_t events_executed = 0;
};

class Simulator {
 public:
  /// The environment must outlive the simulator.
  static Result<Simulator> Create(const workflow::Environment& env,
                                  SimulationOptions options);

  /// Runs the full simulation; one-shot (create a new Simulator per run).
  Result<SimulationResult> Run();

 private:
  Simulator(const workflow::Environment* env, SimulationOptions options)
      : env_(env), options_(std::move(options)), rng_(options_.seed) {}

  void ScheduleArrival(size_t workflow_index);
  /// Runs `chart` for `instance`; calls `on_complete` when the chart's
  /// final state finishes.
  void StartChart(const statechart::StateChart* chart, int64_t instance,
                  std::function<void()> on_complete);
  void EnterState(const statechart::StateChart* chart, size_t state_index,
                  int64_t instance, std::shared_ptr<std::function<void()>> on_complete);
  void LeaveState(const statechart::StateChart* chart, size_t state_index,
                  int64_t instance, double enter_time,
                  std::shared_ptr<std::function<void()>> on_complete);
  void IssueRequests(const statechart::ChartState& state, double residence,
                     int64_t instance);
  void UpdateAvailabilityGauge();
  void ApplyLoadEvent(const LoadEvent& event);
  void ApplySiteFaultEvent(const FaultEvent& event);
  /// Replicas of `type` placed at `site` (site-major block mapping),
  /// forced down/up — the non-overlay site-crash/site-repair mechanics.
  void ForceSiteReplicas(size_t site, bool up);

  const workflow::Environment* env_;
  SimulationOptions options_;
  Rng rng_;
  EventQueue queue_;
  std::vector<std::unique_ptr<ServerPool>> pools_;
  TimeWeightedStats all_up_;
  SimulationResult result_;
  int64_t next_instance_id_ = 0;
  /// Current arrival rate per workflow type (starts at the environment's
  /// rates; mutated by the load schedule).
  std::vector<double> arrival_rates_;
  /// Whether an interarrival draw is outstanding for the type — a rate
  /// change from zero must restart the arrival chain exactly once.
  std::vector<char> arrival_pending_;
  /// Multi-site state (empty in single-site runs): the availability gauge
  /// then asks the coverage structure function (workflow::ServingComponent)
  /// instead of the every-type-up test. site_up_[a] is flipped by
  /// site-crash/site-repair events; pair_partitioned_ is indexed by
  /// workflow::PairIndex.
  std::vector<char> site_up_;
  std::vector<char> pair_partitioned_;
};

}  // namespace wfms::sim

#endif  // WFMS_SIM_SIMULATOR_H_

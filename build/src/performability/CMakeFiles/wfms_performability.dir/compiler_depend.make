# Empty compiler generated dependencies file for wfms_performability.
# This may be replaced when dependencies are built.

# Empty dependencies file for statechart_parser_test.
# This may be replaced when dependencies are built.

// The central notion of §2: a system configuration is the vector of
// replication degrees (Y_1, ..., Y_k), one per server type.
#ifndef WFMS_WORKFLOW_CONFIGURATION_H_
#define WFMS_WORKFLOW_CONFIGURATION_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace wfms::workflow {

struct Configuration {
  /// replicas[x] = Y_x, the number of servers of server type x.
  std::vector<int> replicas;

  Configuration() = default;
  explicit Configuration(std::vector<int> y) : replicas(std::move(y)) {}
  /// The minimal configuration: one server of each of `num_types` types.
  static Configuration Ones(size_t num_types) {
    return Configuration(std::vector<int>(num_types, 1));
  }
  /// Uniform replication of every server type.
  static Configuration Uniform(size_t num_types, int degree) {
    return Configuration(std::vector<int>(num_types, degree));
  }

  size_t num_types() const { return replicas.size(); }
  int total_servers() const {
    int total = 0;
    for (int y : replicas) total += y;
    return total;
  }

  /// All Y_x >= 1 and the type count matches.
  Status Validate(size_t num_types) const;

  /// "(2,1,3)".
  std::string ToString() const;

  bool operator==(const Configuration& other) const {
    return replicas == other.replicas;
  }
  bool operator<(const Configuration& other) const {
    return replicas < other.replicas;
  }
};

}  // namespace wfms::workflow

#endif  // WFMS_WORKFLOW_CONFIGURATION_H_

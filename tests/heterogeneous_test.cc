// Tests for the §4.4 extensions: heterogeneous replicas (per-computer
// speed factors) and workflow-type-specific instance-delay goals (§7.1).

#include <gtest/gtest.h>

#include <cmath>

#include "configtool/tool.h"
#include "perf/performance_model.h"
#include "workflow/scenarios.h"

namespace wfms {
namespace {

using workflow::Configuration;
using workflow::Environment;

Environment MakeEnv(double rate = 1.0) {
  auto env = workflow::EpEnvironment(rate);
  EXPECT_TRUE(env.ok());
  return *std::move(env);
}

TEST(HeterogeneousTest, UnitSpeedsMatchHomogeneousModel) {
  const Environment env = MakeEnv(1.0);
  auto model = perf::PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  std::vector<perf::HeterogeneousPool> pools(3);
  pools[0].speed_factors = {1.0};
  pools[1].speed_factors = {1.0, 1.0};
  pools[2].speed_factors = {1.0, 1.0};
  auto hetero = model->EvaluateHeterogeneous(pools);
  auto homo = model->EvaluateWaitingTimes(Configuration({1, 2, 2}));
  ASSERT_TRUE(hetero.ok()) << hetero.status();
  ASSERT_TRUE(homo.ok());
  for (size_t x = 0; x < 3; ++x) {
    EXPECT_NEAR(hetero->servers[x].mean_waiting_time,
                homo->servers[x].mean_waiting_time, 1e-12)
        << "type " << x;
    EXPECT_NEAR(hetero->servers[x].utilization,
                homo->servers[x].utilization, 1e-12);
  }
}

TEST(HeterogeneousTest, FasterBoxBeatsSlowBox) {
  // One type served by a fast (2x) and a slow (0.5x) machine: the
  // proportional split keeps utilizations equal, and the weighted wait
  // must be finite and sit between the two replicas' individual waits.
  const Environment env = MakeEnv(1.0);
  auto model = perf::PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  std::vector<perf::HeterogeneousPool> pools(3);
  pools[0].speed_factors = {1.0};
  pools[1].speed_factors = {2.0, 0.5};
  pools[2].speed_factors = {1.0, 1.0, 1.0};
  auto report = model->EvaluateHeterogeneous(pools);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->servers[1].saturated);
  // Total capacity 2.5x one engine: same aggregate utilization as 2.5
  // nominal servers.
  auto homo = model->EvaluateWaitingTimes(Configuration({1, 2, 3}));
  ASSERT_TRUE(homo.ok());
  EXPECT_NEAR(report->servers[1].utilization,
              homo->servers[1].utilization * 2.0 / 2.5, 1e-9);
}

TEST(HeterogeneousTest, UpgradeBeatsNominal) {
  // Upgrading one of two replicas to 2x strictly reduces the type's
  // weighted waiting time vs two nominal replicas.
  const Environment env = MakeEnv(1.5);
  auto model = perf::PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  std::vector<perf::HeterogeneousPool> nominal(3);
  nominal[0].speed_factors = {1.0};
  nominal[1].speed_factors = {1.0, 1.0};
  nominal[2].speed_factors = {1.0, 1.0};
  std::vector<perf::HeterogeneousPool> upgraded = nominal;
  upgraded[2].speed_factors = {2.0, 1.0};
  auto base = model->EvaluateHeterogeneous(nominal);
  auto fast = model->EvaluateHeterogeneous(upgraded);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_LT(fast->servers[2].mean_waiting_time,
            base->servers[2].mean_waiting_time);
}

TEST(HeterogeneousTest, SlowFleetSaturates) {
  const Environment env = MakeEnv(1.5);
  auto model = perf::PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  std::vector<perf::HeterogeneousPool> pools(3);
  pools[0].speed_factors = {1.0};
  pools[1].speed_factors = {1.0};
  pools[2].speed_factors = {0.1, 0.1};  // two decrepit app servers
  auto report = model->EvaluateHeterogeneous(pools);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->servers[2].saturated);
  EXPECT_TRUE(report->any_saturated);
}

TEST(HeterogeneousTest, Validation) {
  const Environment env = MakeEnv();
  auto model = perf::PerformanceModel::Create(env);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->EvaluateHeterogeneous({}).ok());
  std::vector<perf::HeterogeneousPool> pools(3);
  pools[0].speed_factors = {1.0};
  pools[1].speed_factors = {};  // empty
  pools[2].speed_factors = {1.0};
  EXPECT_FALSE(model->EvaluateHeterogeneous(pools).ok());
  pools[1].speed_factors = {0.0};
  EXPECT_FALSE(model->EvaluateHeterogeneous(pools).ok());
}

TEST(InstanceDelayGoalTest, BoundsAreChecked) {
  const Environment env = MakeEnv(1.0);
  auto tool = configtool::ConfigurationTool::Create(env);
  ASSERT_TRUE(tool.ok());
  configtool::Goals goals;
  goals.max_waiting_time = 60.0;  // effectively unbounded per type
  goals.min_availability = 0.9;
  auto base = tool->Assess(Configuration({2, 2, 2}), goals);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(base->Satisfies());
  ASSERT_EQ(base->instance_delays.size(), 1u);
  const double observed = base->instance_delays[0];
  EXPECT_GT(observed, 0.0);

  // A bound below the observed delay fails the assessment...
  goals.max_instance_delay["EP"] = observed * 0.5;
  auto tight = tool->Assess(Configuration({2, 2, 2}), goals);
  ASSERT_TRUE(tight.ok());
  EXPECT_FALSE(tight->meets_instance_delay_goal);
  EXPECT_FALSE(tight->Satisfies());
  // ...a bound above it passes.
  goals.max_instance_delay["EP"] = observed * 2.0;
  auto loose = tool->Assess(Configuration({2, 2, 2}), goals);
  ASSERT_TRUE(loose.ok());
  EXPECT_TRUE(loose->Satisfies());
  // Bounds for unknown workflow types are ignored.
  goals.max_instance_delay["NoSuchWorkflow"] = 1e-9;
  auto unknown = tool->Assess(Configuration({2, 2, 2}), goals);
  ASSERT_TRUE(unknown.ok());
  EXPECT_TRUE(unknown->Satisfies());
}

TEST(InstanceDelayGoalTest, GreedySatisfiesDelayGoal) {
  const Environment env = MakeEnv(1.0);
  auto tool = configtool::ConfigurationTool::Create(env);
  ASSERT_TRUE(tool.ok());
  configtool::Goals goals;
  goals.max_waiting_time = 60.0;
  goals.min_availability = 0.99;
  goals.max_instance_delay["EP"] = 0.5;  // 30 s of queueing per instance
  auto result = tool->GreedyMinCost(goals);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->satisfied);
  EXPECT_LE(result->assessment.instance_delays[0], 0.5);
  // The goal actually forced replication beyond the minimum.
  auto minimal = tool->Assess(Configuration({1, 1, 1}), goals);
  ASSERT_TRUE(minimal.ok());
  EXPECT_FALSE(minimal->Satisfies());
  EXPECT_GT(result->config.total_servers(), 3);
}

TEST(InstanceDelayGoalTest, GreedyMatchesBnbUnderDelayGoal) {
  const Environment env = MakeEnv(1.0);
  auto tool = configtool::ConfigurationTool::Create(env);
  ASSERT_TRUE(tool.ok());
  configtool::Goals goals;
  goals.max_waiting_time = 60.0;
  goals.min_availability = 0.99;
  goals.max_instance_delay["EP"] = 0.5;
  configtool::SearchConstraints constraints;
  constraints.max_replicas = {4, 4, 4};
  auto greedy = tool->GreedyMinCost(goals, constraints);
  auto bnb = tool->BranchAndBoundMinCost(goals, constraints);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(bnb.ok());
  ASSERT_TRUE(bnb->satisfied);
  EXPECT_LE(greedy->cost, bnb->cost + 1.0);
}

TEST(InstanceDelayGoalTest, Validation) {
  configtool::Goals goals;
  goals.max_instance_delay["EP"] = 0.0;
  EXPECT_FALSE(goals.Validate(3).ok());
  goals.max_instance_delay["EP"] = 1.0;
  EXPECT_TRUE(goals.Validate(3).ok());
}

}  // namespace
}  // namespace wfms

#include "workflow/calibration.h"

#include <algorithm>

#include "common/statistics.h"
#include "statechart/builder.h"

namespace wfms::workflow {

namespace {

/// Laplace smoothing weight for transition frequencies: keeps every
/// *declared* transition strictly positive even when unobserved, so a rare
/// branch is never calibrated away entirely.
constexpr double kSmoothing = 0.5;

struct StateObservation {
  RunningStats residence;
  std::map<std::string, int64_t> next_counts;
  int64_t departures = 0;
};

}  // namespace

Result<statechart::StateChart> CalibrateChart(
    const statechart::StateChart& chart, const AuditTrail& trail,
    const CalibrationOptions& options) {
  std::map<std::string, StateObservation> observed;
  for (const StateVisitRecord& r : trail.state_visits()) {
    if (r.chart != chart.name()) continue;
    StateObservation& obs = observed[r.state];
    obs.residence.Add(r.leave_time - r.enter_time);
    if (!r.next_state.empty()) {
      ++obs.next_counts[r.next_state];
      ++obs.departures;
    }
  }

  statechart::ChartBuilder builder(chart.name());
  for (const statechart::ChartState& s : chart.states()) {
    if (s.kind == statechart::StateKind::kComposite) {
      builder.AddCompositeState(s.name, s.subcharts);
      continue;
    }
    double residence = s.residence_time;
    const auto it = observed.find(s.name);
    if (it != observed.end() &&
        it->second.residence.count() >= options.min_observations) {
      residence = it->second.residence.mean();
    }
    builder.AddActivityState(s.name, s.activity, residence);
  }
  builder.SetInitial(chart.initial_state());
  builder.SetFinal(chart.final_state());

  for (const statechart::ChartState& s : chart.states()) {
    const auto outgoing = chart.OutgoingTransitions(s.name);
    if (outgoing.empty()) continue;
    const auto it = observed.find(s.name);
    const bool recalibrate =
        it != observed.end() && it->second.departures >= options.min_observations;
    double total_weight = 0.0;
    std::vector<double> weights(outgoing.size());
    for (size_t i = 0; i < outgoing.size(); ++i) {
      if (recalibrate) {
        const auto count_it = it->second.next_counts.find(outgoing[i]->to);
        const double count = count_it == it->second.next_counts.end()
                                 ? 0.0
                                 : static_cast<double>(count_it->second);
        weights[i] = count + kSmoothing;
      } else {
        weights[i] = outgoing[i]->probability;
      }
      total_weight += weights[i];
    }
    for (size_t i = 0; i < outgoing.size(); ++i) {
      builder.AddTransition(s.name, outgoing[i]->to,
                            weights[i] / total_weight, outgoing[i]->rule);
    }
  }
  auto rebuilt = builder.Build();
  if (!rebuilt.ok()) {
    return rebuilt.status().WithContext("calibrating chart '" + chart.name() +
                                        "'");
  }
  return rebuilt;
}

Result<Environment> CalibrateEnvironment(const Environment& env,
                                         const AuditTrail& trail,
                                         const CalibrationOptions& options,
                                         CalibrationReport* report) {
  CalibrationReport local_report;
  Environment out;
  out.servers = env.servers;
  out.loads = env.loads;
  out.workflows = env.workflows;

  // Charts.
  for (const std::string& name : env.charts.ChartNames()) {
    WFMS_ASSIGN_OR_RETURN(const statechart::StateChart* chart,
                          env.charts.GetChart(name));
    WFMS_ASSIGN_OR_RETURN(statechart::StateChart calibrated,
                          CalibrateChart(*chart, trail, options));
    // Count how many states actually changed residence.
    for (size_t i = 0; i < chart->num_states(); ++i) {
      if (chart->state(i).residence_time !=
          calibrated.state(i).residence_time) {
        ++local_report.states_recalibrated;
      } else {
        ++local_report.states_kept;
      }
    }
    WFMS_RETURN_NOT_OK(out.charts.AddChart(std::move(calibrated)));
  }

  // Server-type service moments.
  std::vector<RunningStats> service_stats(env.servers.size());
  for (const ServiceRecord& r : trail.services()) {
    if (r.server_type < service_stats.size()) {
      service_stats[r.server_type].Add(r.service_time);
    }
  }
  for (size_t x = 0; x < service_stats.size(); ++x) {
    if (service_stats[x].count() >= options.min_observations) {
      out.servers.mutable_type(x).service.mean = service_stats[x].mean();
      out.servers.mutable_type(x).service.second_moment =
          service_stats[x].second_moment();
      ++local_report.server_types_recalibrated;
    }
  }

  // Arrival rates: count over the observation window [0, last arrival].
  std::map<std::string, int64_t> arrival_counts;
  double window_end = 0.0;
  for (const ArrivalRecord& r : trail.arrivals()) {
    ++arrival_counts[r.workflow_type];
    window_end = std::max(window_end, r.arrival_time);
  }
  if (window_end > 0.0) {
    for (WorkflowTypeSpec& w : out.workflows) {
      const auto it = arrival_counts.find(w.name);
      if (it != arrival_counts.end() &&
          it->second >= options.min_observations) {
        w.arrival_rate = static_cast<double>(it->second) / window_end;
        ++local_report.workflow_types_recalibrated;
      }
    }
  }

  if (report != nullptr) *report = local_report;
  return out;
}

}  // namespace wfms::workflow

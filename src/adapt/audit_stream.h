// Bounded MPSC channel between the operational system (the simulator's
// audit hooks, running on the simulation thread) and the adaptive
// reconfiguration loop's consumer. The paper's §7 vision has the audit
// trail "continuously monitored"; this is the transport.
//
// Concurrency contract: any number of producer threads may Publish /
// TryPublish concurrently; exactly one consumer thread drains. Per
// producer, events arrive in publish order (the queue is FIFO), which is
// what makes the single-producer closed loop deterministic.
//
// Backpressure: the stream is bounded. `Publish` blocks the producer when
// the queue is full (lossless mode — the closed loop uses this, so a slow
// controller slows the simulator instead of corrupting its estimates);
// `TryPublish` drops the event instead and counts the drop. Both the
// published and dropped totals are mirrored into the metrics registry
// (`wfms_adapt_stream_published_total` / `wfms_adapt_stream_dropped_total`)
// so a lossy monitoring deployment is visible in every metrics export.
#ifndef WFMS_ADAPT_AUDIT_STREAM_H_
#define WFMS_ADAPT_AUDIT_STREAM_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <variant>
#include <vector>

#include "workflow/audit_trail.h"

namespace wfms::adapt {

/// One monitored occurrence, timestamped in model time.
using AuditEvent =
    std::variant<workflow::StateVisitRecord, workflow::ServiceRecord,
                 workflow::ArrivalRecord, workflow::CompletionRecord,
                 workflow::ServerCountRecord>;

/// The model-time stamp of an event (leave/start/arrival/end/change time).
double EventTime(const AuditEvent& event);

class AuditStream : public workflow::AuditSink {
 public:
  /// What a full queue does to the *sink-interface* publishes (the
  /// explicit Publish/TryPublish entry points choose per call).
  enum class Overflow {
    kBlock,      // wait for space — lossless, backpressures the producer
    kDropNewest  // drop the incoming event, count it
  };

  explicit AuditStream(size_t capacity, Overflow overflow = Overflow::kBlock);

  /// Blocks until there is space (or the stream is closed, in which case
  /// the event is dropped and counted — a closed stream accepts nothing).
  void Publish(AuditEvent event);
  /// Never blocks: false (and a counted drop) when full or closed.
  bool TryPublish(AuditEvent event);

  /// Marks the end of the stream: producers' publishes become drops and
  /// blocked consumers wake. Idempotent.
  void Close();

  /// Moves up to `max_events` queued events into `*out` (appending).
  /// Returns the number moved; never blocks.
  size_t Drain(std::vector<AuditEvent>* out, size_t max_events = SIZE_MAX);

  /// Blocks until at least one event is available or the stream is closed
  /// and empty; then drains like Drain(). A return of 0 means closed and
  /// fully drained — the consumer's termination signal.
  size_t WaitDrain(std::vector<AuditEvent>* out,
                   size_t max_events = SIZE_MAX);

  size_t capacity() const { return capacity_; }
  size_t size() const;
  bool closed() const;
  uint64_t published() const;
  uint64_t dropped() const;

  // workflow::AuditSink — publishes under the constructed overflow policy.
  void OnStateVisit(const workflow::StateVisitRecord& record) override;
  void OnService(const workflow::ServiceRecord& record) override;
  void OnArrival(const workflow::ArrivalRecord& record) override;
  void OnCompletion(const workflow::CompletionRecord& record) override;
  void OnServerCount(const workflow::ServerCountRecord& record) override;

 private:
  void SinkPublish(AuditEvent event);
  /// Precondition: lock held. Returns false when the event was dropped.
  bool EnqueueLocked(std::unique_lock<std::mutex>& lock, AuditEvent&& event,
                     bool block);
  void CountDrop();

  const size_t capacity_;
  const Overflow overflow_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<AuditEvent> queue_;
  bool closed_ = false;
  uint64_t published_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace wfms::adapt

#endif  // WFMS_ADAPT_AUDIT_STREAM_H_

file(REMOVE_RECURSE
  "libwfms_statechart.a"
)

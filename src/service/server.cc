#include "service/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace wfms::service {

namespace {

metrics::Counter& RequestsTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_requests_total");
  return counter;
}

metrics::Counter& ConnectionsTotal() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_connections_total");
  return counter;
}

metrics::Gauge& ConnectionsOpen() {
  static metrics::Gauge& gauge = metrics::MetricsRegistry::Global()
      .GetGauge("wfms_service_connections_open");
  return gauge;
}

metrics::Histogram& RequestSeconds() {
  static metrics::Histogram& histogram = metrics::MetricsRegistry::Global()
      .GetHistogram("wfms_service_request_seconds");
  return histogram;
}

/// One counter per terminal disposition, incremented only at the
/// response-write site so the load driver's before/after metrics diff is
/// exactly its own per-disposition tally.
metrics::Counter& DispositionCounter(Disposition d) {
  static metrics::Counter& completed = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_responses_completed_total");
  static metrics::Counter& degraded = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_responses_degraded_total");
  static metrics::Counter& rejected = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_responses_rejected_total");
  static metrics::Counter& deadline = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_responses_deadline_total");
  static metrics::Counter& error = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_responses_error_total");
  switch (d) {
    case Disposition::kCompleted: return completed;
    case Disposition::kDegraded: return degraded;
    case Disposition::kRejectedOverloaded: return rejected;
    case Disposition::kDeadlineExceeded: return deadline;
    case Disposition::kError: return error;
  }
  return error;
}

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Writes all of `data`, retrying short writes and EINTR.
bool WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> alive{true};
  std::atomic<bool> reader_done{false};
  std::thread reader;

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

Server::Server(const ServerOptions& options)
    : options_(options),
      recorder_(std::max<size_t>(1, options.flight_recorder_capacity)) {
  options_.num_workers = std::max<size_t>(2, options_.num_workers);
  options_.admission.max_queue = options_.max_queue;
  BackendOptions backend_options = options_.backend;
  if (options_.snapshot_interval_seconds < 0.0) {
    backend_options.snapshot_path.clear();  // persistence disabled
  }
  backend_ = std::make_unique<Backend>(backend_options);
  admission_ = std::make_unique<AdmissionController>(options_.admission);
}

Server::~Server() {
  RequestStop();
  if (accept_thread_.joinable()) {
    (void)Wait();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

Status Server::Start() {
  // A dead client mid-write must not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);

  if (::pipe(wake_pipe_) != 0) return ErrnoStatus("pipe");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return ErrnoStatus("bind " + options_.host + ":" +
                       std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) return ErrnoStatus("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return ErrnoStatus("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  // Warm restart: prefill the scenario caches from the snapshot. Stale
  // scenarios are rejected with a clean per-scenario message and start
  // cold; a torn/corrupt snapshot file aborts startup loudly.
  WFMS_ASSIGN_OR_RETURN(Backend::SnapshotLoadStats stats,
                        backend_->LoadCacheSnapshot());
  if (stats.scenarios > 0) {
    WFMS_LOG(Info) << "wfmsd: warm start — " << stats.reports
                   << " cached reports across " << stats.scenarios
                   << " scenario(s) restored";
  }
  for (const std::string& rejection : stats.rejected) {
    WFMS_LOG(Warning) << "wfmsd: " << rejection;
  }

  pool_ = std::make_unique<ThreadPool>(options_.num_workers,
                                       options_.max_queue);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::RequestStop() {
  if (stopping_.exchange(true)) return;
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    // Async-signal-safe by POSIX; the accept loop's poll wakes on it.
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
}

Status Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();

  // Drain: no new connections (listen fd is closed by the accept loop).
  // Readers see the stop on the self-pipe, serve what clients already
  // sent through the lame-duck grace window, and exit on their own; then
  // the pool runs dry — every admitted request's response is written
  // before Shutdown returns.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conns = connections_;
  }
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  if (pool_) pool_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    connections_.clear();
  }

  Status final_snapshot = Status::OK();
  if (options_.snapshot_interval_seconds >= 0.0) {
    final_snapshot = backend_->SaveCacheSnapshot();
  }
  // Best-effort forensics dump on the graceful-drain path only: a SIGKILL
  // loses the recorder by design (the chaos path must never depend on it).
  DumpFlightRecorder();
  return final_snapshot;
}

void Server::DumpFlightRecorder() {
  if (options_.flight_recorder_path.empty()) return;
  Status dumped = recorder_.DumpJson(options_.flight_recorder_path);
  if (!dumped.ok()) {
    WFMS_LOG(Warning) << "wfmsd: flight-recorder dump failed: "
                      << dumped.ToString();
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      WFMS_LOG(Error) << "wfmsd: poll failed: " << std::strerror(errno);
      break;
    }
    if (fds[1].revents != 0 || stopping_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      WFMS_LOG(Error) << "wfmsd: accept failed: " << std::strerror(errno);
      continue;
    }
    AdoptClient(client);
  }
  // A connection that finished its TCP handshake before the stop is part
  // of the drain: its requests may already be on the wire, and closing
  // the listen socket with it still in the backlog would RST it. Adopt
  // everything pending, then close.
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) break;  // EAGAIN: backlog empty
    AdoptClient(client);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::AdoptClient(int client) {
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto conn = std::make_shared<Connection>();
  conn->fd = client;
  ConnectionsTotal().Increment();
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    ReapConnections();
    connections_.push_back(conn);
    ConnectionsOpen().Set(static_cast<double>(connections_.size()));
  }
  conn->reader = std::thread([this, conn] { ServeConnection(conn); });
}

void Server::ReapConnections() {
  // Caller holds conn_mutex_. Joining a finished reader is instant.
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->reader_done.load() && (*it)->reader.joinable()) {
      (*it)->reader.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  ConnectionsOpen().Set(static_cast<double>(connections_.size()));
}

void Server::ServeConnection(std::shared_ptr<Connection> conn) {
  using clock = std::chrono::steady_clock;
  std::string buffer;
  char chunk[4096];
  bool one_shot = false;
  bool peer_gone = false;
  clock::time_point drain_deadline{};

  while (!one_shot && !peer_gone) {
    // Readers learn about a stop from the same self-pipe as the accept
    // loop: the wake byte is never consumed, so the pipe stays readable
    // (level-triggered) for every poller at once.
    pollfd fds[2];
    fds[0] = {conn->fd, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    int timeout_ms = -1;
    if (drain_deadline != clock::time_point{}) {
      const double remaining =
          std::chrono::duration<double>(drain_deadline - clock::now())
              .count();
      if (remaining <= 0.0) break;  // lame-duck window over
      timeout_ms = static_cast<int>(remaining * 1000.0) + 1;
    }
    const int ready = ::poll(fds, 2, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 && drain_deadline == clock::time_point{}) {
      // Drain requested: keep serving lines the client already sent for
      // the grace window (a SHUT_RD here would discard request bytes
      // still in the kernel buffer and RST un-read responses away).
      drain_deadline =
          clock::now() + std::chrono::duration_cast<clock::duration>(
                             std::chrono::duration<double>(
                                 options_.drain_grace_seconds));
    }
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

    // Consume everything buffered right now without blocking, so a
    // drain deadline can never wedge behind a slow blocking read.
    while (!one_shot) {
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {  // EOF or error: mid-stream disconnects land here
        peer_gone = true;
        break;
      }
      buffer.append(chunk, static_cast<size_t>(n));
      ConsumeBuffer(conn, buffer, &one_shot);
    }
  }
  if (one_shot) {
    // One-shot exchange: send the FIN now so a client reading until EOF
    // (every scraper) finishes immediately instead of waiting for the
    // connection to be reaped.
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    conn->alive.store(false);
    ::shutdown(conn->fd, SHUT_WR);
  }
  // NDJSON readers leave `alive` as-is: the client closing its send side
  // (or a drain) must not discard responses for requests already admitted
  // to the pool — a write to a genuinely dead peer fails with EPIPE and
  // flips `alive` at the write site instead.
  conn->reader_done.store(true);
}

void Server::ConsumeBuffer(const std::shared_ptr<Connection>& conn,
                           std::string& buffer, bool* one_shot) {
  // An HTTP scrape shares the port: the first bytes decide the dialect.
  if (buffer.size() >= 4 && buffer.compare(0, 4, "GET ") == 0) {
    const size_t eol = buffer.find('\n');
    if (eol == std::string::npos) {
      if (buffer.size() > 8192) *one_shot = true;  // absurd request line
      return;
    }
    ServeHttp(conn, buffer.substr(0, eol));
    *one_shot = true;
    return;
  }

  size_t start = 0;
  for (size_t eol = buffer.find('\n', start); eol != std::string::npos;
       eol = buffer.find('\n', start)) {
    std::string line = buffer.substr(start, eol - start);
    start = eol + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    HandleLine(conn, std::move(line));
  }
  buffer.erase(0, start);

  if (buffer.size() > options_.max_line_bytes) {
    // A line this long cannot be resynchronized reliably; answer once
    // and drop the connection.
    Response resp;
    resp.disposition = Disposition::kError;
    resp.error = "request line exceeds " +
                 std::to_string(options_.max_line_bytes) + " bytes";
    RequestsTotal().Increment();
    WriteResponse(conn, resp);
    *one_shot = true;
  }
}

void Server::HandleLine(const std::shared_ptr<Connection>& conn,
                        std::string line) {
  RequestsTotal().Increment();
  const auto now = std::chrono::steady_clock::now();
  const size_t bytes_in = line.size();

  Result<Request> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    // Unparseable lines still get a (minted) trace id: the record must be
    // findable in /debug/requests even when the request never named one.
    const trace::TraceContext ctx = trace::TraceContext::Mint();
    Response resp;
    resp.disposition = Disposition::kError;
    resp.error = parsed.status().ToString();
    resp.trace_id = ctx.trace_id_hex();
    RequestTelemetry telemetry;
    telemetry.context = ctx;
    Respond(conn, resp, /*tenant=*/"", /*op=*/"invalid", telemetry, now,
            bytes_in);
    return;
  }
  Request req = *std::move(parsed);

  // Accept-or-mint the request's trace context. Minting happens even with
  // span recording off: the flight recorder keys records by trace id, and
  // the response echoes it, recording or not.
  const trace::TraceContext ctx =
      req.trace_id.empty()
          ? trace::TraceContext::Mint()
          : trace::TraceContext::WithRemoteParent(req.trace_id,
                                                  req.parent_span_id);

  if (req.op == Op::kPing) {
    // Liveness probes bypass admission and the queue entirely.
    RequestTelemetry telemetry;
    telemetry.context = ctx;
    Response resp = backend_->Handle(req, 0, now, &telemetry);
    resp.trace_id = ctx.trace_id_hex();
    Respond(conn, resp, req.tenant, OpName(req.op), telemetry, now, bytes_in);
    return;
  }

  const AdmissionDecision decision = [&] {
    trace::TraceSpan span("service/admission", "service", ctx);
    return admission_->Admit(req.tenant, pool_->queue_depth(), now);
  }();
  if (!decision.admitted) {
    Response resp;
    resp.id = req.id;
    resp.disposition = Disposition::kRejectedOverloaded;
    resp.error = decision.reason;
    resp.trace_id = ctx.trace_id_hex();
    RequestTelemetry telemetry;
    telemetry.context = ctx;
    Respond(conn, resp, req.tenant, OpName(req.op), telemetry, now, bytes_in);
    return;
  }

  auto submitted = pool_->Submit(
      [this, conn, req = std::move(req), level = decision.degrade_level,
       now, ctx, bytes_in]() -> Status {
        RequestTelemetry telemetry;
        telemetry.context = ctx;
        // Queue wait is a first-class phase: the time between admission
        // and a worker picking the request up.
        telemetry.phases.emplace_back(
            "queue", std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - now)
                         .count());
        Response resp = backend_->Handle(req, level, now, &telemetry);
        resp.trace_id = ctx.trace_id_hex();
        const bool cache_changing =
            resp.disposition == Disposition::kCompleted ||
            resp.disposition == Disposition::kDegraded;
        Respond(conn, resp, req.tenant, OpName(req.op), telemetry, now,
                bytes_in);
        if (cache_changing) MaybeSnapshot();
        return Status::OK();
      });
  if (!submitted.ok()) {
    // The pool bound is the backstop behind the admission ladder: a race
    // that fills the queue between Admit and Submit still answers with an
    // explicit shed, never a block.
    Response resp;
    resp.id = req.id;
    resp.disposition = Disposition::kRejectedOverloaded;
    resp.error = submitted.status().ToString();
    resp.trace_id = ctx.trace_id_hex();
    RequestTelemetry telemetry;
    telemetry.context = ctx;
    Respond(conn, resp, req.tenant, OpName(req.op), telemetry, now, bytes_in);
  }
}

void Server::ServeHttp(const std::shared_ptr<Connection>& conn,
                       const std::string& first_line) {
  // "GET <path> HTTP/1.x"
  std::string path;
  const size_t sp1 = first_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : first_line.find(' ', sp1 + 1);
  if (sp1 != std::string::npos && sp2 != std::string::npos) {
    path = first_line.substr(sp1 + 1, sp2 - sp1 - 1);
  }

  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  std::string status_line = "HTTP/1.1 200 OK";
  if (path == "/metrics") {
    body = metrics::MetricsRegistry::Global().Snapshot().ToPrometheusText();
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/metrics.json") {
    body = metrics::MetricsRegistry::Global().Snapshot().ToJson();
    content_type = "application/json";
  } else if (path == "/healthz") {
    body = "ok\n";
  } else if (path == "/debug/requests" ||
             path.rfind("/debug/requests?", 0) == 0) {
    // Live flight-recorder scrape, newest-first; `?n=` caps the count.
    size_t n = 0;
    const size_t q = path.find('?');
    if (q != std::string::npos) {
      const size_t at = path.find("n=", q + 1);
      if (at != std::string::npos) {
        n = static_cast<size_t>(
            std::strtoull(path.c_str() + at + 2, nullptr, 10));
      }
    }
    body = recorder_.ToJson(n);
    content_type = "application/json";
  } else {
    status_line = "HTTP/1.1 404 Not Found";
    body = "not found\n";
  }

  std::string response = status_line + "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (!WriteAll(conn->fd, response)) conn->alive.store(false);
}

void Server::WriteResponse(const std::shared_ptr<Connection>& conn,
                           const Response& response) {
  DispositionCounter(response.disposition).Increment();
  // The latency exemplar links the histogram's max bucket to a concrete
  // trace id in /metrics.json (DESIGN.md §13).
  RequestSeconds().Observe(response.elapsed_seconds, response.trace_id);
  std::string line = response.Render();
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (!conn->alive.load()) return;  // client hung up; accounting still done
  if (!WriteAll(conn->fd, line)) conn->alive.store(false);
}

void Server::Respond(const std::shared_ptr<Connection>& conn,
                     const Response& response, const std::string& tenant,
                     const char* op, const RequestTelemetry& telemetry,
                     std::chrono::steady_clock::time_point arrival,
                     size_t bytes_in) {
  DispositionCounter(response.disposition).Increment();
  RequestSeconds().Observe(response.elapsed_seconds, response.trace_id);
  std::string line = response.Render();
  line.push_back('\n');
  // Record first, write second: once the response is on the wire the
  // request must already be visible in /debug/requests.
  CommitRecord(tenant, op, response, telemetry, arrival, bytes_in,
               line.size());
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (!conn->alive.load()) return;  // client hung up; accounting still done
  if (!WriteAll(conn->fd, line)) conn->alive.store(false);
}

void Server::CommitRecord(const std::string& tenant, const char* op,
                          const Response& response,
                          const RequestTelemetry& telemetry,
                          std::chrono::steady_clock::time_point arrival,
                          size_t bytes_in, size_t bytes_out) {
  RequestRecord record;
  record.trace_id = telemetry.context.trace_id_hex();
  record.tenant = tenant;
  record.op = op;
  record.disposition = DispositionName(response.disposition);
  record.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    arrival)
          .count();
  record.phases = telemetry.phases;
  for (const auto& [name, seconds] : telemetry.phases) {
    if (name == "queue") record.admission_wait_seconds = seconds;
  }
  record.cache_hit = telemetry.cache_hit;
  record.solver_rungs = telemetry.solver_rungs;
  record.bytes_in = bytes_in;
  record.bytes_out = bytes_out;

  if (options_.slow_request_ms > 0.0 &&
      record.elapsed_seconds * 1000.0 >= options_.slow_request_ms) {
    std::string breakdown;
    for (const auto& [name, seconds] : record.phases) {
      breakdown += " " + name + "=" + std::to_string(seconds * 1000.0) +
                   "ms";
    }
    WFMS_LOG(Warning) << "wfmsd: slow request trace=" << record.trace_id
                      << " op=" << record.op
                      << " disposition=" << record.disposition
                      << " elapsed="
                      << record.elapsed_seconds * 1000.0 << "ms"
                      << " cache_hit=" << (record.cache_hit ? 1 : 0)
                      << " solver_rungs=" << record.solver_rungs
                      << breakdown;
  }
  recorder_.Record(std::move(record));
}

void Server::MaybeSnapshot() {
  if (options_.snapshot_interval_seconds < 0.0) return;
  // The mutex stays held across the save: concurrent workers would race
  // on the snapshot's temp file (same path, write/rename interleaved).
  // Interval 0 (chaos mode) persists after every cache-changing request,
  // so a SIGKILL at any instant loses at most the requests in flight.
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  const auto now = std::chrono::steady_clock::now();
  if (options_.snapshot_interval_seconds > 0.0 &&
      last_snapshot_ != std::chrono::steady_clock::time_point{} &&
      std::chrono::duration<double>(now - last_snapshot_).count() <
          options_.snapshot_interval_seconds) {
    return;
  }
  last_snapshot_ = now;
  Status saved = backend_->SaveCacheSnapshot();
  if (!saved.ok()) {
    WFMS_LOG(Warning) << "wfmsd: cache snapshot failed: " << saved.ToString();
  }
  // The recorder rides along with periodic cache snapshots, keeping an
  // on-disk forensics trail on long-running daemons. Interval 0 (chaos
  // mode) deliberately skips it: that mode snapshots after every request,
  // and the recorder must never add I/O to the request path.
  if (options_.snapshot_interval_seconds > 0.0) DumpFlightRecorder();
}

}  // namespace wfms::service

// End-to-end walkthrough of the paper's pipeline on the e-commerce (EP)
// workflow of Fig. 3:
//   statechart spec  ->  CTMC (Fig. 4)  ->  performance model (§4)
//   ->  availability model (§5)  ->  performability (§6)
//   ->  configuration recommendation (§7).
//
// Build & run:  ./build/examples/ecommerce_configuration

#include <cstdio>

#include "avail/availability_model.h"
#include "common/time_units.h"
#include "configtool/tool.h"
#include "markov/transient.h"
#include "perf/performance_model.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;

  auto env = workflow::EpEnvironment(/*arrival_rate=*/1.0);
  if (!env.ok()) {
    std::fprintf(stderr, "%s\n", env.status().ToString().c_str());
    return 1;
  }

  // --- §3: the workflow's CTMC -------------------------------------------
  auto model = perf::PerformanceModel::Create(*env);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  const perf::WorkflowAnalysis& ep = model->workflows()[0];
  std::printf("EP workflow CTMC (paper Fig. 4): %zu states + absorbing\n",
              ep.states.size());
  std::printf("%-18s %10s %14s\n", "state", "E[visits]", "residence");
  for (size_t s = 0; s < ep.states.size(); ++s) {
    std::printf("%-18s %10.4f %14s\n", ep.states[s].name.c_str(),
                ep.state_visits[s],
                FormatMinutes(ep.states[s].residence_time).c_str());
  }
  std::printf("mean turnaround R_EP = %s\n\n",
              FormatMinutes(ep.turnaround_time).c_str());

  // --- §4: load and waiting times ----------------------------------------
  std::printf("expected service requests per EP instance (r_x):\n");
  for (size_t x = 0; x < env->num_server_types(); ++x) {
    std::printf("  %-8s %8.2f requests, aggregate %.2f req/min\n",
                env->servers.type(x).name.c_str(), ep.expected_requests[x],
                model->total_request_rates()[x]);
  }
  auto waiting =
      model->EvaluateWaitingTimes(workflow::Configuration({1, 2, 2}));
  if (waiting.ok()) {
    std::printf("\nwaiting times under configuration (1,2,2):\n");
    for (const auto& server : waiting->servers) {
      std::printf("  %-8s rho=%.3f  W=%s\n", server.server_type.c_str(),
                  server.utilization,
                  server.saturated
                      ? "saturated"
                      : FormatMinutes(server.mean_waiting_time).c_str());
    }
  }

  // --- §5: availability ---------------------------------------------------
  auto avail_model = avail::AvailabilityModel::Create(env->servers);
  if (!avail_model.ok()) return 1;
  std::printf("\ndowntime per year (availability CTMC, §5.2):\n");
  for (const workflow::Configuration& config :
       {workflow::Configuration({1, 1, 1}), workflow::Configuration({2, 2, 3}),
        workflow::Configuration({3, 3, 3})}) {
    auto report = avail_model->Evaluate(config);
    if (!report.ok()) continue;
    std::printf("  %-8s -> %s\n", config.ToString().c_str(),
                FormatMinutes(report->downtime_minutes_per_year).c_str());
  }

  // --- §6 + §7: performability-driven recommendation ----------------------
  auto tool = configtool::ConfigurationTool::Create(*env);
  if (!tool.ok()) return 1;
  configtool::Goals goals;
  goals.max_waiting_time = 0.05;
  goals.min_availability = 0.999999;
  auto greedy = tool->GreedyMinCost(goals);
  auto exhaustive = tool->ExhaustiveMinCost(goals);
  if (greedy.ok() && exhaustive.ok()) {
    std::printf("\ngreedy (§7.2):     %s cost %.0f, %d evaluations\n",
                greedy->config.ToString().c_str(), greedy->cost,
                greedy->evaluations);
    std::printf("exhaustive optimum: %s cost %.0f, %d evaluations\n",
                exhaustive->config.ToString().c_str(), exhaustive->cost,
                exhaustive->evaluations);
    std::printf("\n%s\n", tool->RenderRecommendation(*greedy).c_str());
  }
  return 0;
}

# Empty dependencies file for wfms_workflow.
# This may be replaced when dependencies are built.

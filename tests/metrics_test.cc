#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace wfms::metrics {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddUpdateMax) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.UpdateMax(1.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.UpdateMax(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(RegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("wfms_test_events_total");
  Counter& b = registry.GetCounter("wfms_test_events_total");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
}

TEST(RegistryTest, NamesAreSanitized) {
  EXPECT_EQ(MetricsRegistry::SanitizeName("wfms sim/pool-busy"),
            "wfms_sim_pool_busy");
  EXPECT_EQ(MetricsRegistry::SanitizeName("9lives"), "_9lives");
  EXPECT_EQ(MetricsRegistry::SanitizeName("ok_name:sub"), "ok_name:sub");

  MetricsRegistry registry;
  registry.GetCounter("wfms test/total").Increment();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("wfms_test_total"), 1u);
}

// Named to stay outside the CI TSan job's -R selection: gtest death
// tests fork, which is unreliable under ThreadSanitizer.
TEST(KindConflictDeathTest, SecondKindAborts) {
  MetricsRegistry registry;
  registry.GetCounter("wfms_test_conflict");
  EXPECT_DEATH(registry.GetGauge("wfms_test_conflict"),
               "already registered");
}

TEST(RegistryTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Each thread resolves the handle itself: registration is racy on
      // purpose, the shard lock must make it idempotent.
      Counter& c = registry.GetCounter("wfms_test_concurrent_total");
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("wfms_test_concurrent_total").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryTest, ResetAllZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("wfms_test_total");
  Gauge& g = registry.GetGauge("wfms_test_depth");
  Histogram& h = registry.GetHistogram("wfms_test_seconds");
  c.Increment(3);
  g.Set(1.5);
  h.Observe(0.25);
  registry.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // Handles stay valid and keep feeding the same entries.
  c.Increment();
  EXPECT_EQ(registry.Snapshot().counter("wfms_test_total"), 1u);
}

TEST(HistogramBucketsTest, IndexAndBoundsAreConsistent) {
  // Every positive value lands in a bucket whose [lower, upper) range
  // contains it, across the full supported magnitude span.
  for (double v : {1e-11, 3e-4, 0.5, 0.9999, 1.0, 1.0001, 2.0, 3.14159,
                   1023.0, 1e6, 1e11}) {
    const int idx = Histogram::BucketIndex(v);
    ASSERT_GT(idx, 0) << v;
    ASSERT_LT(idx, Histogram::kNumBuckets - 1) << v;
    EXPECT_LE(Histogram::BucketLowerBound(idx), v) << v;
    EXPECT_LT(v, Histogram::BucketUpperBound(idx)) << v;
  }
  // Non-positive and NaN go to the zero bucket.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0);
  // Out-of-range magnitudes clamp to the edge buckets.
  EXPECT_EQ(Histogram::BucketIndex(std::ldexp(1.0, -60)), 1);
  EXPECT_EQ(Histogram::BucketIndex(std::ldexp(1.0, 50)),
            Histogram::kNumBuckets - 1);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 1)));
}

TEST(HistogramTest, CountSumMinMaxAreExact) {
  Histogram h;
  const std::vector<double> values = {0.001, 0.25, 0.5, 2.0, 17.0};
  double sum = 0.0;
  for (double v : values) {
    h.Observe(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), values.size());
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 17.0);
  uint64_t bucket_total = 0;
  for (const HistogramBucket& b : h.NonEmptyBuckets()) {
    bucket_total += b.count;
  }
  EXPECT_EQ(bucket_total, values.size());
}

TEST(HistogramTest, QuantilesTrackSortedReference) {
  // Log-uniform sample across nine decades; bucketing alone bounds the
  // relative quantile error at 1/16, interpolation tightens it further.
  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> log10_value(-6.0, 3.0);
  Histogram h;
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double v = std::pow(10.0, log10_value(rng));
    values.push_back(v);
    h.Observe(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    const double reference =
        values[static_cast<size_t>(q * (values.size() - 1))];
    const double estimate = h.Quantile(q);
    EXPECT_NEAR(estimate / reference, 1.0, 0.08)
        << "q=" << q << " reference=" << reference
        << " estimate=" << estimate;
  }
  // Extremes clamp to the observed range.
  EXPECT_GE(h.Quantile(0.0), values.front());
  EXPECT_LE(h.Quantile(1.0), values.back());
}

TEST(HistogramTest, ConcurrentObservationsSumExactly) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(0.001 * (t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (const HistogramBucket& b : h.NonEmptyBuckets()) {
    bucket_total += b.count;
  }
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 0.008);
}

TEST(SnapshotTest, AccessorsAndFallbacks) {
  MetricsRegistry registry;
  registry.GetCounter("wfms_test_total").Increment(7);
  registry.GetGauge("wfms_test_depth").Set(3.5);
  registry.GetHistogram("wfms_test_seconds").Observe(0.5);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("wfms_test_total"), 7u);
  EXPECT_EQ(snap.counter("missing", 99), 99u);
  EXPECT_DOUBLE_EQ(snap.gauge("wfms_test_depth"), 3.5);
  EXPECT_DOUBLE_EQ(snap.gauge("missing", -1.0), -1.0);
  ASSERT_NE(snap.histogram("wfms_test_seconds"), nullptr);
  EXPECT_EQ(snap.histogram("wfms_test_seconds")->count, 1u);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

// Checks a JSON document is well formed: balanced braces/brackets outside
// strings, no trailing garbage. Enough to catch escaping and comma bugs;
// the CI smoke test additionally runs it through python3 -m json.tool.
bool JsonIsBalanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(SnapshotTest, JsonExportIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("wfms_test_total").Increment(3);
  registry.GetGauge("wfms_test_depth").Set(0.25);
  Histogram& h = registry.GetHistogram("wfms_test_seconds");
  h.Observe(0.0);  // zero bucket
  h.Observe(1.5);
  h.Observe(1e50);  // overflow bucket: le must serialize as "+Inf"
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"wfms_test_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"wfms_test_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"wfms_test_seconds\""), std::string::npos);
  // JSON has no Infinity literal; the overflow bucket bound is a string.
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  EXPECT_EQ(json.find("Infinity"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

// Minimal parser for the Prometheus text exposition format: returns
// sample name (with labels) -> value, skipping # comment lines.
std::map<std::string, double> ParsePrometheus(const std::string& text) {
  std::map<std::string, double> samples;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }
  return samples;
}

TEST(SnapshotTest, PrometheusRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("wfms_test_total").Increment(5);
  registry.GetGauge("wfms_test_depth").Set(2.25);
  Histogram& h = registry.GetHistogram("wfms_test_seconds");
  const std::vector<double> values = {0.01, 0.02, 0.04, 1.0};
  for (double v : values) h.Observe(v);

  const std::string text = registry.Snapshot().ToPrometheusText();
  const std::map<std::string, double> samples = ParsePrometheus(text);

  EXPECT_DOUBLE_EQ(samples.at("wfms_test_total"), 5.0);
  EXPECT_DOUBLE_EQ(samples.at("wfms_test_depth"), 2.25);
  EXPECT_DOUBLE_EQ(samples.at("wfms_test_seconds_count"), 4.0);
  EXPECT_NEAR(samples.at("wfms_test_seconds_sum"), 1.07, 1e-12);
  // Bucket series are cumulative in ascending `le` order (the map above
  // sorts names lexicographically, so sort numerically here) and end at
  // +Inf with the total count.
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  for (const auto& [name, value] : samples) {
    if (name.rfind("wfms_test_seconds_bucket", 0) != 0) continue;
    const size_t le_pos = name.find("le=\"");
    ASSERT_NE(le_pos, std::string::npos) << name;
    const std::string le = name.substr(le_pos + 4, name.size() - le_pos - 6);
    buckets.emplace_back(le == "+Inf"
                             ? std::numeric_limits<double>::infinity()
                             : std::stod(le),
                         value);
  }
  std::sort(buckets.begin(), buckets.end());
  ASSERT_FALSE(buckets.empty());
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i].second, buckets[i - 1].second)
        << "le=" << buckets[i].first;
  }
  EXPECT_TRUE(std::isinf(buckets.back().first));
  EXPECT_DOUBLE_EQ(buckets.back().second, 4.0);
  EXPECT_NE(text.find("# TYPE wfms_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wfms_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wfms_test_seconds histogram"),
            std::string::npos);
}

TEST(HistogramTest, P999TracksTailBetweenP99AndMax) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("wfms_test_seconds");
  // 1000 observations, uniform 1..1000 ms: p999 must sit in the far tail.
  for (int i = 1; i <= 1000; ++i) h.Observe(i * 1e-3);
  const MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* hist = snap.histogram("wfms_test_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_LE(hist->p99, hist->p999);
  EXPECT_LE(hist->p999, hist->max);
  EXPECT_GE(hist->p999, 0.9);  // the 99.9th of 1..1000ms lives near 1s
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"p999\""), std::string::npos) << json;
}

TEST(HistogramTest, ExemplarTracksMaxLatencyObservation) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("wfms_test_seconds");
  const std::string slow(32, 'b');
  h.Observe(0.5, std::string(32, 'a'));
  h.Observe(0.9, slow);
  h.Observe(0.7, std::string(32, 'c'));
  h.Observe(2.0);  // no trace id: must not displace the attributed exemplar
  EXPECT_EQ(h.exemplar_trace_id(), slow);
  EXPECT_DOUBLE_EQ(h.exemplar_value(), 0.9);
  const MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* hist = snap.histogram("wfms_test_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->exemplar_trace_id, slow);
  EXPECT_DOUBLE_EQ(hist->exemplar_value, 0.9);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"exemplar\": {\"trace_id\": \"" + slow + "\""),
            std::string::npos)
      << json;
}

TEST(HistogramTest, ExemplarAbsentWithoutAttributedObservations) {
  MetricsRegistry registry;
  registry.GetHistogram("wfms_test_seconds").Observe(0.5);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_EQ(json.find("exemplar"), std::string::npos) << json;
}

TEST(SnapshotTest, PrometheusHelpAndTypeLines) {
  MetricsRegistry registry;
  registry.GetCounter("wfms_test_total").Increment();
  registry.GetGauge("wfms_test_depth").Set(1.0);
  registry.SetHelp("wfms_test_total", "Requests served.");
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# HELP wfms_test_total Requests served.\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE wfms_test_total counter\n"), std::string::npos);
  // Metrics without registered help still get a generic HELP line.
  EXPECT_NE(text.find("# HELP wfms_test_depth wfms gauge\n"),
            std::string::npos)
      << text;
}

TEST(SnapshotTest, PrometheusEscapesHostileLabelValuesAndHelp) {
  EXPECT_EQ(PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PromEscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(PromEscapeHelp("line1\nline2 \\ tail"), "line1\\nline2 \\\\ tail");

  // Hostile help text must not be able to forge extra exposition lines: a
  // registered string full of newlines, quotes, and fake samples still
  // leaves every non-comment line a parseable `name value` pair.
  MetricsRegistry registry;
  registry.GetCounter("wfms_test_total").Increment(2);
  registry.SetHelp("wfms_test_total",
                   "evil\nwfms_forged_total 999\n# TYPE forged counter\"\\");
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_EQ(text.find("\nwfms_forged_total"), std::string::npos) << text;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
  }
}

TEST(GlobalRegistryTest, IsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace wfms::metrics

// Simulated server pool for one server type: Y FCFS servers with
// exponential failure/repair processes, round-robin dispatch over the
// currently-up servers, and failover — when a server fails, its queued
// and in-flight requests are redispatched to surviving servers, or parked
// until a repair when the whole type is down (§2 of the paper: "each
// server provides capabilities for backup and online failover").
#ifndef WFMS_SIM_SERVER_POOL_H_
#define WFMS_SIM_SERVER_POOL_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/statistics.h"
#include "queueing/distributions.h"
#include "sim/event_queue.h"

namespace wfms::sim {

struct ServerPoolStats {
  /// Per-request waiting time (arrival at the pool to first service
  /// start), collected after the warmup cutoff.
  RunningStats waiting_time;
  /// Per-request service times actually drawn.
  RunningStats service_time;
  /// Time-weighted number of up servers.
  TimeWeightedStats up_servers;
  /// Time-weighted number of busy servers (for utilization).
  TimeWeightedStats busy_servers;
  int64_t completed_requests = 0;
  int64_t failovers = 0;
  /// Requests displaced by a failure (in-flight or queued behind the
  /// failed server) and redispatched or parked — never dropped.
  int64_t requeued = 0;
};

class ServerPool {
 public:
  /// `fail_rate`/`repair_rate` may be zero to disable failures entirely
  /// (pure performance experiments).
  ServerPool(EventQueue* queue, Rng rng, int servers,
             queueing::ServiceMoments service, double fail_rate,
             double repair_rate, double warmup_end);

  /// Submits one service request at the current simulation time,
  /// dispatched round-robin over the up servers.
  void Submit();

  /// Submits one request bound to a partition key (e.g. the workflow
  /// instance id): the request goes to server key mod Y — the paper's
  /// per-instance hashed assignment "for locality" — falling back to the
  /// next up server when the home server is down.
  void SubmitKeyed(uint64_t key);

  /// Invoked whenever the number of up servers changes (for system-wide
  /// availability observation).
  void SetUpChangeCallback(std::function<void()> callback) {
    up_change_callback_ = std::move(callback);
  }
  /// Invoked with the drawn service time whenever a service begins (for
  /// audit-trail emission).
  void SetServiceCallback(std::function<void(double)> callback) {
    service_callback_ = std::move(callback);
  }

  /// Starts the failure processes (no-op when failures are disabled).
  void Start();

  /// Scripted fault injection (sim::FaultSchedule): the Force* entry
  /// points apply the same failover/repair mechanics as the random
  /// processes but never schedule follow-up random events, so a scripted
  /// run with zero fail/repair rates is fully deterministic. All are
  /// tolerant of the server already being in the target state.
  void ForceFail(size_t server_index);
  void ForceRepair(size_t server_index);
  void ForceTypeOutage();
  void ForceTypeRestore();

  /// Closes time-weighted statistics at the current time.
  void FinishStats();

  int up_count() const { return up_count_; }
  int busy_count() const { return busy_count_; }
  /// Whether one specific replica is up — the site-aware availability
  /// gauge attributes replicas back to sites with this.
  bool ServerUp(size_t server_index) const {
    return servers_[server_index].up;
  }
  /// Requests parked while the whole type is down.
  size_t parked_count() const { return parked_.size(); }
  /// The pool's RNG state — part of the simulator's replay-cursor
  /// checkpoint (see sim/checkpoint.h).
  std::array<uint64_t, 4> RngState() const { return rng_.SaveState(); }
  const ServerPoolStats& stats() const { return stats_; }
  /// Observed mean service time per completed request.
  bool AllDown() const { return up_count_ == 0; }

 private:
  struct Request {
    double arrival_time;
    bool started = false;  // waiting time recorded at first service start
  };
  struct Server {
    bool up = true;
    bool busy = false;
    uint64_t service_epoch = 0;  // invalidates completions after failover
    Request current{};
    std::deque<Request> queue;
  };

  void Dispatch(Request request);
  void DispatchTo(size_t preferred, Request request);
  void BeginService(size_t server_index);
  void CompleteService(size_t server_index, uint64_t epoch);
  void ScheduleFailure(size_t server_index);
  void FailServer(size_t server_index);
  void RepairServer(size_t server_index);
  /// Mechanics shared by the random processes and the Force* entry
  /// points: take a server down (displacing its work) / bring it back up
  /// (draining parked requests). Return false if already in that state.
  bool FailNow(size_t server_index);
  bool RepairNow(size_t server_index);
  double DrawServiceTime();
  void UpdateGauges();

  EventQueue* queue_;
  Rng rng_;
  std::vector<Server> servers_;
  std::deque<Request> parked_;  // requests while the whole type is down
  queueing::ServiceMoments service_;
  double service_scv_;
  double fail_rate_;
  double repair_rate_;
  double warmup_end_;
  int up_count_;
  int busy_count_ = 0;
  size_t next_server_ = 0;  // round-robin cursor
  ServerPoolStats stats_;
  std::function<void()> up_change_callback_;
  std::function<void(double)> service_callback_;
};

}  // namespace wfms::sim

#endif  // WFMS_SIM_SERVER_POOL_H_

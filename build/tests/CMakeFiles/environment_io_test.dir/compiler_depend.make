# Empty compiler generated dependencies file for environment_io_test.
# This may be replaced when dependencies are built.

// Canonical workflow scenarios used by tests, benches, and examples.
//
// * EpEnvironment(): the paper's running example — the electronic purchase
//   (EP) workflow of Fig. 3 on the three-server-type architecture of §5.2
//   (one communication server type, one workflow engine type, one
//   application server type) with the paper's failure/repair rates:
//   1/month, 1/week, 1/day and MTTR = 10 min.
// * BenchmarkEnvironment(): a three-workflow mix (EP + loan approval +
//   insurance claim) over five server types, standing in for the authors'
//   WFMS benchmark [7] (unavailable; see DESIGN.md §4). It exercises the
//   full control-flow spectrum: branching, loops, and parallelism.
//
// All times are in minutes. Per-activity request counts follow the style
// of Fig. 1 (e.g. an automated activity: 3 requests at the workflow
// engine, 2 at the communication server, 3 at the application server).
#ifndef WFMS_WORKFLOW_SCENARIOS_H_
#define WFMS_WORKFLOW_SCENARIOS_H_

#include "common/result.h"
#include "workflow/environment.h"

namespace wfms::workflow {

/// §5.2 failure/repair rates (per minute).
inline constexpr double kCommFailureRate = 1.0 / 43200.0;    // 1 per month
inline constexpr double kEngineFailureRate = 1.0 / 10080.0;  // 1 per week
inline constexpr double kAppFailureRate = 1.0 / 1440.0;      // 1 per day
inline constexpr double kRepairRate = 1.0 / 10.0;            // MTTR 10 min

/// DSL text of the EP / Notify / Delivery charts (Fig. 3).
const char* EpChartsDsl();

/// EP workflow on the 3-type architecture; `arrival_rate` in workflows per
/// minute (default 0.5 — moderate load on a single engine server).
Result<Environment> EpEnvironment(double arrival_rate = 0.5);

/// DSL text of the loan approval and insurance claim charts.
const char* LoanChartsDsl();
const char* ClaimChartsDsl();

/// EP on two sites (EU, US) for the geo-distribution experiments
/// (DESIGN.md §12): each site can crash as a whole (MTTF 1 year, MTTR
/// 1 h), the WAN link partitions about once a month and heals in ~20 min,
/// and cross-site communication adds `cross_site_latency` minutes to the
/// communication-server service time (default 0.002 min = 120 ms).
/// Replica placement is per configuration (Configuration::FromSiteCounts);
/// the environment itself fixes only the topology.
Result<Environment> GeoEpEnvironment(double arrival_rate = 0.5,
                                     double cross_site_latency = 0.002);

/// Three-workflow benchmark mix on five server types:
///   0: comm      (communication server)
///   1: eng-order (workflow engine, order processing)
///   2: eng-fin   (workflow engine, financial workflows)
///   3: app-db    (application server, OLTP database)
///   4: app-doc   (application server, document management)
Result<Environment> BenchmarkEnvironment(double ep_rate = 0.3,
                                         double loan_rate = 0.1,
                                         double claim_rate = 0.05);

}  // namespace wfms::workflow

#endif  // WFMS_WORKFLOW_SCENARIOS_H_

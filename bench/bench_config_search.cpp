// E7 — §7.2 configuration search: greedy heuristic vs exhaustive optimum
// vs simulated annealing vs branch-and-bound on the EP scenario and the
// benchmark mix, at a range of goal strictness levels: recommended
// configuration, cost, number of model evaluations, cache hits, and
// wall-clock time.
//
// A second experiment quantifies the assessment-reuse layer on the
// 3-server-type scenario: cold sequential search (1 thread, empty cache)
// vs the same search with the pool's default lane count, and vs a replay
// on the warmed cache.
//
// Usage: bench_config_search [--benchmark_format=json]
// The JSON mode emits one machine-readable object per measurement on
// stdout (an array), for regression tracking.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "configtool/tool.h"
#include "workflow/scenarios.h"

namespace {

double MillisSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Measurement {
  std::string scenario;
  std::string goals;
  std::string method;
  std::string config;
  double cost = 0.0;
  int evaluations = 0;
  int cache_hits = 0;
  bool satisfied = false;
  double wall_ms = 0.0;
};

std::vector<Measurement>& Measurements() {
  static std::vector<Measurement> measurements;
  return measurements;
}

void EmitJson() {
  std::printf("[\n");
  const auto& ms = Measurements();
  for (size_t i = 0; i < ms.size(); ++i) {
    const Measurement& m = ms[i];
    std::printf("  {\"scenario\": \"%s\", \"goals\": \"%s\", "
                "\"method\": \"%s\", \"config\": \"%s\", \"cost\": %.1f, "
                "\"evaluations\": %d, \"cache_hits\": %d, "
                "\"satisfied\": %s, \"wall_ms\": %.3f}%s\n",
                m.scenario.c_str(), m.goals.c_str(), m.method.c_str(),
                m.config.c_str(), m.cost, m.evaluations, m.cache_hits,
                m.satisfied ? "true" : "false", m.wall_ms,
                i + 1 < ms.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfms;

  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--benchmark_format=json") == 0) json = true;
  }

  struct GoalLevel {
    const char* name;
    double max_waiting;       // minutes
    double min_availability;
  };
  const GoalLevel levels[] = {
      {"lenient", 0.2, 0.999},
      {"medium", 0.05, 0.99999},
      {"strict", 0.02, 0.999999},
  };

  for (const bool benchmark_mix : {false, true}) {
    Result<workflow::Environment> env =
        benchmark_mix ? workflow::BenchmarkEnvironment(0.6, 0.2, 0.1)
                      : workflow::EpEnvironment(1.5);
    if (!env.ok()) return 1;
    auto tool = configtool::ConfigurationTool::Create(*env);
    if (!tool.ok()) return 1;
    configtool::SearchConstraints constraints;
    constraints.max_replicas.assign(env->num_server_types(),
                                    benchmark_mix ? 4 : 5);
    const char* scenario = benchmark_mix ? "benchmark-mix-5" : "ep-3";

    if (!json) {
      std::printf("E7 (%s): greedy vs exhaustive vs annealing vs bnb "
                  "(%zu lanes)\n",
                  benchmark_mix ? "benchmark mix, 5 types" : "EP, 3 types",
                  tool->num_threads());
      std::printf("%-8s %-12s %-16s %5s %6s %5s %9s\n", "goals", "method",
                  "config", "cost", "evals", "hits", "time[ms]");
    }
    for (const GoalLevel& level : levels) {
      configtool::Goals goals;
      goals.max_waiting_time = level.max_waiting;
      goals.min_availability = level.min_availability;

      auto t0 = std::chrono::steady_clock::now();
      auto greedy = tool->GreedyMinCost(goals, constraints);
      const double greedy_ms = MillisSince(t0);

      t0 = std::chrono::steady_clock::now();
      auto exhaustive = tool->ExhaustiveMinCost(goals, constraints);
      const double exhaustive_ms = MillisSince(t0);

      configtool::AnnealingOptions annealing;
      annealing.iterations = benchmark_mix ? 300 : 400;
      t0 = std::chrono::steady_clock::now();
      auto annealed = tool->AnnealingMinCost(goals, constraints,
                                             configtool::CostModel::Uniform(),
                                             annealing);
      const double annealing_ms = MillisSince(t0);

      t0 = std::chrono::steady_clock::now();
      auto bnb = tool->BranchAndBoundMinCost(goals, constraints);
      const double bnb_ms = MillisSince(t0);

      const auto record = [&](const char* method,
                              const Result<configtool::SearchResult>& r,
                              double ms) {
        if (!r.ok()) {
          std::fprintf(stderr, "%-8s %-12s search failed: %s\n", level.name,
                       method, r.status().ToString().c_str());
          return;
        }
        Measurements().push_back({scenario, level.name, method,
                                  r->config.ToString(), r->cost,
                                  r->evaluations, r->cache_hits,
                                  r->satisfied, ms});
        if (!json) {
          std::printf("%-8s %-12s %-16s %5.0f %6d %5d %9.1f%s\n", level.name,
                      method, r->config.ToString().c_str(), r->cost,
                      r->evaluations, r->cache_hits, ms,
                      r->satisfied ? "" : "  (goals unreachable)");
        }
      };
      record("greedy", greedy, greedy_ms);
      record("exhaustive", exhaustive, exhaustive_ms);
      record("annealing", annealed, annealing_ms);
      record("bnb", bnb, bnb_ms);
    }
    if (!json) std::printf("\n");
  }

  // Speedup experiment (3-server-type scenario, strict goals): the same
  // search cold-sequential, cold with the default lane count, and replayed
  // against the warmed assessment cache.
  {
    Result<workflow::Environment> env = workflow::EpEnvironment(1.5);
    if (!env.ok()) return 1;
    auto tool = configtool::ConfigurationTool::Create(*env);
    if (!tool.ok()) return 1;
    configtool::SearchConstraints constraints;
    constraints.max_replicas.assign(env->num_server_types(), 5);
    configtool::Goals goals;
    goals.max_waiting_time = 0.05;
    goals.min_availability = 0.99999;
    const size_t lanes = ThreadPool::DefaultThreadCount();

    if (!json) {
      std::printf("speedup (EP, 3 types, medium): cold 1 lane vs cold "
                  "%zu lane(s) vs warm cache\n", lanes);
      std::printf("%-12s %-14s %6s %5s %9s %8s\n", "method", "mode", "evals",
                  "hits", "time[ms]", "speedup");
    }
    const auto run = [&](const char* method, const char* mode,
                         size_t threads, bool clear_cache,
                         double baseline_ms) -> double {
      tool->set_num_threads(threads);
      if (clear_cache) tool->ClearAssessmentCache();
      const auto t0 = std::chrono::steady_clock::now();
      auto r = std::strcmp(method, "exhaustive") == 0
                   ? tool->ExhaustiveMinCost(goals, constraints)
                   : tool->BranchAndBoundMinCost(goals, constraints);
      const double ms = MillisSince(t0);
      if (!r.ok()) {
        std::fprintf(stderr, "%s %s failed: %s\n", method, mode,
                     r.status().ToString().c_str());
        return ms;
      }
      Measurements().push_back(
          {"ep-3-speedup", std::string("medium/") + mode, method,
           r->config.ToString(), r->cost, r->evaluations, r->cache_hits,
           r->satisfied, ms});
      if (!json) {
        std::printf("%-12s %-14s %6d %5d %9.1f %7.1fx\n", method, mode,
                    r->evaluations, r->cache_hits, ms,
                    baseline_ms > 0.0 ? baseline_ms / ms : 1.0);
      }
      return ms;
    };
    for (const char* method : {"exhaustive", "bnb"}) {
      const double cold_ms = run(method, "cold-1-lane", 1, true, 0.0);
      run(method, "cold-n-lanes", lanes, true, cold_ms);
      run(method, "warm-cache", lanes, false, cold_ms);
    }
    if (!json) std::printf("\n");
  }

  if (json) {
    EmitJson();
  } else {
    std::printf("expected shape: greedy matches the exhaustive optimum cost "
                "(within one server) at a fraction of the evaluations; the "
                "warm-cache replay answers from the memo table alone.\n");
  }
  return 0;
}

#include "statechart/interpreter.h"

#include <gtest/gtest.h>

#include "statechart/parser.h"
#include "tests/test_charts.h"

namespace wfms::statechart {
namespace {

TEST(ParseActionTest, AllKinds) {
  auto st = ParseAction("st!(new_order)");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->kind, ParsedAction::Kind::kStartActivity);
  EXPECT_EQ(st->argument, "new_order");
  auto tr = ParseAction("tr!(PayByCreditCard)");
  ASSERT_TRUE(tr.ok());
  EXPECT_EQ(tr->kind, ParsedAction::Kind::kSetTrue);
  auto fs = ParseAction("fs!(C)");
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ(fs->kind, ParsedAction::Kind::kSetFalse);
  auto ev = ParseAction("ev!(Done)");
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev->kind, ParsedAction::Kind::kRaiseEvent);
}

TEST(ParseActionTest, Malformed) {
  EXPECT_FALSE(ParseAction("st!()").ok());
  EXPECT_FALSE(ParseAction("st(x)").ok());
  EXPECT_FALSE(ParseAction("zz!(x)").ok());
  EXPECT_FALSE(ParseAction("").ok());
  EXPECT_FALSE(ParseAction("st!(x").ok());
}

TEST(ConditionTest, Evaluation) {
  ConditionContext ctx;
  ctx.Set("A", true);
  ctx.Set("B", false);
  EXPECT_TRUE(*EvaluateCondition("", ctx));
  EXPECT_TRUE(*EvaluateCondition("A", ctx));
  EXPECT_FALSE(*EvaluateCondition("B", ctx));
  EXPECT_FALSE(*EvaluateCondition("!A", ctx));
  EXPECT_TRUE(*EvaluateCondition("!B", ctx));
  EXPECT_TRUE(*EvaluateCondition("A&!B", ctx));
  EXPECT_FALSE(*EvaluateCondition("A&B", ctx));
  // Unknown variables read as false.
  EXPECT_FALSE(*EvaluateCondition("Unknown", ctx));
  EXPECT_TRUE(*EvaluateCondition("!Unknown", ctx));
  // Double negation.
  EXPECT_TRUE(*EvaluateCondition("!!A", ctx));
  // Malformed: empty conjunct.
  EXPECT_FALSE(EvaluateCondition("A&", ctx).ok());
  EXPECT_FALSE(EvaluateCondition("!", ctx).ok());
}

ChartRegistry ParseEp() {
  auto registry = ParseCharts(wfms::testing::kEpChartsDsl);
  EXPECT_TRUE(registry.ok()) << registry.status();
  return *std::move(registry);
}

TEST(InterpreterTest, CreditCardPathThroughEp) {
  const ChartRegistry registry = ParseEp();
  const StateChart* ep = *registry.GetChart("EP");
  ChartInterpreter interp(&registry, ep);
  ASSERT_TRUE(interp.Start().ok());
  EXPECT_EQ(interp.current_state(), "NewOrder");
  EXPECT_FALSE(interp.finished());

  // Customer pays by (valid) credit card.
  interp.context().Set("PayByCreditCard", true);
  ASSERT_TRUE(interp.DeliverEvent("NewOrder_DONE").ok());
  EXPECT_EQ(interp.current_state(), "CreditCardCheck");
  ASSERT_TRUE(interp.DeliverEvent("CreditCardCheck_DONE").ok());
  EXPECT_EQ(interp.current_state(), "Shipment");

  // Drive the parallel subworkflows to completion.
  ASSERT_TRUE(interp.DeliverEvent("PrepareNotice_DONE").ok());
  EXPECT_EQ(interp.current_state(), "Shipment");  // join not complete
  ASSERT_TRUE(interp.DeliverEvent("PickItems_DONE").ok());
  EXPECT_EQ(interp.current_state(), "Shipment");
  // PackItems_DONE lets Delivery reach its final state, completing the
  // join; the Shipment state's own outgoing transition is eventless with
  // condition PayByCreditCard, so it fires in the same dispatch.
  ASSERT_TRUE(interp.DeliverEvent("PackItems_DONE").ok());
  EXPECT_EQ(interp.current_state(), "ChargeCreditCard");
  ASSERT_TRUE(interp.DeliverEvent("ChargeCreditCard_DONE").ok());
  EXPECT_EQ(interp.current_state(), "EPExit");
  EXPECT_TRUE(interp.finished());

  // The st!(...) actions along the path were recorded.
  const auto& started = interp.started_activities();
  ASSERT_FALSE(started.empty());
  EXPECT_EQ(started[0], "cc_check");
}

TEST(InterpreterTest, InvoicePathWithDunningLoop) {
  const ChartRegistry registry = ParseEp();
  const StateChart* ep = *registry.GetChart("EP");
  ChartInterpreter interp(&registry, ep);
  ASSERT_TRUE(interp.Start().ok());
  // Pay by invoice.
  interp.context().Set("PayByCreditCard", false);
  ASSERT_TRUE(interp.DeliverEvent("NewOrder_DONE").ok());
  EXPECT_EQ(interp.current_state(), "Shipment");
  ASSERT_TRUE(interp.DeliverEvent("PrepareNotice_DONE").ok());
  ASSERT_TRUE(interp.DeliverEvent("PickItems_DONE").ok());
  // Completing the join triggers the eventless Shipment -> SendInvoice
  // transition (condition !PayByCreditCard) in the same dispatch.
  ASSERT_TRUE(interp.DeliverEvent("PackItems_DONE").ok());
  EXPECT_EQ(interp.current_state(), "SendInvoice");
  ASSERT_TRUE(interp.DeliverEvent("SendInvoice_DONE").ok());
  EXPECT_EQ(interp.current_state(), "CollectPayment");
  // Customer pays late once: dunning loop.
  ASSERT_TRUE(interp.DeliverEvent("PaymentOverdue").ok());
  EXPECT_EQ(interp.current_state(), "SendInvoice");
  ASSERT_TRUE(interp.DeliverEvent("SendInvoice_DONE").ok());
  ASSERT_TRUE(interp.DeliverEvent("PaymentReceived").ok());
  EXPECT_EQ(interp.current_state(), "EPExit");
  EXPECT_TRUE(interp.finished());
}

TEST(InterpreterTest, ReworkLoopInDelivery) {
  const ChartRegistry registry = ParseEp();
  const StateChart* delivery = *registry.GetChart("Delivery");
  ChartInterpreter interp(&registry, delivery);
  ASSERT_TRUE(interp.Start().ok());
  ASSERT_TRUE(interp.DeliverEvent("PickItems_DONE").ok());
  EXPECT_EQ(interp.current_state(), "PackItems");
  // Items missing: back to picking.
  interp.context().Set("ItemsMissing", true);
  ASSERT_TRUE(interp.DeliverEvent("anything").ok());
  EXPECT_EQ(interp.current_state(), "PickItems");
  interp.context().Set("ItemsMissing", false);
  ASSERT_TRUE(interp.DeliverEvent("PickItems_DONE").ok());
  ASSERT_TRUE(interp.DeliverEvent("go").ok());
  EXPECT_EQ(interp.current_state(), "ShipItems");
  EXPECT_TRUE(interp.finished());
  // Trace records the loop: Pick, Pack, Pick, Pack, Ship.
  ASSERT_EQ(interp.trace().size(), 5u);
  EXPECT_EQ(interp.trace()[0], "PickItems");
  EXPECT_EQ(interp.trace()[1], "PackItems");
  EXPECT_EQ(interp.trace()[2], "PickItems");
  EXPECT_EQ(interp.trace()[4], "ShipItems");
}

TEST(InterpreterTest, InternalEventsCascade) {
  auto chart = ParseSingleChart(R"(
chart Cascade
  state A residence=1
  state B residence=1
  state C residence=1
  initial A
  final C
  trans A -> B prob=1 event=go action=ev!(auto)
  trans B -> C prob=1 event=auto
end
)");
  ASSERT_TRUE(chart.ok());
  ChartInterpreter interp(nullptr, &*chart);
  ASSERT_TRUE(interp.Start().ok());
  auto fired = interp.DeliverEvent("go");
  ASSERT_TRUE(fired.ok());
  // One external delivery fires two transitions via the raised event.
  EXPECT_EQ(*fired, 2);
  EXPECT_TRUE(interp.finished());
}

TEST(InterpreterTest, ActionsModifyConditions) {
  auto chart = ParseSingleChart(R"(
chart Flags
  state A residence=1
  state B residence=1
  state C residence=1
  initial A
  final C
  trans A -> B prob=1 event=go action=tr!(Flag) action=fs!(Other)
  trans B -> C prob=1 event=check cond=Flag&!Other
end
)");
  ASSERT_TRUE(chart.ok());
  ChartInterpreter interp(nullptr, &*chart);
  ASSERT_TRUE(interp.Start().ok());
  interp.context().Set("Other", true);
  ASSERT_TRUE(interp.DeliverEvent("go").ok());
  EXPECT_TRUE(interp.context().Get("Flag"));
  EXPECT_FALSE(interp.context().Get("Other"));
  ASSERT_TRUE(interp.DeliverEvent("check").ok());
  EXPECT_TRUE(interp.finished());
}

TEST(InterpreterTest, EventlessTransitionFiresOnAnyDelivery) {
  auto chart = ParseSingleChart(R"(
chart Auto
  state A residence=1
  state B residence=1
  initial A
  final B
  trans A -> B prob=1
end
)");
  ASSERT_TRUE(chart.ok());
  ChartInterpreter interp(nullptr, &*chart);
  ASSERT_TRUE(interp.Start().ok());
  ASSERT_TRUE(interp.DeliverEvent("whatever").ok());
  EXPECT_TRUE(interp.finished());
}

TEST(InterpreterTest, EvLoopDetected) {
  auto chart = ParseSingleChart(R"(
chart Loop
  state A residence=1
  state B residence=1
  state C residence=1
  initial A
  final C
  trans A -> B prob=1 event=tick action=ev!(tick)
  trans B -> A prob=0.5 event=tick action=ev!(tick)
  trans B -> C prob=0.5 event=never
end
)");
  ASSERT_TRUE(chart.ok());
  ChartInterpreter interp(nullptr, &*chart);
  ASSERT_TRUE(interp.Start().ok());
  auto fired = interp.DeliverEvent("tick");
  ASSERT_FALSE(fired.ok());
  EXPECT_EQ(fired.status().code(), StatusCode::kNumericError);
}

TEST(InterpreterTest, LifecycleErrors) {
  auto chart = ParseSingleChart(R"(
chart T
  state A residence=1
  state B residence=1
  initial A
  final B
  trans A -> B prob=1
end
)");
  ASSERT_TRUE(chart.ok());
  ChartInterpreter interp(nullptr, &*chart);
  EXPECT_FALSE(interp.DeliverEvent("x").ok());  // not started
  ASSERT_TRUE(interp.Start().ok());
  EXPECT_FALSE(interp.Start().ok());  // double start
}

}  // namespace
}  // namespace wfms::statechart

// Structured diagnostics and resource budgets for numerical solves.
// Every iterative solver reports a SolveDiagnostics instead of a bare
// converged flag, so callers can distinguish "diverged" (NaN/blow-up) from
// "stalled" (progress too slow to reach the tolerance) from "ran out of
// budget" — the distinctions the steady-state degradation cascade acts on
// (see markov/steady_state.h and DESIGN.md "Failure handling").
#ifndef WFMS_COMMON_SOLVE_DIAGNOSTICS_H_
#define WFMS_COMMON_SOLVE_DIAGNOSTICS_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/trace.h"

namespace wfms {

struct SolveDiagnostics {
  bool converged = false;
  /// The iterate or residual became non-finite (NaN/Inf) or blew up.
  bool diverged = false;
  /// Progress per iteration was too slow to reach the tolerance within the
  /// remaining budget (detected by the stall window, see IterativeOptions).
  bool stalled = false;
  int iterations = 0;
  /// Infinity norm of the final residual (or iterate change for power
  /// iteration, where the residual is the change).
  double final_residual = 0.0;
  double wall_time_seconds = 0.0;

  /// e.g. "converged in 42 iterations (residual 3.1e-14, 0.8 ms)".
  std::string ToString() const;
};

/// Caller-supplied cap on the total work a solve — including every rung of
/// a degradation cascade — may spend. Zero or negative fields mean
/// "unlimited"; the default budget is unlimited.
struct SolveBudget {
  double max_wall_time_seconds = 0.0;
  int64_t max_total_iterations = 0;
  /// Request-trace context the solve runs under (DESIGN.md §13). The
  /// budget is the one value already threaded from the service layer down
  /// into every cascade rung, so the context rides it explicitly instead
  /// of leaking through a thread-local across the worker pool. Invalid
  /// (default) outside a traced request; does not affect `unlimited()`.
  trace::TraceContext trace;

  bool unlimited() const {
    return max_wall_time_seconds <= 0.0 && max_total_iterations <= 0;
  }
};

/// Tracks consumption of one SolveBudget across the rungs of a cascade.
/// Wall time starts at construction; iterations are charged explicitly.
class BudgetTracker {
 public:
  explicit BudgetTracker(const SolveBudget& budget)
      : budget_(budget), start_(std::chrono::steady_clock::now()) {}

  void Charge(int iterations) { consumed_ += iterations; }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  int64_t consumed_iterations() const { return consumed_; }

  bool WallTimeExhausted() const {
    return budget_.max_wall_time_seconds > 0.0 &&
           ElapsedSeconds() >= budget_.max_wall_time_seconds;
  }

  /// Iterations a rung may still spend, capped by `rung_cap` (> 0).
  int RemainingIterations(int rung_cap) const {
    if (budget_.max_total_iterations <= 0) return rung_cap;
    const int64_t left = budget_.max_total_iterations - consumed_;
    if (left <= 0) return 0;
    return static_cast<int>(
        std::min<int64_t>(left, static_cast<int64_t>(rung_cap)));
  }

  /// Wall-clock seconds a rung may still spend; 0 = unlimited.
  double RemainingSeconds() const {
    if (budget_.max_wall_time_seconds <= 0.0) return 0.0;
    const double left = budget_.max_wall_time_seconds - ElapsedSeconds();
    // A vanishing-but-positive remainder still bounds the rung.
    return left > 0.0 ? left : 1e-9;
  }

  bool Exhausted() const {
    return WallTimeExhausted() || RemainingIterations(1) == 0;
  }

 private:
  SolveBudget budget_;
  std::chrono::steady_clock::time_point start_;
  int64_t consumed_ = 0;
};

}  // namespace wfms

#endif  // WFMS_COMMON_SOLVE_DIAGNOSTICS_H_

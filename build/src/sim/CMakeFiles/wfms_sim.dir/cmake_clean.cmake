file(REMOVE_RECURSE
  "CMakeFiles/wfms_sim.dir/event_queue.cc.o"
  "CMakeFiles/wfms_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/wfms_sim.dir/server_pool.cc.o"
  "CMakeFiles/wfms_sim.dir/server_pool.cc.o.d"
  "CMakeFiles/wfms_sim.dir/simulator.cc.o"
  "CMakeFiles/wfms_sim.dir/simulator.cc.o.d"
  "libwfms_sim.a"
  "libwfms_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for to_ctmc_test.
# This may be replaced when dependencies are built.

// Multi-site extension of the environment model (DESIGN.md §12): server
// replicas are placed at named sites, sites fail and repair as a whole
// (common-shock crash taking down every replica at the site at once),
// site pairs can partition (cross-site traffic severed until healed), and
// an inter-site latency matrix inflates communication-server service
// times. The coverage structure function here — "the WFMS is available
// iff some connected component of up sites hosts at least one up replica
// of every server type" — is shared by the availability CTMC, the
// contingency assessment, and the simulator's availability gauge, so all
// three agree on what "available" means in a geo-distributed deployment.
#ifndef WFMS_WORKFLOW_SITES_H_
#define WFMS_WORKFLOW_SITES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace wfms::workflow {

/// One named site (data center / region). Zero rates mean the site never
/// crashes as a whole (individual server failures still apply).
struct Site {
  std::string name;
  /// Site-crash rate (1/MTTF of the whole site) and repair rate.
  double failure_rate = 0.0;
  double repair_rate = 0.0;
};

/// Sites plus the symmetric inter-site latency matrix and the pairwise
/// partition/heal process shared by every site pair. Empty (no sites)
/// means the classic single-site model; every site-aware code path is
/// gated on !empty() so single-site behavior stays byte-identical.
struct SiteTopology {
  /// Masks over sites and site pairs are uint64_t; the pair count
  /// s*(s-1)/2 must fit, and realistic geo deployments are small.
  static constexpr size_t kMaxSites = 8;

  std::vector<Site> sites;
  /// Row-major s x s one-way latency in model time units; the diagonal is
  /// zero and the matrix is symmetric (within tolerance).
  std::vector<double> latency;
  /// Per-pair partition rate (any pair severs at this rate) and heal rate.
  double partition_rate = 0.0;
  double heal_rate = 0.0;

  bool empty() const { return sites.empty(); }
  size_t num_sites() const { return sites.size(); }
  double Latency(size_t a, size_t b) const {
    return latency[a * sites.size() + b];
  }
  Result<size_t> IndexOf(const std::string& name) const;

  /// Names the offending site or latency-matrix entry on failure: matrix
  /// not s x s, asymmetric beyond tolerance, negative/non-finite entries,
  /// nonzero diagonal, duplicate site names, bad rates.
  Status Validate() const;
};

/// Number of unordered site pairs, and the lexicographic index of pair
/// (a, b) with a < b among them (pair masks are bitsets over this index).
inline size_t PairCount(size_t num_sites) {
  return num_sites * (num_sites - 1) / 2;
}
size_t PairIndex(size_t a, size_t b, size_t num_sites);

/// The coverage structure function. `up_counts` is type-major: entry
/// x * num_sites + a = number of up replicas of server type x at site a.
/// Sites connect iff both are up and their pair is not partitioned
/// (bit PairIndex(a,b) of `partitioned_pairs`). Returns the site mask of
/// the serving component: the connected component of up sites that hosts
/// >= 1 up replica of every type, picking the one with the most up
/// replicas in total (ties: lowest minimum site index) when several
/// qualify. 0 when no component covers every type (system down).
uint64_t ServingComponent(size_t num_types, size_t num_sites,
                          const int* up_counts, uint64_t up_sites,
                          uint64_t partitioned_pairs);

/// Mean extra one-way latency a request of server type x pays when its
/// origin site (uniform over all sites) differs from the serving replica's
/// site (drawn proportionally to the placement `site_counts`, type-major
/// as in Configuration::site_counts). This deterministic shift inflates
/// the type's service-time moments in the queueing layer.
double MeanCrossSiteLatency(const SiteTopology& topology,
                            const std::vector<int>& site_counts,
                            size_t type_index);

}  // namespace wfms::workflow

#endif  // WFMS_WORKFLOW_SITES_H_

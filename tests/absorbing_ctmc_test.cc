#include "markov/absorbing_ctmc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "markov/first_passage.h"
#include "markov/phase_type.h"
#include "markov/transient.h"

namespace wfms::markov {
namespace {

using linalg::DenseMatrix;
using linalg::Vector;

/// s0 --(1.0)--> s1; s1 --(q)--> s0, --(1-q)--> A. Closed forms:
/// visits(s0) = visits(s1) = 1/(1-q); R = (H0+H1)/(1-q).
AbsorbingCtmc MakeLoopChain(double q, double h0, double h1) {
  DenseMatrix p{{0, 1, 0}, {q, 0, 1 - q}, {0, 0, 0}};
  auto chain = AbsorbingCtmc::Create(std::move(p),
                                     {h0, h1, kInfiniteResidence},
                                     {"s0", "s1", "A"}, 0, 2);
  EXPECT_TRUE(chain.ok()) << chain.status();
  return *std::move(chain);
}

TEST(AbsorbingCtmcTest, CreateValidations) {
  // Self loop on a transient state.
  DenseMatrix self{{0.5, 0.5}, {0, 0}};
  EXPECT_FALSE(AbsorbingCtmc::Create(self, {1.0, kInfiniteResidence},
                                     {"a", "A"}, 0, 1)
                   .ok());
  // Row not summing to one.
  DenseMatrix bad_sum{{0, 0.5}, {0, 0}};
  EXPECT_FALSE(AbsorbingCtmc::Create(bad_sum, {1.0, kInfiniteResidence},
                                     {"a", "A"}, 0, 1)
                   .ok());
  // Non-positive residence time on a transient state.
  DenseMatrix ok_p{{0, 1}, {0, 0}};
  EXPECT_FALSE(AbsorbingCtmc::Create(ok_p, {0.0, kInfiniteResidence},
                                     {"a", "A"}, 0, 1)
                   .ok());
  // Initial == absorbing.
  EXPECT_FALSE(AbsorbingCtmc::Create(ok_p, {1.0, kInfiniteResidence},
                                     {"a", "A"}, 1, 1)
                   .ok());
  // Absorbing state unreachable.
  DenseMatrix cyc{{0, 1, 0}, {1, 0, 0}, {0, 0, 0}};
  EXPECT_FALSE(AbsorbingCtmc::Create(cyc, {1.0, 1.0, kInfiniteResidence},
                                     {"a", "b", "A"}, 0, 2)
                   .ok());
}

TEST(AbsorbingCtmcTest, TrapStateRejected) {
  // s1 is reachable but cannot reach absorption.
  DenseMatrix p{{0, 0.5, 0.5, 0}, {0, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 0, 0}};
  p.At(1, 1) = 0.0;  // s1 has no outgoing edges at all -> invalid row
  EXPECT_FALSE(
      AbsorbingCtmc::Create(p, {1, 1, 1, kInfiniteResidence},
                            {"a", "trap", "b", "A"}, 0, 3)
          .ok());
}

TEST(AbsorbingCtmcTest, AbsorbingRowNormalizedToSelfLoop) {
  const AbsorbingCtmc chain = MakeLoopChain(0.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(chain.transition_probabilities().At(2, 2), 1.0);
  EXPECT_TRUE(std::isinf(chain.residence_times()[2]));
}

TEST(AbsorbingCtmcTest, RatesAndGenerator) {
  const AbsorbingCtmc chain = MakeLoopChain(0.25, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(chain.DepartureRate(0), 0.5);
  EXPECT_DOUBLE_EQ(chain.DepartureRate(1), 0.25);
  EXPECT_DOUBLE_EQ(chain.DepartureRate(2), 0.0);
  EXPECT_DOUBLE_EQ(chain.UniformizationRate(), 0.5);
  EXPECT_DOUBLE_EQ(chain.TransitionRate(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(chain.TransitionRate(1, 0), 0.25 * 0.25);

  const DenseMatrix q = chain.Generator();
  for (size_t i = 0; i < chain.num_states(); ++i) {
    double row = 0.0;
    for (size_t j = 0; j < chain.num_states(); ++j) row += q.At(i, j);
    EXPECT_NEAR(row, 0.0, 1e-12) << "row " << i;
  }
  EXPECT_DOUBLE_EQ(q.At(0, 0), -0.5);
}

TEST(AbsorbingCtmcTest, UniformizedMatrixIsStochastic) {
  const AbsorbingCtmc chain = MakeLoopChain(0.3, 1.0, 5.0);
  const DenseMatrix u = chain.UniformizedTransitionMatrix();
  for (size_t i = 0; i < chain.num_states(); ++i) {
    double row = 0.0;
    for (size_t j = 0; j < chain.num_states(); ++j) {
      EXPECT_GE(u.At(i, j), 0.0);
      row += u.At(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
  // The slow state (H=5) keeps a large self-loop after uniformization.
  EXPECT_NEAR(u.At(1, 1), 1.0 - 0.2 / 1.0, 1e-12);
}

TEST(FirstPassageTest, SingleActivityChain) {
  DenseMatrix p{{0, 1}, {0, 0}};
  auto chain = AbsorbingCtmc::Create(p, {7.5, kInfiniteResidence}, {"a", "A"},
                                     0, 1);
  ASSERT_TRUE(chain.ok());
  auto r = MeanTurnaroundTime(*chain);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 7.5, 1e-12);
}

TEST(FirstPassageTest, LoopChainClosedForm) {
  for (double q : {0.0, 0.2, 0.5, 0.9}) {
    const AbsorbingCtmc chain = MakeLoopChain(q, 2.0, 3.0);
    auto r = MeanTurnaroundTime(chain);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(*r, (2.0 + 3.0) / (1.0 - q), 1e-9) << "q=" << q;
  }
}

TEST(FirstPassageTest, GaussSeidelMatchesLu) {
  const AbsorbingCtmc chain = MakeLoopChain(0.7, 1.5, 0.5);
  auto lu = MeanFirstPassageTimes(chain, FirstPassageMethod::kLu);
  auto gs = MeanFirstPassageTimes(chain, FirstPassageMethod::kGaussSeidel);
  ASSERT_TRUE(lu.ok());
  ASSERT_TRUE(gs.ok()) << gs.status();
  for (size_t i = 0; i < chain.num_states(); ++i) {
    EXPECT_NEAR((*gs)[i], (*lu)[i], 1e-8);
  }
}

TEST(FirstPassageTest, EqualsVisitWeightedResidenceTimes) {
  // R_t = sum_b visits(b) * H_b — two independent derivations must agree.
  const AbsorbingCtmc chain = MakeLoopChain(0.35, 2.5, 4.0);
  auto r = MeanTurnaroundTime(chain);
  auto visits = ExpectedStateVisits(chain);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(visits.ok());
  double weighted = 0.0;
  for (size_t i = 0; i < chain.num_states(); ++i) {
    if (i == chain.absorbing_state()) continue;
    weighted += (*visits)[i] * chain.residence_times()[i];
  }
  EXPECT_NEAR(*r, weighted, 1e-9);
}

TEST(TransientTest, VisitsMatchClosedForm) {
  const AbsorbingCtmc chain = MakeLoopChain(0.25, 1.0, 1.0);
  auto visits = ExpectedStateVisits(chain);
  ASSERT_TRUE(visits.ok());
  EXPECT_NEAR((*visits)[0], 4.0 / 3.0, 1e-12);
  EXPECT_NEAR((*visits)[1], 4.0 / 3.0, 1e-12);
}

TEST(TransientTest, RewardMatchesVisitInnerProduct) {
  // The uniformization/taboo computation (§4.2.1) must agree with the
  // exact embedded-chain fundamental matrix: r = sum_b visits(b) * l_b.
  const AbsorbingCtmc chain = MakeLoopChain(0.4, 2.0, 6.0);
  const Vector rewards{3.0, 2.0, 0.0};  // e.g. requests on some server type
  auto reward = ExpectedRewardUntilAbsorption(chain, rewards);
  auto visits = ExpectedStateVisits(chain);
  ASSERT_TRUE(reward.ok()) << reward.status();
  ASSERT_TRUE(visits.ok());
  const double expected = (*visits)[0] * 3.0 + (*visits)[1] * 2.0;
  EXPECT_NEAR(reward->expected_reward, expected, 1e-8);
  EXPECT_LE(reward->residual_mass, 1e-12);
}

TEST(TransientTest, RewardCountsInitialEntryOnce) {
  DenseMatrix p{{0, 1}, {0, 0}};
  auto chain = AbsorbingCtmc::Create(p, {1.0, kInfiniteResidence}, {"a", "A"},
                                     0, 1);
  ASSERT_TRUE(chain.ok());
  auto reward = ExpectedRewardUntilAbsorption(*chain, Vector{5.0, 100.0});
  ASSERT_TRUE(reward.ok());
  // One visit to s0 earning 5; absorbing state's reward must be ignored.
  EXPECT_NEAR(reward->expected_reward, 5.0, 1e-10);
}

TEST(TransientTest, RewardSizeMismatchRejected) {
  const AbsorbingCtmc chain = MakeLoopChain(0.2, 1.0, 1.0);
  EXPECT_FALSE(ExpectedRewardUntilAbsorption(chain, Vector{1.0}).ok());
}

TEST(TransientTest, StepCapTooSmallIsError) {
  const AbsorbingCtmc chain = MakeLoopChain(0.9, 1.0, 1.0);
  RewardOptions opts;
  opts.max_steps = 2;
  const auto r = ExpectedRewardUntilAbsorption(chain, Vector{1, 1, 0}, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNumericError);
}

TEST(TransientTest, AbsorptionStepBoundMonotoneInConfidence) {
  const AbsorbingCtmc chain = MakeLoopChain(0.5, 1.0, 2.0);
  auto z90 = AbsorptionStepBound(chain, 0.90);
  auto z99 = AbsorptionStepBound(chain, 0.99);
  auto z999 = AbsorptionStepBound(chain, 0.999);
  ASSERT_TRUE(z90.ok());
  ASSERT_TRUE(z99.ok());
  ASSERT_TRUE(z999.ok());
  EXPECT_LE(*z90, *z99);
  EXPECT_LE(*z99, *z999);
  EXPECT_GT(*z999, 0);
}

TEST(TransientTest, AbsorptionStepBoundRejectsBadConfidence) {
  const AbsorbingCtmc chain = MakeLoopChain(0.5, 1.0, 2.0);
  EXPECT_FALSE(AbsorptionStepBound(chain, 0.0).ok());
  EXPECT_FALSE(AbsorptionStepBound(chain, 1.0).ok());
}

TEST(PhaseTypeTest, ExpansionPreservesTurnaroundTime) {
  const AbsorbingCtmc chain = MakeLoopChain(0.3, 2.0, 4.0);
  auto expansion = ExpandErlangStages(chain, {3, 2, 1});
  ASSERT_TRUE(expansion.ok()) << expansion.status();
  EXPECT_EQ(expansion->chain.num_states(), 6u);
  auto r0 = MeanTurnaroundTime(chain);
  auto r1 = MeanTurnaroundTime(expansion->chain);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_NEAR(*r0, *r1, 1e-9);
}

TEST(PhaseTypeTest, ExpansionPreservesEntryRewards) {
  const AbsorbingCtmc chain = MakeLoopChain(0.3, 2.0, 4.0);
  const Vector rewards{5.0, 7.0, 0.0};
  auto expansion = ExpandErlangStages(chain, {4, 1, 1});
  ASSERT_TRUE(expansion.ok());
  const Vector lifted = expansion->LiftEntryRewards(rewards);
  auto orig = ExpectedRewardUntilAbsorption(chain, rewards);
  auto expanded = ExpectedRewardUntilAbsorption(expansion->chain, lifted);
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(expanded.ok());
  EXPECT_NEAR(orig->expected_reward, expanded->expected_reward, 1e-7);
}

TEST(PhaseTypeTest, RejectsInvalidStages) {
  const AbsorbingCtmc chain = MakeLoopChain(0.3, 2.0, 4.0);
  EXPECT_FALSE(ExpandErlangStages(chain, {0, 1, 1}).ok());
  EXPECT_FALSE(ExpandErlangStages(chain, {1, 1, 2}).ok());  // absorbing
  EXPECT_FALSE(ExpandErlangStages(chain, {1, 1}).ok());     // size mismatch
}

TEST(PhaseTypeTest, StageNamesAndOrigins) {
  const AbsorbingCtmc chain = MakeLoopChain(0.0, 1.0, 1.0);
  auto expansion = ExpandErlangStages(chain, {2, 1, 1});
  ASSERT_TRUE(expansion.ok());
  EXPECT_EQ(expansion->chain.state_name(0), "s0#1");
  EXPECT_EQ(expansion->chain.state_name(1), "s0#2");
  EXPECT_EQ(expansion->chain.state_name(2), "s1");
  EXPECT_EQ(expansion->origin[1], 0u);
  EXPECT_TRUE(expansion->is_first_stage[0]);
  EXPECT_FALSE(expansion->is_first_stage[1]);
}

}  // namespace
}  // namespace wfms::markov

file(REMOVE_RECURSE
  "CMakeFiles/dtmc_test.dir/dtmc_test.cc.o"
  "CMakeFiles/dtmc_test.dir/dtmc_test.cc.o.d"
  "dtmc_test"
  "dtmc_test.pdb"
  "dtmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "markov/birth_death.h"

#include "linalg/vector.h"

namespace wfms::markov {

using linalg::Vector;

Result<Vector> BirthDeathSteadyState(const Vector& birth_rates,
                                     const Vector& death_rates) {
  if (birth_rates.size() != death_rates.size()) {
    return Status::InvalidArgument("birth/death rate vectors size mismatch");
  }
  if (birth_rates.empty()) {
    return Status::InvalidArgument("chain must have at least two states");
  }
  for (size_t i = 0; i < birth_rates.size(); ++i) {
    if (!(birth_rates[i] > 0.0) || !(death_rates[i] > 0.0)) {
      return Status::InvalidArgument("all rates must be positive");
    }
  }
  const size_t n = birth_rates.size() + 1;
  Vector pi(n);
  pi[0] = 1.0;
  for (size_t j = 1; j < n; ++j) {
    pi[j] = pi[j - 1] * birth_rates[j - 1] / death_rates[j - 1];
  }
  linalg::NormalizeL1(&pi);
  return pi;
}

Result<Vector> ReplicatedServerAvailability(int replicas, double failure_rate,
                                            double repair_rate) {
  if (replicas < 1) {
    return Status::InvalidArgument("need at least one replica");
  }
  if (!(failure_rate > 0.0) || !(repair_rate > 0.0)) {
    return Status::InvalidArgument("rates must be positive");
  }
  // Births: j up -> j+1 up at rate (Y-j)*mu; deaths: j+1 up -> j up at rate
  // (j+1)*lambda.
  const auto y = static_cast<size_t>(replicas);
  Vector births(y), deaths(y);
  for (size_t j = 0; j < y; ++j) {
    births[j] = static_cast<double>(y - j) * repair_rate;
    deaths[j] = static_cast<double>(j + 1) * failure_rate;
  }
  return BirthDeathSteadyState(births, deaths);
}

}  // namespace wfms::markov

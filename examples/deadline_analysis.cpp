// Deadline analysis: beyond the paper's *mean* turnaround time, the
// transient analysis of the workflow CTMC yields the full turnaround
// distribution — the probability that a workflow instance completes
// within a deadline, and turnaround quantiles. Useful for service-level
// agreements ("95 % of orders confirmed within 4 days").
//
// Build & run:  ./build/examples/deadline_analysis

#include <cstdio>

#include "common/time_units.h"
#include "markov/transient_distribution.h"
#include "perf/workflow_analysis.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;
  auto env = workflow::EpEnvironment();
  if (!env.ok()) return 1;

  auto analysis = perf::AnalyzeWorkflow(*env, env->workflows[0]);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("EP workflow: mean turnaround %s\n\n",
              FormatMinutes(analysis->turnaround_time).c_str());

  std::printf("%-12s %22s\n", "deadline", "P(completed by then)");
  for (double days : {0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0}) {
    auto prob = markov::CompletionProbabilityByTime(
        analysis->chain, DaysToMinutes(days));
    if (!prob.ok()) return 1;
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f d", days);
    std::printf("%-12s %22.4f\n", label, *prob);
  }

  std::printf("\nturnaround quantiles:\n");
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    auto quantile = markov::TurnaroundQuantile(analysis->chain, q);
    if (!quantile.ok()) return 1;
    std::printf("  p%.0f = %s\n", q * 100.0,
                FormatMinutes(*quantile).c_str());
  }
  std::printf("\nNote the heavy tail: the mean (%s) sits well above the "
              "median because the dunning loop and carrier shipment "
              "dominate slow instances.\n",
              FormatMinutes(analysis->turnaround_time).c_str());
  return 0;
}

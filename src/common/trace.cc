#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <random>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"

namespace wfms::trace {

namespace {

constexpr size_t kDefaultThreadBufferCapacity = 65536;

std::atomic<bool> g_enabled{false};
std::atomic<size_t> g_buffer_capacity{kDefaultThreadBufferCapacity};

metrics::Counter& DroppedTotal() {
  static metrics::Counter& counter =
      metrics::MetricsRegistry::Global().GetCounter("wfms_trace_dropped_total");
  return counter;
}

// splitmix64: full-period mix of a counter into well-distributed 64-bit
// values. Used for span ids so that ids minted by independent processes
// (client and server traces get merged) do not collide the way plain
// sequence numbers would.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t ProcessSeed() {
  static const uint64_t seed = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd();
  }();
  return seed;
}

uint64_t NextId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t id = 0;
  // Mix64(0) == 0 is impossible with the golden-ratio increment, but a
  // zero id would read as "no span": loop just in case the seed conspires.
  while (id == 0) {
    id = Mix64(ProcessSeed() ^ counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

void AppendHex64(std::string& out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  out += buf;
}

bool ParseHex64(std::string_view text, uint64_t* out) {
  if (text.size() != 16) return false;
  uint64_t value = 0;
  for (const char c : text) {
    int digit = -1;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

struct Event {
  std::string name;
  const char* category;  // string literal, stored by pointer
  double ts_us;          // since process start (monotonic)
  double dur_us;         // 0 for instant events
  int tid;
  char phase;  // 'X' complete, 'i' instant
  // Request-tracing links; all zero for spans recorded outside a request.
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

// One per live recording thread. The buffer's own mutex is uncontended in
// steady state (only its owner touches it) and taken by the exporter or by
// thread teardown; both also hold the collector mutex, always acquired
// first, so lock order is collector -> buffer.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
};

class Collector {
 public:
  static Collector& Get() {
    // Leaked: thread_local destructors of late-exiting threads run after
    // static destructors and must still find the collector alive.
    static Collector* const collector = new Collector();
    return *collector;
  }

  ThreadBuffer* Register() {
    auto buffer = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = buffer.get();
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::move(buffer));
    return raw;
  }

  // Called from a thread_local destructor when a recording thread exits:
  // its events move to the orphan list so they survive until export.
  void Orphan(ThreadBuffer* buffer) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = buffers_.begin(); it != buffers_.end(); ++it) {
      if (it->get() != buffer) continue;
      {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        orphans_.insert(orphans_.end(),
                        std::make_move_iterator(buffer->events.begin()),
                        std::make_move_iterator(buffer->events.end()));
      }
      buffers_.erase(it);
      return;
    }
  }

  std::vector<Event> CopyAll() const {
    std::vector<Event> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out = orphans_;
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
    return out;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    orphans_.clear();
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      buffer->events.clear();
    }
  }

  size_t EventCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = orphans_.size();
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      n += buffer->events.size();
    }
    return n;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<Event> orphans_;
};

// Thread-local handle whose destructor orphans the buffer on thread exit.
struct TlsHandle {
  ThreadBuffer* buffer = nullptr;
  ~TlsHandle() {
    if (buffer != nullptr) Collector::Get().Orphan(buffer);
  }
};

ThreadBuffer& LocalBuffer() {
  thread_local TlsHandle handle;
  if (handle.buffer == nullptr) handle.buffer = Collector::Get().Register();
  return *handle.buffer;
}

void Record(Event event) {
  ThreadBuffer& buffer = LocalBuffer();
  const size_t capacity = g_buffer_capacity.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(buffer.mutex);
    if (buffer.events.size() < capacity) {
      buffer.events.push_back(std::move(event));
      return;
    }
  }
  // Full buffer: the span is dropped but never silently — the counter makes
  // a truncated trace visible in the same export that would miss the spans.
  DroppedTotal().Increment();
}

void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendMicros(std::string& out, double us) {
  if (!std::isfinite(us) || us < 0.0) us = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  out += buf;
}

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool IsEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetThreadBufferCapacity(size_t capacity) {
  g_buffer_capacity.store(
      capacity == 0 ? kDefaultThreadBufferCapacity : capacity,
      std::memory_order_relaxed);
}

std::string TraceContext::trace_id_hex() const {
  std::string out;
  out.reserve(32);
  AppendHex64(out, trace_hi);
  AppendHex64(out, trace_lo);
  return out;
}

std::string TraceContext::span_id_hex() const {
  std::string out;
  out.reserve(16);
  AppendHex64(out, span_id);
  return out;
}

TraceContext TraceContext::Mint() {
  TraceContext ctx;
  ctx.trace_hi = NextId();
  ctx.trace_lo = NextId();
  ctx.span_id = 0;  // root: the first span opened on this context
  return ctx;
}

TraceContext TraceContext::WithRemoteParent(std::string_view trace_id_hex,
                                            std::string_view parent_span_hex) {
  TraceContext ctx;
  if (trace_id_hex.size() == 32 &&
      ParseHex64(trace_id_hex.substr(0, 16), &ctx.trace_hi) &&
      ParseHex64(trace_id_hex.substr(16, 16), &ctx.trace_lo) &&
      ctx.valid()) {
    if (!parent_span_hex.empty() &&
        !ParseHex64(parent_span_hex, &ctx.span_id)) {
      ctx.span_id = 0;  // unusable parent: keep the trace, drop the link
    }
    return ctx;
  }
  return Mint();
}

TraceSpan::TraceSpan(std::string_view name, const char* category)
    : TraceSpan(name, category, TraceContext{}) {}

TraceSpan::TraceSpan(std::string_view name, const char* category,
                     const TraceContext& parent)
    : parent_(parent) {
  if (!IsEnabled()) return;
  name_ = std::string(name);
  category_ = category;
  if (parent_.valid()) span_id_ = NextId();
  start_us_ = internal::MonotonicSeconds() * 1e6;
}

TraceSpan::~TraceSpan() {
  if (start_us_ < 0.0) return;  // was disabled at construction
  const double end_us = internal::MonotonicSeconds() * 1e6;
  Event event{std::move(name_), category_, start_us_,
              std::max(0.0, end_us - start_us_), internal::ThreadTag(), 'X'};
  if (span_id_ != 0) {
    event.trace_hi = parent_.trace_hi;
    event.trace_lo = parent_.trace_lo;
    event.span_id = span_id_;
    event.parent_span_id = parent_.span_id;
  }
  Record(std::move(event));
}

TraceContext TraceSpan::context() const {
  if (span_id_ == 0) return parent_;  // disabled or unlinked: pass through
  TraceContext ctx = parent_;
  ctx.span_id = span_id_;
  return ctx;
}

void Instant(std::string_view name, const char* category) {
  if (!IsEnabled()) return;
  Record(Event{std::string(name), category,
               internal::MonotonicSeconds() * 1e6, 0.0,
               internal::ThreadTag(), 'i'});
}

std::string ExportJson() {
  std::vector<Event> events = Collector::Get().CopyAll();
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::string out;
  out.reserve(64 + events.size() * 96);
  out += "{\n\"traceEvents\": [";
  bool first = true;
  for (const Event& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": \"";
    AppendJsonEscaped(out, event.name);
    out += "\", \"cat\": \"";
    AppendJsonEscaped(out, event.category != nullptr ? event.category
                                                     : "wfms");
    out += "\", \"ph\": \"";
    out += event.phase;
    out += "\", \"ts\": ";
    AppendMicros(out, event.ts_us);
    if (event.phase == 'X') {
      out += ", \"dur\": ";
      AppendMicros(out, event.dur_us);
    } else {
      out += ", \"s\": \"t\"";  // instant events: thread scope
    }
    out += ", \"pid\": 1, \"tid\": " + std::to_string(event.tid);
    if (event.span_id != 0) {
      out += ", \"args\": {\"trace_id\": \"";
      AppendHex64(out, event.trace_hi);
      AppendHex64(out, event.trace_lo);
      out += "\", \"span_id\": \"";
      AppendHex64(out, event.span_id);
      out += "\"";
      if (event.parent_span_id != 0) {
        out += ", \"parent_span_id\": \"";
        AppendHex64(out, event.parent_span_id);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += first ? "],\n" : "\n],\n";
  out += "\"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

Status WriteJson(const std::string& path) {
  const std::string json = ExportJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != json.size() || !closed) {
    return Status::Internal("short write to trace output file: " + path);
  }
  return Status::OK();
}

void Clear() { Collector::Get().Clear(); }

size_t event_count() { return Collector::Get().EventCount(); }

}  // namespace wfms::trace

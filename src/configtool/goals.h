// Performability goals (§7.1): administrators specify (1) a tolerance
// threshold for the mean waiting time of service requests and (2) a
// minimum availability level; both can be refined per server type.
#ifndef WFMS_CONFIGTOOL_GOALS_H_
#define WFMS_CONFIGTOOL_GOALS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace wfms::configtool {

struct Goals {
  /// Tolerance threshold on every entry of the performability waiting-time
  /// vector W^Y (model time units).
  double max_waiting_time = 1.0;
  /// Minimum steady-state availability of the entire WFMS.
  double min_availability = 0.999;
  /// Optional per-server-type waiting-time thresholds; an entry <= 0 means
  /// "use the global threshold". Empty means all-global.
  std::vector<double> per_type_max_waiting;
  /// Upper bound on the probability that some server type is saturated in
  /// an operational state (1.0 disables the check, matching the paper's
  /// two-goal formulation).
  double max_saturation_probability = 1.0;
  /// §7.1's workflow-type-specific refinement: an upper bound on the
  /// expected total queueing delay one instance of the named workflow
  /// type accumulates across all its service requests,
  /// D_t = sum_x r_{x,t} * W^Y_x. Unlisted workflow types are unbounded.
  std::map<std::string, double> max_instance_delay;

  Status Validate(size_t num_types) const;
  /// Effective threshold for server type x.
  double WaitingThreshold(size_t x) const;
};

/// Cost of a configuration (§7.1): proportional to the total number of
/// servers by default, refinable per server type.
struct CostModel {
  /// Cost of one server of each type; empty means unit cost for all.
  std::vector<double> per_server_cost;

  static CostModel Uniform() { return CostModel{}; }

  double Cost(const std::vector<int>& replicas) const;
  Status Validate(size_t num_types) const;
};

}  // namespace wfms::configtool

#endif  // WFMS_CONFIGTOOL_GOALS_H_

// Tests for the wfmsd service layer: the JSON codec, the wire protocol,
// admission control and the degradation ladder, the backend's dispositions
// and snapshot warm-restart, and a live loopback server exercised through
// the real client (including pipelining and graceful drain).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "service/admission.h"
#include "service/backend.h"
#include "service/client.h"
#include "service/flight_recorder.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/server.h"
#include "workflow/scenarios.h"

namespace wfms::service {
namespace {

using steady_clock = std::chrono::steady_clock;

std::string TempPath(const std::string& stem) {
  return testing::TempDir() + stem;
}

// ---------------------------------------------------------------- Json --

TEST(JsonTest, RoundTripsScalarsAndContainers) {
  auto doc = Json::Parse(
      R"({"a":1,"b":-2.5,"c":"x\ny","d":[true,false,null],"e":{"k":3}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetNumber("a", 0), 1.0);
  EXPECT_EQ(doc->GetNumber("b", 0), -2.5);
  EXPECT_EQ(doc->GetString("c", ""), "x\ny");
  const Json* d = doc->Find("d");
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->items().size(), 3u);
  EXPECT_TRUE(d->items()[0].bool_value());
  EXPECT_TRUE(d->items()[2].is_null());
  // Dump -> Parse -> Dump is a fixed point (deterministic serialization).
  const std::string once = doc->Dump();
  auto again = Json::Parse(once);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Dump(), once);
}

TEST(JsonTest, IntegersPrintWithoutDecimalPoint) {
  Json doc = Json::Object();
  doc.Set("n", Json::Number(42));
  doc.Set("f", Json::Number(0.5));
  EXPECT_EQ(doc.Dump(), R"({"n":42,"f":0.5})");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("{}trailing").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("").ok());
  // Nesting bomb: depth is limited, not stack-crashing.
  std::string bomb(100, '[');
  EXPECT_FALSE(Json::Parse(bomb).ok());
}

// ------------------------------------------------------------ Protocol --

TEST(ProtocolTest, ParsesFullRequest) {
  auto req = ParseRequest(
      R"({"id":"r7","op":"assess","scenario":"ep","tenant":"teamA",)"
      R"("config":[2,2,3],"max_wait":0.1,"min_avail":0.999,)"
      R"("deadline_seconds":5})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->id, "r7");
  EXPECT_EQ(req->op, Op::kAssess);
  EXPECT_EQ(req->tenant, "teamA");
  EXPECT_EQ(req->config, (std::vector<int>{2, 2, 3}));
  EXPECT_EQ(req->max_wait, 0.1);
  EXPECT_EQ(req->deadline_seconds, 5.0);
}

TEST(ProtocolTest, RejectsBadOpAndBadConfig) {
  EXPECT_FALSE(ParseRequest(R"({"op":"launch-missiles"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"assess","config":"2,2,3"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"assess","config":[1.5]})").ok());
  EXPECT_FALSE(ParseRequest("[1,2,3]").ok());
  EXPECT_FALSE(ParseRequest("not json at all").ok());
}

TEST(ProtocolTest, RenderCarriesDispositionNames) {
  Response resp;
  resp.id = "x";
  resp.disposition = Disposition::kRejectedOverloaded;
  resp.error = "queue full";
  const std::string line = resp.Render();
  auto doc = Json::Parse(line);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("status", ""), "rejected-overloaded");
  EXPECT_EQ(doc->GetString("error", ""), "queue full");
  EXPECT_EQ(doc->GetBool("degraded", true), false);
}

// ----------------------------------------------------------- Admission --

TEST(AdmissionTest, TenantBucketThrottlesBurst) {
  AdmissionOptions options;
  options.max_queue = 0;  // ladder off; isolate the bucket
  options.tenant_rate = 10.0;
  options.tenant_burst = 3.0;
  AdmissionController admission(options);
  const auto t0 = steady_clock::now();
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (admission.Admit("hog", /*queue_depth=*/0, t0).admitted) ++admitted;
  }
  EXPECT_EQ(admitted, 3);  // the burst, no refill at t0
  // Another tenant is unaffected by the hog's empty bucket.
  EXPECT_TRUE(admission.Admit("quiet", 0, t0).admitted);
  // After one second the hog has ~10 fresh tokens.
  const auto t1 = t0 + std::chrono::seconds(1);
  EXPECT_TRUE(admission.Admit("hog", 0, t1).admitted);
}

TEST(AdmissionTest, LadderDegradesThenSheds) {
  AdmissionOptions options;
  options.max_queue = 100;
  AdmissionController admission(options);
  const auto now = steady_clock::now();
  EXPECT_EQ(admission.Admit("", 0, now).degrade_level, 0);
  EXPECT_EQ(admission.Admit("", 49, now).degrade_level, 0);
  EXPECT_EQ(admission.Admit("", 50, now).degrade_level, 1);
  EXPECT_EQ(admission.Admit("", 75, now).degrade_level, 2);
  const AdmissionDecision full = admission.Admit("", 100, now);
  EXPECT_FALSE(full.admitted);
  EXPECT_FALSE(full.reason.empty());
}

// ------------------------------------------------------------- Backend --

Request AssessRequest(const std::vector<int>& config) {
  Request req;
  req.id = "t";
  req.op = Op::kAssess;
  req.scenario = "ep";
  req.config = config;
  req.max_wait = 0.05;
  req.min_avail = 0.99;
  return req;
}

TEST(BackendTest, AssessCompletesAndMemoizes) {
  Backend backend(BackendOptions{});
  const auto now = steady_clock::now();
  Response first = backend.Handle(AssessRequest({2, 2, 3}), 0, now);
  ASSERT_EQ(first.disposition, Disposition::kCompleted) << first.error;
  EXPECT_TRUE(first.result.is_object());
  EXPECT_EQ(backend.TotalCachedReports(), 1u);
  // The repeat answers from the cache with an identical payload.
  Response again = backend.Handle(AssessRequest({2, 2, 3}), 0, now);
  EXPECT_EQ(again.result.Dump(), first.result.Dump());
  EXPECT_EQ(backend.TotalCachedReports(), 1u);
}

TEST(BackendTest, ErrorsAreContained) {
  Backend backend(BackendOptions{});
  const auto now = steady_clock::now();
  Request bad_scenario = AssessRequest({1, 1, 1});
  bad_scenario.scenario = "definitely not a scenario";
  EXPECT_EQ(backend.Handle(bad_scenario, 0, now).disposition,
            Disposition::kError);
  Request bad_config = AssessRequest({1, -3, 1});
  EXPECT_EQ(backend.Handle(bad_config, 0, now).disposition,
            Disposition::kError);
  // The backend survives both and still answers.
  EXPECT_EQ(backend.Handle(AssessRequest({1, 1, 1}), 0, now).disposition,
            Disposition::kCompleted);
}

TEST(BackendTest, ExpiredDeadlineAnswersDeadlineExceeded) {
  Backend backend(BackendOptions{});
  Request req = AssessRequest({1, 1, 1});
  req.deadline_seconds = 0.001;
  // Admitted two seconds ago: the deadline died in the queue.
  const auto admitted = steady_clock::now() - std::chrono::seconds(2);
  Response resp = backend.Handle(req, 0, admitted);
  EXPECT_EQ(resp.disposition, Disposition::kDeadlineExceeded);
  EXPECT_TRUE(resp.result.is_null());
}

TEST(BackendTest, CacheOnlyLevelHitsCacheOrSheds) {
  Backend backend(BackendOptions{});
  const auto now = steady_clock::now();
  // Cold cache at level 2: a miss is shed, never computed.
  Response miss = backend.Handle(AssessRequest({2, 2, 3}), 2, now);
  EXPECT_EQ(miss.disposition, Disposition::kRejectedOverloaded);
  EXPECT_EQ(backend.TotalCachedReports(), 0u);
  // Warm the entry at level 0, then the same request serves degraded.
  ASSERT_EQ(backend.Handle(AssessRequest({2, 2, 3}), 0, now).disposition,
            Disposition::kCompleted);
  Response hit = backend.Handle(AssessRequest({2, 2, 3}), 2, now);
  EXPECT_EQ(hit.disposition, Disposition::kDegraded);
  EXPECT_FALSE(hit.degrade_reason.empty());
}

TEST(BackendTest, RecommendDowngradesAtLevelOne) {
  Backend backend(BackendOptions{});
  const auto now = steady_clock::now();
  Request req;
  req.op = Op::kRecommend;
  req.scenario = "ep";
  req.method = "exhaustive";
  req.max_wait = 0.1;
  req.min_avail = 0.999;
  req.max_replicas = 3;
  Response resp = backend.Handle(req, 1, now);
  ASSERT_EQ(resp.disposition, Disposition::kDegraded) << resp.error;
  EXPECT_NE(resp.degrade_reason.find("greedy"), std::string::npos);
  EXPECT_EQ(resp.result.GetString("method", ""), "greedy");
  // Level 0 honors the requested strategy.
  Response full = backend.Handle(req, 0, now);
  ASSERT_EQ(full.disposition, Disposition::kCompleted) << full.error;
  EXPECT_EQ(full.result.GetString("method", ""), "exhaustive");
}

TEST(BackendTest, SnapshotRoundTripsWarm) {
  const std::string path = TempPath("service_snapshot_roundtrip.wfsn");
  std::remove(path.c_str());
  BackendOptions options;
  options.snapshot_path = path;

  Backend cold(options);
  const auto now = steady_clock::now();
  Response original = cold.Handle(AssessRequest({2, 2, 3}), 0, now);
  ASSERT_EQ(original.disposition, Disposition::kCompleted);
  ASSERT_TRUE(cold.SaveCacheSnapshot().ok());

  Backend warm(options);
  auto stats = warm.LoadCacheSnapshot();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->scenarios, 1u);
  EXPECT_EQ(stats->reports, 1u);
  EXPECT_TRUE(stats->rejected.empty());
  // The warm answer is byte-identical to the cold one — and is a cache
  // hit (serving at level 2 proves no recomputation happened).
  Response restored = warm.Handle(AssessRequest({2, 2, 3}), 2, now);
  EXPECT_EQ(restored.disposition, Disposition::kDegraded);
  EXPECT_EQ(restored.result.Dump(), original.result.Dump());
  std::remove(path.c_str());
}

TEST(BackendTest, StaleFingerprintRejectsCleanly) {
  const std::string path = TempPath("service_snapshot_stale.wfsn");
  std::remove(path.c_str());
  BackendOptions options;
  options.snapshot_path = path;
  Backend writer(options);
  ASSERT_EQ(writer.Handle(AssessRequest({1, 1, 1}), 0, steady_clock::now())
                .disposition,
            Disposition::kCompleted);
  ASSERT_TRUE(writer.SaveCacheSnapshot().ok());

  // Different solver options => different fingerprint => cold start with
  // a clean per-scenario rejection, not an error and not a stale answer.
  BackendOptions changed = options;
  changed.tool_options.availability.solver.tolerance = 1e-6;
  Backend reader(changed);
  auto stats = reader.LoadCacheSnapshot();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->scenarios, 0u);
  ASSERT_EQ(stats->rejected.size(), 1u);
  EXPECT_NE(stats->rejected[0].find("fingerprint"), std::string::npos);
  EXPECT_EQ(reader.TotalCachedReports(), 0u);
  std::remove(path.c_str());
}

TEST(BackendTest, MissingSnapshotIsAColdStartNotAnError) {
  BackendOptions options;
  options.snapshot_path = TempPath("service_snapshot_never_written.wfsn");
  Backend backend(options);
  auto stats = backend.LoadCacheSnapshot();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->scenarios, 0u);
}

TEST(BackendTest, FingerprintSeparatesEnvironmentsAndOptions) {
  auto ep_result = workflow::EpEnvironment();
  auto bench_result = workflow::BenchmarkEnvironment();
  ASSERT_TRUE(ep_result.ok() && bench_result.ok());
  const workflow::Environment& ep = *ep_result;
  const workflow::Environment& bench = *bench_result;
  performability::PerformabilityOptions options;
  const uint64_t base = ServiceFingerprint(ep, options);
  EXPECT_NE(base, ServiceFingerprint(bench, options));
  performability::PerformabilityOptions tweaked = options;
  tweaked.availability.solver.max_iterations += 1;
  EXPECT_NE(base, ServiceFingerprint(ep, tweaked));
  EXPECT_EQ(base, ServiceFingerprint(ep, options));  // deterministic
}

// ------------------------------------------------------ Server loopback --

class ServerLoopbackTest : public testing::Test {
 protected:
  ServerOptions DefaultOptions() {
    ServerOptions options;
    options.port = 0;
    options.num_workers = 2;
    options.max_queue = 16;
    return options;
  }

  Client MakeClient(int port) {
    ClientOptions client_options;
    client_options.port = port;
    client_options.io_timeout_seconds = 60.0;
    return Client(client_options);
  }
};

TEST_F(ServerLoopbackTest, PingAssessAndErrorOverTheWire) {
  Server server(DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server.port());

  auto pong = client.Call(R"({"id":"p","op":"ping"})");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  auto pong_doc = Json::Parse(*pong);
  ASSERT_TRUE(pong_doc.ok());
  EXPECT_EQ(pong_doc->GetString("status", ""), "completed");

  auto assess = client.Call(
      R"({"id":"a","op":"assess","scenario":"ep","config":[2,2,3],)"
      R"("max_wait":0.05,"min_avail":0.99})");
  ASSERT_TRUE(assess.ok()) << assess.status().ToString();
  auto assess_doc = Json::Parse(*assess);
  ASSERT_TRUE(assess_doc.ok());
  EXPECT_EQ(assess_doc->GetString("status", ""), "completed");
  EXPECT_EQ(assess_doc->GetString("id", ""), "a");

  // Malformed input answers `error` on the same connection, which stays
  // usable afterwards.
  auto garbage = client.Call("this is not json");
  ASSERT_TRUE(garbage.ok()) << garbage.status().ToString();
  auto garbage_doc = Json::Parse(*garbage);
  ASSERT_TRUE(garbage_doc.ok());
  EXPECT_EQ(garbage_doc->GetString("status", ""), "error");
  auto after = client.Call(R"({"id":"p2","op":"ping"})");
  EXPECT_TRUE(after.ok()) << after.status().ToString();

  server.RequestStop();
  EXPECT_TRUE(server.Wait().ok());
}

TEST_F(ServerLoopbackTest, PipelinedRequestsAllAnswerWithMatchingIds) {
  Server server(DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server.port());

  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client
                    .Send(R"({"id":"q)" + std::to_string(i) +
                          R"(","op":"assess","scenario":"ep",)"
                          R"("config":[1,1,)" + std::to_string(1 + i % 3) +
                          R"(],"max_wait":0.05,"min_avail":0.99})")
                    .ok());
  }
  std::vector<bool> seen(kRequests, false);
  for (int i = 0; i < kRequests; ++i) {
    auto line = client.ReadResponse();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    auto doc = Json::Parse(*line);
    ASSERT_TRUE(doc.ok());
    const std::string id = doc->GetString("id", "");
    ASSERT_EQ(id.substr(0, 1), "q");
    const int index = std::stoi(id.substr(1));
    EXPECT_FALSE(seen[index]) << "duplicate response for " << id;
    seen[index] = true;
    const std::string status = doc->GetString("status", "");
    EXPECT_TRUE(status == "completed" || status == "degraded" ||
                status == "rejected-overloaded")
        << status;
  }
  server.RequestStop();
  EXPECT_TRUE(server.Wait().ok());
}

TEST_F(ServerLoopbackTest, DrainAnswersInFlightRequestsBeforeExit) {
  Server server(DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server.port());

  // Uncached assess requests in flight when the stop lands.
  constexpr int kRequests = 4;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client
                    .Send(R"({"id":"d)" + std::to_string(i) +
                          R"(","op":"assess","scenario":"ep",)"
                          R"("config":[)" + std::to_string(1 + i % 4) +
                          R"(,2,2],"max_wait":0.05,"min_avail":0.99})")
                    .ok());
  }
  server.RequestStop();
  // Every admitted request still answers; the drain never drops one.
  int answered = 0;
  for (int i = 0; i < kRequests; ++i) {
    auto line = client.ReadResponse();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    auto doc = Json::Parse(*line);
    ASSERT_TRUE(doc.ok());
    EXPECT_NE(doc->GetString("status", ""), "");
    ++answered;
  }
  EXPECT_EQ(answered, kRequests);
  EXPECT_TRUE(server.Wait().ok());
}

TEST_F(ServerLoopbackTest, TenantQuotaShedsOverTheWire) {
  ServerOptions options = DefaultOptions();
  options.admission.tenant_rate = 1.0;
  options.admission.tenant_burst = 2.0;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server.port());

  int shed = 0;
  for (int i = 0; i < 6; ++i) {
    auto line = client.Call(
        R"({"id":"t)" + std::to_string(i) +
        R"(","op":"assess","scenario":"ep","tenant":"hog",)"
        R"("config":[1,1,1],"max_wait":0.05,"min_avail":0.99})");
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    auto doc = Json::Parse(*line);
    ASSERT_TRUE(doc.ok());
    if (doc->GetString("status", "") == "rejected-overloaded") ++shed;
  }
  EXPECT_GE(shed, 3);  // burst 2, rate 1/s: most of a tight loop is shed
  server.RequestStop();
  EXPECT_TRUE(server.Wait().ok());
}

TEST_F(ServerLoopbackTest, ClientRetriesUntilServerAppears) {
  // Nothing listens yet: the client's transport retries are exhausted.
  ClientOptions client_options;
  client_options.port = 1;  // reserved port, nothing listens
  client_options.max_retries = 1;
  client_options.backoff_initial_seconds = 0.01;
  Client client(client_options);
  auto result = client.Call(R"({"op":"ping"})");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(ServerLoopbackTest, RetriesAreCountedAndGatedOnIdempotency) {
  metrics::Counter& retries = metrics::MetricsRegistry::Global().GetCounter(
      "wfms_service_client_retries_total");
  ClientOptions client_options;
  client_options.port = 1;  // reserved port, nothing listens
  client_options.max_retries = 2;
  client_options.backoff_initial_seconds = 0.01;
  client_options.backoff_max_seconds = 0.02;

  // Idempotent call: every transport retry is counted.
  const uint64_t before = retries.value();
  Client idempotent(client_options);
  EXPECT_FALSE(idempotent.Call(R"({"op":"ping"})").ok());
  EXPECT_EQ(retries.value(), before + 2);

  // Non-idempotent call against a dead port: the request provably never
  // reached the wire (connect failure), so retrying is still allowed —
  // the idempotency gate only stops re-sends once bytes may be out.
  const uint64_t before_mutating = retries.value();
  Client mutating(client_options);
  EXPECT_FALSE(
      mutating.Call(R"({"op":"autotune"})", /*idempotent=*/false).ok());
  EXPECT_EQ(retries.value(), before_mutating + 2);
}

TEST_F(ServerLoopbackTest, GeoSurvivabilityAssessOverTheWire) {
  Server server(DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server.port());

  // The split-brain placement dies under a partition; the wire response
  // carries the per-contingency verdicts and the survivability bit.
  auto split = client.Call(
      R"({"id":"g1","op":"assess","scenario":"geo",)"
      R"("site_config":[1,1,2,0,0,2],"max_wait":0.2,"min_avail":0.999,)"
      R"("survive_sites":1,"survive_partitions":true,)"
      R"("degraded_max_wait":0.2,"degraded_min_avail":0.995})");
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  auto split_doc = Json::Parse(*split);
  ASSERT_TRUE(split_doc.ok()) << *split;
  EXPECT_EQ(split_doc->GetString("status", ""), "completed");
  const Json* result = split_doc->Find("result");
  ASSERT_NE(result, nullptr) << *split;
  EXPECT_FALSE(result->GetBool("meets_survivability_goal", true));
  const Json* contingencies = result->Find("contingencies");
  ASSERT_NE(contingencies, nullptr) << *split;
  ASSERT_EQ(contingencies->items().size(), 3u);
  bool saw_dead_partition = false;
  for (const Json& c : contingencies->items()) {
    if (c.GetString("contingency", "") == "partition EU|US") {
      saw_dead_partition = true;
      EXPECT_EQ(c.GetNumber("availability", -1.0), 0.0);
      EXPECT_FALSE(c.GetBool("satisfied", true));
    }
  }
  EXPECT_TRUE(saw_dead_partition);

  // The symmetric placement meets the degraded goals everywhere.
  auto symmetric = client.Call(
      R"({"id":"g2","op":"assess","scenario":"geo",)"
      R"("site_config":[1,1,1,1,2,2],"max_wait":0.2,"min_avail":0.999,)"
      R"("survive_sites":1,"survive_partitions":true,)"
      R"("degraded_max_wait":0.2,"degraded_min_avail":0.995})");
  ASSERT_TRUE(symmetric.ok());
  auto symmetric_doc = Json::Parse(*symmetric);
  ASSERT_TRUE(symmetric_doc.ok());
  const Json* ok_result = symmetric_doc->Find("result");
  ASSERT_NE(ok_result, nullptr) << *symmetric;
  EXPECT_TRUE(ok_result->GetBool("meets_survivability_goal", false));
  EXPECT_TRUE(ok_result->GetBool("satisfies", false));

  // site_config against a single-site scenario is a structural error.
  auto mismatch = client.Call(
      R"({"id":"g3","op":"assess","scenario":"ep",)"
      R"("site_config":[1,1,1,1,2,2],"max_wait":0.2,"min_avail":0.999})");
  ASSERT_TRUE(mismatch.ok());
  auto mismatch_doc = Json::Parse(*mismatch);
  ASSERT_TRUE(mismatch_doc.ok());
  EXPECT_EQ(mismatch_doc->GetString("status", ""), "error");

  server.RequestStop();
  EXPECT_TRUE(server.Wait().ok());
}

// ----------------------------------------------------- Flight recorder --

RequestRecord MakeRecord(const std::string& trace_id) {
  RequestRecord record;
  record.trace_id = trace_id;
  record.tenant = "default";
  record.op = "assess";
  record.disposition = "completed";
  record.elapsed_seconds = 0.010;
  record.phases = {{"queue", 0.001}, {"execute", 0.008}};
  record.bytes_in = 100;
  record.bytes_out = 300;
  return record;
}

std::string HexTraceId(int i) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%032x", i);
  return buf;
}

TEST(FlightRecorderTest, NewestReturnsNewestFirst) {
  FlightRecorder recorder(/*capacity=*/64, /*shards=*/4);
  for (int i = 0; i < 10; ++i) recorder.Record(MakeRecord(HexTraceId(i)));
  const std::vector<RequestRecord> newest = recorder.Newest(3);
  ASSERT_EQ(newest.size(), 3u);
  EXPECT_EQ(newest[0].trace_id, HexTraceId(9));
  EXPECT_EQ(newest[1].trace_id, HexTraceId(8));
  EXPECT_EQ(newest[2].trace_id, HexTraceId(7));
  EXPECT_EQ(recorder.total_recorded(), 10u);
  // n == 0 and n > retained both return everything.
  EXPECT_EQ(recorder.Newest(0).size(), 10u);
  EXPECT_EQ(recorder.Newest(1000).size(), 10u);
}

TEST(FlightRecorderTest, WraparoundKeepsTheNewestRecords) {
  FlightRecorder recorder(/*capacity=*/8, /*shards=*/2);
  ASSERT_EQ(recorder.capacity(), 8u);
  for (int i = 0; i < 30; ++i) recorder.Record(MakeRecord(HexTraceId(i)));
  const std::vector<RequestRecord> retained = recorder.Newest(0);
  ASSERT_EQ(retained.size(), 8u);
  // The ring keeps exactly the last `capacity` commits, newest first.
  for (size_t i = 0; i < retained.size(); ++i) {
    EXPECT_EQ(retained[i].trace_id, HexTraceId(29 - static_cast<int>(i)));
  }
  EXPECT_EQ(recorder.total_recorded(), 30u);
}

TEST(FlightRecorderTest, ToJsonCarriesSchemaAndEveryField) {
  FlightRecorder recorder(/*capacity=*/8, /*shards=*/2);
  RequestRecord record = MakeRecord(HexTraceId(1));
  record.cache_hit = true;
  record.solver_rungs = 2;
  record.admission_wait_seconds = 0.001;
  recorder.Record(record);
  const std::string json = recorder.ToJson();
  for (const char* needle :
       {"\"schema_version\":1", "\"total_recorded\":1", "\"records\"",
        "\"seq\"", "\"trace_id\"", "\"tenant\":\"default\"",
        "\"op\":\"assess\"", "\"disposition\":\"completed\"",
        "\"admission_wait_seconds\"", "\"elapsed_seconds\"", "\"phases\"",
        "\"name\":\"queue\"", "\"cache_hit\":true", "\"solver_rungs\":2",
        "\"bytes_in\":100", "\"bytes_out\":300"}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << "missing " << needle << " in " << json;
  }
}

TEST(FlightRecorderTest, ConcurrentRecordsAllLandWithUniqueSeq) {
  FlightRecorder recorder(/*capacity=*/4096, /*shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(MakeRecord(HexTraceId(t * kPerThread + i)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<RequestRecord> all = recorder.Newest(0);
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i].seq, all[i - 1].seq);  // strictly newest-first
  }
}

TEST(FlightRecorderTest, DumpJsonWritesTheDocument) {
  const std::string path = TempPath("flight_recorder_dump.json");
  std::remove(path.c_str());
  FlightRecorder recorder(/*capacity=*/8, /*shards=*/2);
  recorder.Record(MakeRecord(HexTraceId(7)));
  ASSERT_TRUE(recorder.DumpJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(4096, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find(HexTraceId(7)), std::string::npos);
  EXPECT_FALSE(recorder.DumpJson("/nonexistent_dir_zzz/dump.json").ok());
}

TEST_F(ServerLoopbackTest, FlightRecorderCapturesTracedRequests) {
  Server server(DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server.port());

  // A client-minted trace context rides the request; the response echoes
  // the same trace id back.
  const std::string trace_id = "00112233445566778899aabbccddeeff";
  auto traced = client.Call(
      R"({"id":"tr1","op":"assess","scenario":"ep","config":[2,2,3],)"
      R"("max_wait":0.05,"min_avail":0.99,)"
      R"("trace":{"trace_id":")" + trace_id +
      R"(","parent_span_id":"0123456789abcdef"}})");
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  auto traced_doc = Json::Parse(*traced);
  ASSERT_TRUE(traced_doc.ok());
  EXPECT_EQ(traced_doc->GetString("status", ""), "completed");
  EXPECT_EQ(traced_doc->GetString("trace_id", ""), trace_id);

  // A request without a trace field gets a server-minted id.
  auto bare = client.Call(R"({"id":"tr2","op":"ping"})");
  ASSERT_TRUE(bare.ok());
  auto bare_doc = Json::Parse(*bare);
  ASSERT_TRUE(bare_doc.ok());
  const std::string minted = bare_doc->GetString("trace_id", "");
  EXPECT_EQ(minted.size(), 32u);
  EXPECT_NE(minted, trace_id);

  // Both requests landed in the flight recorder, newest first, with
  // phases that fit inside the recorded wall time.
  const std::vector<RequestRecord> records =
      server.flight_recorder().Newest(0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, minted);
  EXPECT_EQ(records[0].op, "ping");
  EXPECT_EQ(records[1].trace_id, trace_id);
  EXPECT_EQ(records[1].op, "assess");
  EXPECT_EQ(records[1].disposition, "completed");
  EXPECT_FALSE(records[1].cache_hit);
  EXPECT_GT(records[1].bytes_in, 0u);
  EXPECT_GT(records[1].bytes_out, 0u);
  double phase_sum = 0.0;
  bool saw_execute = false;
  for (const auto& [name, seconds] : records[1].phases) {
    EXPECT_GE(seconds, 0.0) << name;
    phase_sum += seconds;
    if (name == "execute") saw_execute = true;
  }
  EXPECT_TRUE(saw_execute);
  EXPECT_LE(phase_sum, records[1].elapsed_seconds + 1e-3);

  server.RequestStop();
  EXPECT_TRUE(server.Wait().ok());
}

// Raw HTTP/1.0 GET against the server's shared port (the protocol sniffer
// routes "GET " lines to ServeHttp). Returns the full response, headers
// included.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(ServerLoopbackTest, FlightRecorderServedAtDebugRequests) {
  Server server(DefaultOptions());
  ASSERT_TRUE(server.Start().ok());
  Client client = MakeClient(server.port());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        client.Call(R"({"id":"h)" + std::to_string(i) + R"(","op":"ping"})")
            .ok());
  }

  const std::string all = HttpGet(server.port(), "/debug/requests");
  EXPECT_NE(all.find("200 OK"), std::string::npos) << all;
  EXPECT_NE(all.find("application/json"), std::string::npos) << all;
  EXPECT_NE(all.find("\"schema_version\":1"), std::string::npos) << all;
  EXPECT_NE(all.find("\"total_recorded\":3"), std::string::npos) << all;

  // ?n= caps the returned records without touching total_recorded.
  const std::string capped = HttpGet(server.port(), "/debug/requests?n=1");
  EXPECT_NE(capped.find("\"total_recorded\":3"), std::string::npos) << capped;
  size_t seq_count = 0;
  for (size_t pos = capped.find("\"seq\""); pos != std::string::npos;
       pos = capped.find("\"seq\"", pos + 1)) {
    ++seq_count;
  }
  EXPECT_EQ(seq_count, 1u);

  server.RequestStop();
  EXPECT_TRUE(server.Wait().ok());
}

}  // namespace
}  // namespace wfms::service

// The availability model of §5: a CTMC over WFMS system states
// (X_1, ..., X_k), X_x = number of currently-up servers of type x, with
// failure transitions at rate X_x * lambda_x and repair transitions at
// rate (Y_x - X_x) * mu_x (independent repair; a single-repair-crew
// variant with constant rate mu_x is provided as an option). The entire
// WFMS is available iff every server type has at least one server up.
//
// Because failures and repairs are independent across server types, the
// steady state also has a product form (per-type birth-death chains);
// ProductFormStateProbabilities exposes it as an exact cross-check of the
// full CTMC solve — and as the fast path for large configurations.
//
// Geo-distributed extension (DESIGN.md §12): with a SiteTopology, the
// CTMC gains one birth-death dimension per (server type, site) placement,
// a binary up/down dimension per crashing site (the common shock: a
// site-down state masks every replica at that site simultaneously), and a
// binary dimension per site pair that can partition. All dimensions stay
// mutually independent — correlation enters solely through the coverage
// structure function (workflow::ServingComponent) applied at aggregation
// time — so the product form remains exact and permutations of
// identically-parameterized dimensions seed the lumping partition.
#ifndef WFMS_AVAIL_AVAILABILITY_MODEL_H_
#define WFMS_AVAIL_AVAILABILITY_MODEL_H_

#include <vector>

#include "common/result.h"
#include "linalg/vector.h"
#include "markov/ctmc.h"
#include "markov/state_space.h"
#include "markov/steady_state.h"
#include "workflow/configuration.h"
#include "workflow/environment.h"
#include "workflow/sites.h"

namespace wfms::avail {

/// A survivability contingency: evaluate the model conditioned on some
/// sites being down and/or some site pairs being partitioned for the whole
/// horizon (the "what if we lose region X" / "what if X and Y split"
/// questions). Pinned dimensions are removed from the CTMC state space.
struct SiteContingency {
  /// Bit a set: site a is down for the entire evaluation.
  uint64_t down_sites = 0;
  /// Bit workflow::PairIndex(a, b) set: pair (a, b) is partitioned.
  uint64_t partitioned_pairs = 0;

  bool none() const { return down_sites == 0 && partitioned_pairs == 0; }
  bool operator==(const SiteContingency& other) const {
    return down_sites == other.down_sites &&
           partitioned_pairs == other.partitioned_pairs;
  }
  /// "site EU down", "partition EU|US", or "baseline".
  std::string ToString(const workflow::SiteTopology& topology) const;
};

/// How the site-mode CTMC state space is laid out, so consumers
/// (performability, reporting) can decode states back into
/// per-(type, site) up counts plus site/partition indicators. Dimensions
/// 0 .. num_types*num_sites-1 are always the replica counts in type-major
/// order; sites that cannot change state (never-crashing, or pinned by the
/// contingency) and pairs that cannot change state carry no dimension and
/// read from the static masks instead.
struct SiteStateLayout {
  bool active = false;
  size_t num_types = 0;
  size_t num_sites = 0;
  /// Per site: CTMC dimension of its up/down indicator, or -1 if static.
  std::vector<int> site_dim;
  /// Per pair (workflow::PairIndex order): dimension or -1 if static.
  std::vector<int> pair_dim;
  /// Up-state of dimension-less sites (never-crashing sites have their bit
  /// set; contingency-pinned down sites have it clear).
  uint64_t static_up_sites = 0;
  /// Partition-state of dimension-less pairs (contingency-pinned pairs).
  uint64_t static_partitions = 0;

  /// Decode the site up-mask / partition-mask of an encoded state.
  uint64_t UpSites(const markov::MixedRadixSpace& space, size_t state) const;
  uint64_t Partitions(const markov::MixedRadixSpace& space,
                      size_t state) const;
};

enum class RepairPolicy {
  /// Every failed server is repaired in parallel: repair rate
  /// (Y_x - X_x) * mu_x. Reproduces the paper's §5.2 numbers.
  kIndependent,
  /// One repair crew per server type: constant repair rate mu_x while any
  /// server of the type is down.
  kSingleCrewPerType,
};

struct AvailabilityOptions {
  RepairPolicy repair_policy = RepairPolicy::kIndependent;
  markov::SteadyStateOptions solver;
  /// Use the product-form closed solution instead of solving pi Q = 0
  /// (exact for both repair policies; dramatically faster for large state
  /// spaces). The CTMC path remains the reference implementation.
  bool use_product_form = false;
};

struct AvailabilityReport {
  /// Steady-state probability that every server type has >= 1 server up.
  double availability = 0.0;
  double unavailability = 1.0;
  double downtime_minutes_per_year = 0.0;
  /// Steady-state probability of every system state, indexed by the
  /// mixed-radix encoding of §5.2.
  linalg::Vector state_probabilities;
  markov::MixedRadixSpace space;
  /// Expected number of up servers per type.
  linalg::Vector expected_up_servers;
  int solver_iterations = 0;
  /// How the pi Q = 0 system was solved. kAuto means no CTMC solve ran
  /// (product-form path); otherwise the method that actually produced pi.
  markov::SteadyStateMethod solver_method = markov::SteadyStateMethod::kAuto;
  /// Diagnostics of the successful solve (empty for product form).
  SolveDiagnostics solver_diagnostics;
  /// When the degradation cascade ran: every rung attempted, in order.
  std::vector<markov::CascadeAttempt> solver_attempts;
  /// True when the solve ran on the lumped quotient chain (see
  /// markov/lumping.h); `lumped_states` is then the quotient size.
  bool lumping_applied = false;
  size_t lumped_states = 0;
  /// Site-mode evaluations only: how to decode `state_probabilities`
  /// (`active` stays false for the classic single-site model, where
  /// dimensions are the per-type up counts).
  SiteStateLayout site_layout;
};

class AvailabilityModel {
 public:
  /// Captures per-type failure/repair rates from the registry. A non-null
  /// `topology` enables the geo-distributed path for site-placed
  /// configurations (it is copied; single-site evaluation is unchanged).
  static Result<AvailabilityModel> Create(
      const workflow::ServerTypeRegistry& servers,
      const AvailabilityOptions& options = {},
      const workflow::SiteTopology* topology = nullptr);

  /// Evaluates a configuration (replication vector Y). `steady_state_guess`
  /// optionally warm-starts the iterative pi Q = 0 solve: it must be a
  /// distribution over *this configuration's* state space (use
  /// markov::ProjectDistribution to carry a neighbor configuration's
  /// stationary vector over). Ignored by the product-form path; never
  /// changes the result beyond solver round-off. `solver_override`, when
  /// non-null, replaces the model's configured steady-state solver options
  /// for this evaluation only — the fault-isolated search uses it to retry
  /// a numerically failed candidate with the exact LU rung.
  /// Site-placed configurations (config.has_sites() with a topology)
  /// dispatch to EvaluateSites with an empty contingency; the warm-start
  /// guess is ignored there (the site state space has a different shape).
  Result<AvailabilityReport> Evaluate(
      const workflow::Configuration& config,
      const linalg::Vector* steady_state_guess = nullptr,
      const markov::SteadyStateOptions* solver_override = nullptr) const;

  /// Geo-distributed evaluation: availability is the steady-state
  /// probability that some connected component of up sites hosts >= 1 up
  /// replica of every type (workflow::ServingComponent), optionally
  /// conditioned on a contingency. `expected_up_servers` then counts only
  /// replicas inside the serving component (zero while the system is
  /// down).
  Result<AvailabilityReport> EvaluateSites(
      const workflow::Configuration& config,
      const SiteContingency& contingency = {},
      const markov::SteadyStateOptions* solver_override = nullptr) const;

  const workflow::SiteTopology& topology() const { return topology_; }
  /// True when `config` should take the geo-distributed path.
  bool site_mode(const workflow::Configuration& config) const {
    return !topology_.empty() && config.has_sites();
  }

  /// Per-type distribution of up servers via the birth-death closed form.
  Result<linalg::Vector> PerTypeDistribution(size_t type_index,
                                             int replicas) const;

  /// Joint state probabilities as the product of per-type distributions.
  Result<linalg::Vector> ProductFormStateProbabilities(
      const workflow::Configuration& config,
      const markov::MixedRadixSpace& space) const;

  /// Builds the availability CTMC for a configuration over the given
  /// state space; exposed for transient analyses.
  Result<markov::Ctmc> BuildCtmc(const workflow::Configuration& config,
                                 const markov::MixedRadixSpace& space) const;

  /// Point availability A(t): the probability that every server type has
  /// at least one server up at time t, starting from the full
  /// configuration at t = 0. A(0) = 1 and A(t) decreases toward the
  /// steady-state availability.
  Result<double> PointAvailability(const workflow::Configuration& config,
                                   double t) const;

  size_t num_types() const { return failure_rates_.size(); }

 private:
  AvailabilityModel(linalg::Vector failures, linalg::Vector repairs,
                    AvailabilityOptions options,
                    workflow::SiteTopology topology)
      : failure_rates_(std::move(failures)),
        repair_rates_(std::move(repairs)),
        options_(options),
        topology_(std::move(topology)) {}

  /// Stationary distribution of one birth-death dimension of the site
  /// chain: up-count of `bound` replicas of type `type_index`.
  Result<linalg::Vector> ReplicaDimDistribution(size_t type_index,
                                                int bound) const;

  linalg::Vector failure_rates_;
  linalg::Vector repair_rates_;
  AvailabilityOptions options_;
  workflow::SiteTopology topology_;
};

}  // namespace wfms::avail

#endif  // WFMS_AVAIL_AVAILABILITY_MODEL_H_

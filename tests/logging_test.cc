#include "common/logging.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "common/statistics.h"
#include "common/time_units.h"

namespace wfms {
namespace {

/// Captures stderr around a callback.
std::string CaptureStderr(const std::function<void()>& fn) {
  ::testing::internal::CaptureStderr();
  fn();
  return ::testing::internal::GetCapturedStderr();
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, MessagesBelowLevelAreDropped) {
  SetLogLevel(LogLevel::kWarning);
  const std::string out =
      CaptureStderr([] { WFMS_LOG(Info) << "should not appear"; });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, MessagesAtLevelAreEmitted) {
  SetLogLevel(LogLevel::kInfo);
  const std::string out =
      CaptureStderr([] { WFMS_LOG(Info) << "visible " << 42; });
  EXPECT_NE(out.find("visible 42"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("logging_test"), std::string::npos);  // file tag
}

TEST_F(LoggingTest, ErrorAboveWarning) {
  SetLogLevel(LogLevel::kError);
  const std::string warn =
      CaptureStderr([] { WFMS_LOG(Warning) << "quiet"; });
  EXPECT_TRUE(warn.empty());
  const std::string err = CaptureStderr([] { WFMS_LOG(Error) << "loud"; });
  EXPECT_NE(err.find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, LevelRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, PrefixCarriesTimestampAndThreadTag) {
  SetLogLevel(LogLevel::kInfo);
  const std::string out =
      CaptureStderr([] { WFMS_LOG(Info) << "tagged"; });
  // Prefix format: "[INFO <monotonic seconds> t<thread id> <file>:<line>] ".
  double timestamp = -1.0;
  int thread_tag = -1;
  ASSERT_EQ(std::sscanf(out.c_str(), "[INFO %lf t%d", &timestamp,
                        &thread_tag),
            2)
      << out;
  EXPECT_GE(timestamp, 0.0);
  EXPECT_GE(thread_tag, 1);
}

TEST_F(LoggingTest, EveryNFiresOnFirstAndEveryNth) {
  SetLogLevel(LogLevel::kInfo);
  const std::string out = CaptureStderr([] {
    for (int i = 0; i < 10; ++i) {
      WFMS_LOG_EVERY_N(Info, 3) << "sampled " << i;
    }
  });
  // Occurrences 0, 3, 6, 9 fire: four lines.
  EXPECT_NE(out.find("sampled 0"), std::string::npos);
  EXPECT_NE(out.find("sampled 3"), std::string::npos);
  EXPECT_NE(out.find("sampled 6"), std::string::npos);
  EXPECT_NE(out.find("sampled 9"), std::string::npos);
  EXPECT_EQ(out.find("sampled 1"), std::string::npos);
  size_t lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);
}

TEST_F(LoggingTest, EveryNStillRespectsTheLevel) {
  SetLogLevel(LogLevel::kWarning);
  const std::string out = CaptureStderr([] {
    for (int i = 0; i < 5; ++i) {
      WFMS_LOG_EVERY_N(Info, 1) << "suppressed";
    }
  });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, EnvVarSetsTheLevel) {
  ASSERT_EQ(setenv("WFMS_LOG_LEVEL", "debug", 1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);

  ASSERT_EQ(setenv("WFMS_LOG_LEVEL", "ERROR", 1), 0);  // case-insensitive
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  // Invalid values leave the level untouched.
  ASSERT_EQ(setenv("WFMS_LOG_LEVEL", "chatty", 1), 0);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  ASSERT_EQ(unsetenv("WFMS_LOG_LEVEL"), 0);
  InitLogLevelFromEnv();  // no variable: no change
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(CheckMacrosTest, PassingChecksAreSilent) {
  WFMS_CHECK(true);
  WFMS_CHECK_EQ(1, 1);
  WFMS_CHECK_NE(1, 2);
  WFMS_CHECK_LT(1, 2);
  WFMS_CHECK_LE(2, 2);
  WFMS_CHECK_GT(3, 2);
  WFMS_CHECK_GE(3, 3);
}

TEST(CheckMacrosDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(WFMS_CHECK(false), "Check failed");
  EXPECT_DEATH(WFMS_CHECK_EQ(1, 2), "1 vs 2");
}

TEST(FormatMinutesTest, EdgeRanges) {
  // Sub-second values render as milliseconds.
  EXPECT_EQ(FormatMinutes(0.0001), "6 ms");
  // Negative durations keep their sign.
  EXPECT_EQ(FormatMinutes(-120.0), "-2 h");
  // Zero.
  EXPECT_EQ(FormatMinutes(0.0), "0 ms");
}

TEST(HistogramTest, ToStringRendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string text = h.ToString(10);
  EXPECT_NE(text.find("[0, 1)"), std::string::npos);
  EXPECT_NE(text.find("[1, 2)"), std::string::npos);
  EXPECT_NE(text.find("##"), std::string::npos);
  EXPECT_NE(text.find(" 2"), std::string::npos);
}

TEST(HistogramTest, EmptyQuantileIsLowerBound) {
  Histogram h(1.0, 5.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0);
}

}  // namespace
}  // namespace wfms

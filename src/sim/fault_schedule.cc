#include "sim/fault_schedule.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace wfms::sim {

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kCrash:
      return "crash";
    case FaultAction::kRepair:
      return "repair";
    case FaultAction::kTypeOutage:
      return "outage";
    case FaultAction::kTypeRestore:
      return "restore";
  }
  return "unknown";
}

Status FaultSchedule::Validate(const workflow::Configuration& config,
                               size_t num_types) const {
  WFMS_RETURN_NOT_OK(config.Validate(num_types));
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    const std::string where = "fault event " + std::to_string(i + 1);
    if (!std::isfinite(event.time) || event.time < 0.0) {
      return Status::InvalidArgument(where +
                                     ": time must be finite and >= 0");
    }
    if (event.server_type >= num_types) {
      return Status::InvalidArgument(
          where + ": server type index " +
          std::to_string(event.server_type) + " out of range (have " +
          std::to_string(num_types) + " types)");
    }
    if (event.action == FaultAction::kCrash ||
        event.action == FaultAction::kRepair) {
      if (event.server_index < 0 ||
          event.server_index >= config.replicas[event.server_type]) {
        return Status::InvalidArgument(
            where + ": replica index " + std::to_string(event.server_index) +
            " out of range for a type replicated " +
            std::to_string(config.replicas[event.server_type]) + " times");
      }
    }
  }
  return Status::OK();
}

std::vector<FaultEvent> FaultSchedule::Sorted() const {
  std::vector<FaultEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return sorted;
}

Result<double> FaultSchedule::PrescribedAvailability(
    const workflow::Configuration& config, size_t num_types, double warmup,
    double duration) const {
  WFMS_RETURN_NOT_OK(Validate(config, num_types));
  if (!(duration > warmup) || warmup < 0.0) {
    return Status::InvalidArgument(
        "prescribed availability needs 0 <= warmup < duration");
  }
  // Replay over per-replica up flags, integrating the all-types-up
  // indicator over the measurement window.
  std::vector<std::vector<char>> up(num_types);
  std::vector<int> up_counts(num_types);
  for (size_t x = 0; x < num_types; ++x) {
    up[x].assign(static_cast<size_t>(config.replicas[x]), 1);
    up_counts[x] = config.replicas[x];
  }
  const auto all_types_up = [&] {
    for (size_t x = 0; x < num_types; ++x) {
      if (up_counts[x] == 0) return false;
    }
    return true;
  };

  double uptime = 0.0;
  double cursor = warmup;
  bool currently_up = true;  // full configuration before the first event
  for (const FaultEvent& event : Sorted()) {
    if (event.time >= duration) break;
    if (event.time > cursor && currently_up) uptime += event.time - cursor;
    cursor = std::max(cursor, event.time);
    switch (event.action) {
      case FaultAction::kCrash: {
        char& flag = up[event.server_type][
            static_cast<size_t>(event.server_index)];
        if (flag) {
          flag = 0;
          --up_counts[event.server_type];
        }
        break;
      }
      case FaultAction::kRepair: {
        char& flag = up[event.server_type][
            static_cast<size_t>(event.server_index)];
        if (!flag) {
          flag = 1;
          ++up_counts[event.server_type];
        }
        break;
      }
      case FaultAction::kTypeOutage:
        up[event.server_type].assign(up[event.server_type].size(), 0);
        up_counts[event.server_type] = 0;
        break;
      case FaultAction::kTypeRestore:
        up[event.server_type].assign(up[event.server_type].size(), 1);
        up_counts[event.server_type] =
            static_cast<int>(up[event.server_type].size());
        break;
    }
    currently_up = all_types_up();
  }
  if (currently_up && duration > cursor) uptime += duration - cursor;
  return uptime / (duration - warmup);
}

Result<FaultSchedule> ParseFaultSchedule(
    const std::string& text, const workflow::ServerTypeRegistry& servers) {
  FaultSchedule schedule;
  const std::vector<std::string> lines = SplitString(text, '\n');
  for (size_t lineno = 0; lineno < lines.size(); ++lineno) {
    std::string_view line = StripWhitespace(lines[lineno]);
    const auto fail = [&](const std::string& why) {
      return Status::ParseError("fault schedule line " +
                                std::to_string(lineno + 1) + ": " + why);
    };
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tokens =
        SplitString(line, ' ', /*skip_empty=*/true);
    if (tokens.size() < 4 || tokens[0] != "at") {
      return fail(
          "expected 'at <time> crash|repair|outage|restore <server-type> "
          "[replica-index]'");
    }
    FaultEvent event;
    if (!ParseDouble(tokens[1], &event.time)) {
      return fail("bad time '" + tokens[1] + "'");
    }
    const std::string& verb = tokens[2];
    if (verb == "crash") {
      event.action = FaultAction::kCrash;
    } else if (verb == "repair") {
      event.action = FaultAction::kRepair;
    } else if (verb == "outage") {
      event.action = FaultAction::kTypeOutage;
    } else if (verb == "restore") {
      event.action = FaultAction::kTypeRestore;
    } else {
      return fail("unknown action '" + verb +
                  "' (want crash, repair, outage, or restore)");
    }
    auto type_index = servers.IndexOf(tokens[3]);
    if (!type_index.ok()) {
      return fail("unknown server type '" + tokens[3] + "'");
    }
    event.server_type = *type_index;
    if (tokens.size() >= 5) {
      if (event.action == FaultAction::kTypeOutage ||
          event.action == FaultAction::kTypeRestore) {
        return fail("'" + verb + "' takes no replica index");
      }
      if (!ParseInt(tokens[4], &event.server_index)) {
        return fail("bad replica index '" + tokens[4] + "'");
      }
    }
    if (tokens.size() > 5) return fail("trailing tokens");
    schedule.events.push_back(event);
  }
  return schedule;
}

}  // namespace wfms::sim

// Property sweep: randomly generated environments must survive the
// scenario-file round trip with their model results intact, and randomly
// generated linear charts must be executable by the ECA interpreter.

#include <gtest/gtest.h>

#include "common/random.h"
#include "perf/performance_model.h"
#include "statechart/builder.h"
#include "statechart/interpreter.h"
#include "workflow/environment_io.h"

namespace wfms {
namespace {

using workflow::Environment;

/// Random linear workflow with loops over random server types (a sibling
/// of the generator in property_models_test.cc, kept separate so the two
/// suites stay independent).
Environment MakeRandomEnvironment(uint64_t seed) {
  Rng rng(seed);
  const int num_states = 2 + static_cast<int>(rng.NextUint64(6));
  const size_t num_types = 1 + rng.NextUint64(4);

  statechart::ChartBuilder builder("W");
  std::vector<std::string> names;
  for (int i = 0; i < num_states; ++i) {
    // Two-step name builds dodge a GCC 12 -Wrestrict false positive on
    // the fused literal+number concatenation (GCC PR105329).
    std::string name(1, 's');
    name += std::to_string(i);
    names.push_back(std::move(name));
    std::string activity("act");
    activity += std::to_string(i);
    builder.AddActivityState(names.back(), activity,
                             rng.NextDouble(0.1, 50.0));
  }
  builder.SetInitial(names.front()).SetFinal(names.back());
  for (int i = 0; i + 1 < num_states; ++i) {
    const std::string event = "done" + std::to_string(i);
    statechart::EcaRule rule;
    rule.event = event;
    if (i > 0 && rng.NextBernoulli(0.3)) {
      statechart::EcaRule back_rule;
      back_rule.event = "retry" + std::to_string(i);
      const double back = rng.NextDouble(0.1, 0.3);
      builder.AddTransition(names[static_cast<size_t>(i)],
                            names[static_cast<size_t>(i - 1)], back,
                            back_rule);
      builder.AddTransition(names[static_cast<size_t>(i)],
                            names[static_cast<size_t>(i + 1)], 1.0 - back,
                            rule);
    } else {
      builder.AddTransition(names[static_cast<size_t>(i)],
                            names[static_cast<size_t>(i + 1)], 1.0, rule);
    }
  }
  auto chart = builder.Build();
  EXPECT_TRUE(chart.ok()) << chart.status();

  Environment env;
  EXPECT_TRUE(env.charts.AddChart(*std::move(chart)).ok());
  for (size_t x = 0; x < num_types; ++x) {
    EXPECT_TRUE(
        env.servers
            .AddServerType({"srv" + std::to_string(x),
                            workflow::ServerKind::kApplicationServer,
                            *queueing::ServiceFromMeanScv(
                                rng.NextDouble(0.001, 0.1),
                                rng.NextDouble(0.25, 4.0)),
                            1.0 / rng.NextDouble(100.0, 100000.0),
                            1.0 / rng.NextDouble(1.0, 60.0)})
            .ok());
  }
  for (int i = 0; i < num_states; ++i) {
    linalg::Vector load(num_types, 0.0);
    load[rng.NextUint64(num_types)] = 1.0 + static_cast<double>(rng.NextUint64(5));
    EXPECT_TRUE(
        env.loads.SetLoad("act" + std::to_string(i), std::move(load)).ok());
  }
  env.workflows.push_back({"W", "W", rng.NextDouble(0.01, 1.0)});
  EXPECT_TRUE(env.Validate().ok());
  return env;
}

class RandomIoProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomIoProperty, ScenarioRoundTripPreservesModels) {
  const Environment original = MakeRandomEnvironment(42000 + GetParam());
  const std::string text = workflow::SerializeEnvironment(original);
  auto parsed = workflow::ParseEnvironment(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n--- scenario ---\n"
                           << text;
  auto m1 = perf::PerformanceModel::Create(original);
  auto m2 = perf::PerformanceModel::Create(*parsed);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_NEAR(m2->workflows()[0].turnaround_time,
              m1->workflows()[0].turnaround_time,
              1e-9 * m1->workflows()[0].turnaround_time);
  for (size_t x = 0; x < original.num_server_types(); ++x) {
    EXPECT_NEAR(m2->total_request_rates()[x], m1->total_request_rates()[x],
                1e-9);
    EXPECT_NEAR(m2->environment().servers.type(x).service.second_moment,
                original.servers.type(x).service.second_moment, 1e-12);
  }
  // Serialization is stable: a second round trip yields identical text.
  EXPECT_EQ(workflow::SerializeEnvironment(*parsed), text);
}

TEST_P(RandomIoProperty, InterpreterDrivesChartToCompletion) {
  const Environment env = MakeRandomEnvironment(43000 + GetParam());
  const statechart::StateChart* chart = *env.charts.GetChart("W");
  statechart::ChartInterpreter interpreter(&env.charts, chart);
  ASSERT_TRUE(interpreter.Start().ok());
  // Always answer with the forward event of the current state; bounded by
  // construction (retry transitions need their distinct event, which we
  // never send).
  int guard = 0;
  while (!interpreter.finished() && guard++ < 200) {
    const std::string current = interpreter.current_state();
    const auto outgoing = chart->OutgoingTransitions(current);
    ASSERT_FALSE(outgoing.empty());
    // Pick the transition leading forward (highest-indexed target).
    const statechart::Transition* forward = outgoing.front();
    for (const auto* t : outgoing) {
      if (*chart->StateIndex(t->to) > *chart->StateIndex(forward->to)) {
        forward = t;
      }
    }
    auto fired = interpreter.DeliverEvent(forward->rule.event);
    ASSERT_TRUE(fired.ok()) << fired.status();
    ASSERT_GT(*fired, 0) << "stuck in " << current;
  }
  EXPECT_TRUE(interpreter.finished());
  // The trace visited every state at least once (linear skeleton).
  EXPECT_GE(interpreter.trace().size(), chart->num_states());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIoProperty, ::testing::Range(0, 16));

}  // namespace
}  // namespace wfms

# Empty compiler generated dependencies file for wfms_sim.
# This may be replaced when dependencies are built.

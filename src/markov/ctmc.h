// Generator-based continuous-time Markov chain for the availability model
// (§5 of the paper): potentially large, sparse state space, assumed ergodic,
// analyzed for its steady-state distribution.
#ifndef WFMS_MARKOV_CTMC_H_
#define WFMS_MARKOV_CTMC_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "linalg/sparse_matrix.h"
#include "linalg/vector.h"

namespace wfms::markov {

class Ctmc;

/// Collects transition rates; Build() derives the diagonal so that rows of
/// the infinitesimal generator sum to zero.
class CtmcBuilder {
 public:
  explicit CtmcBuilder(size_t num_states);

  /// Adds a transition with the given rate (> 0); from != to. Multiple adds
  /// for the same pair accumulate.
  Status AddTransition(size_t from, size_t to, double rate);

  /// Pre-sizes the transition store; model builders that know their
  /// transition count (e.g. the availability generator: <= 2k per state)
  /// call this to avoid realloc churn during assembly.
  void Reserve(size_t num_transitions_hint) {
    off_diagonal_.Reserve(num_transitions_hint);
  }

  size_t num_states() const { return num_states_; }

  /// Validates and constructs the CTMC.
  Result<Ctmc> Build();

 private:
  size_t num_states_;
  linalg::SparseMatrixBuilder off_diagonal_;
  linalg::Vector exit_rates_;
  Status deferred_error_;
};

class Ctmc {
 public:
  size_t num_states() const { return exit_rates_.size(); }

  /// Off-diagonal transition rates q_ij (i != j), CSR.
  const linalg::SparseMatrix& rates() const { return rates_; }
  /// Total exit rate of each state: -q_ii.
  const linalg::Vector& exit_rates() const { return exit_rates_; }
  double MaxExitRate() const;

  /// Rate q_ij for i != j; 0 when absent.
  double RateAt(size_t from, size_t to) const { return rates_.At(from, to); }

  /// Uniformization rate lambda = max exit rate times `rate_margin`
  /// (floored away from zero). The single source of truth shared by
  /// UniformizedMatrix and the matrix-free uniformization paths, so a
  /// materialized P = I + Q/lambda and the equivalent matrix-free step use
  /// bit-identical lambdas.
  double UniformizationRate(double rate_margin = 1.05) const;

  /// Uniformized DTMC transition matrix P = I + Q / lambda with
  /// lambda >= max exit rate (a margin keeps self-loop probability positive
  /// in every state, which guarantees aperiodicity for power iteration).
  linalg::SparseMatrix UniformizedMatrix(double rate_margin = 1.05) const;

 private:
  friend class CtmcBuilder;
  Ctmc(linalg::SparseMatrix rates, linalg::Vector exit_rates)
      : rates_(std::move(rates)), exit_rates_(std::move(exit_rates)) {}

  linalg::SparseMatrix rates_;   // off-diagonal only
  linalg::Vector exit_rates_;
};

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_CTMC_H_

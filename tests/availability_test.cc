#include "avail/availability_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/time_units.h"
#include "workflow/scenarios.h"

namespace wfms::avail {
namespace {

using workflow::Configuration;

AvailabilityModel MakeEpModel(AvailabilityOptions options = {}) {
  auto env = workflow::EpEnvironment();
  EXPECT_TRUE(env.ok());
  auto model = AvailabilityModel::Create(env->servers, options);
  EXPECT_TRUE(model.ok()) << model.status();
  return *std::move(model);
}

// --- The §5.2 numeric example -------------------------------------------

TEST(AvailabilityPaperTest, NoReplicationGives71HoursDowntimePerYear) {
  const AvailabilityModel model = MakeEpModel();
  auto report = model.Evaluate(Configuration::Ones(3));
  ASSERT_TRUE(report.ok()) << report.status();
  const double hours = report->downtime_minutes_per_year / 60.0;
  // Paper: "an expected downtime of 71 hours per year".
  EXPECT_NEAR(hours, 71.0, 1.5);
}

TEST(AvailabilityPaperTest, ThreeWayReplicationGivesTenSecondsPerYear) {
  const AvailabilityModel model = MakeEpModel();
  auto report = model.Evaluate(Configuration::Uniform(3, 3));
  ASSERT_TRUE(report.ok());
  const double seconds = report->downtime_minutes_per_year * 60.0;
  // Paper: "the system downtime can be brought down to 10 seconds per
  // year".
  EXPECT_NEAR(seconds, 10.0, 1.5);
}

TEST(AvailabilityPaperTest, AsymmetricConfigStaysUnderOneMinute) {
  // Paper: 3 replicas of the most unreliable type (application server) and
  // 2 of each other bound the unavailability by less than a minute.
  const AvailabilityModel model = MakeEpModel();
  auto report = model.Evaluate(Configuration({2, 2, 3}));
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->downtime_minutes_per_year, 1.0);
  // ... and it is much cheaper than 3-way replication of everything while
  // being within an order of magnitude of its downtime.
  EXPECT_EQ(Configuration({2, 2, 3}).total_servers(), 7);
}

// --- Structural properties ----------------------------------------------

TEST(AvailabilityTest, StateProbabilitiesFormDistribution) {
  const AvailabilityModel model = MakeEpModel();
  auto report = model.Evaluate(Configuration({2, 1, 2}));
  ASSERT_TRUE(report.ok());
  double sum = 0.0;
  for (double p : report->state_probabilities) {
    EXPECT_GE(p, -1e-12);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(report->state_probabilities.size(), 3u * 2u * 3u);
}

TEST(AvailabilityTest, CtmcMatchesProductFormClosedSolution) {
  const AvailabilityModel model = MakeEpModel();
  const Configuration config({2, 2, 3});
  auto report = model.Evaluate(config);
  ASSERT_TRUE(report.ok());
  auto product = model.ProductFormStateProbabilities(config, report->space);
  ASSERT_TRUE(product.ok());
  for (size_t i = 0; i < report->state_probabilities.size(); ++i) {
    EXPECT_NEAR(report->state_probabilities[i], (*product)[i], 1e-9)
        << "state " << report->space.ToString(i);
  }
}

TEST(AvailabilityTest, ProductFormFastPathMatchesCtmc) {
  AvailabilityOptions fast;
  fast.use_product_form = true;
  const AvailabilityModel ctmc_model = MakeEpModel();
  const AvailabilityModel fast_model = MakeEpModel(fast);
  for (const Configuration& config :
       {Configuration({1, 1, 1}), Configuration({3, 2, 1}),
        Configuration({2, 3, 4})}) {
    auto a = ctmc_model.Evaluate(config);
    auto b = fast_model.Evaluate(config);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a->availability, b->availability, 1e-10)
        << config.ToString();
  }
}

TEST(AvailabilityTest, ExpectedUpServersNearConfigured) {
  const AvailabilityModel model = MakeEpModel();
  auto report = model.Evaluate(Configuration({2, 2, 2}));
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->expected_up_servers.size(), 3u);
  for (size_t x = 0; x < 3; ++x) {
    EXPECT_GT(report->expected_up_servers[x], 1.95);
    EXPECT_LE(report->expected_up_servers[x], 2.0);
  }
  // The app server (daily failures) loses the most capacity.
  EXPECT_LT(report->expected_up_servers[2], report->expected_up_servers[0]);
}

TEST(AvailabilityTest, MoreReplicasNeverHurt) {
  const AvailabilityModel model = MakeEpModel();
  double prev_unavailability = 1.0;
  for (int y = 1; y <= 4; ++y) {
    auto report = model.Evaluate(Configuration::Uniform(3, y));
    ASSERT_TRUE(report.ok());
    EXPECT_LT(report->unavailability, prev_unavailability);
    prev_unavailability = report->unavailability;
  }
}

TEST(AvailabilityTest, ReplicatingTheWeakestTypeHelpsMost) {
  const AvailabilityModel model = MakeEpModel();
  // Adding a replica to the daily-failing app server beats adding one to
  // the monthly-failing comm server.
  auto base = model.Evaluate(Configuration({1, 1, 1}));
  auto plus_comm = model.Evaluate(Configuration({2, 1, 1}));
  auto plus_app = model.Evaluate(Configuration({1, 1, 2}));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(plus_comm.ok());
  ASSERT_TRUE(plus_app.ok());
  EXPECT_LT(plus_app->unavailability, plus_comm->unavailability);
  EXPECT_LT(plus_comm->unavailability, base->unavailability);
}

TEST(AvailabilityTest, SingleCrewRepairIsWorse) {
  AvailabilityOptions crew;
  crew.repair_policy = RepairPolicy::kSingleCrewPerType;
  const AvailabilityModel independent = MakeEpModel();
  const AvailabilityModel single_crew = MakeEpModel(crew);
  const Configuration config({3, 3, 3});
  auto a = independent.Evaluate(config);
  auto b = single_crew.Evaluate(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->unavailability, a->unavailability);
}

TEST(AvailabilityTest, SingleCrewCtmcMatchesItsProductForm) {
  AvailabilityOptions crew;
  crew.repair_policy = RepairPolicy::kSingleCrewPerType;
  const AvailabilityModel model = MakeEpModel(crew);
  const Configuration config({2, 2, 2});
  auto report = model.Evaluate(config);
  ASSERT_TRUE(report.ok());
  auto product = model.ProductFormStateProbabilities(config, report->space);
  ASSERT_TRUE(product.ok());
  for (size_t i = 0; i < report->state_probabilities.size(); ++i) {
    EXPECT_NEAR(report->state_probabilities[i], (*product)[i], 1e-9);
  }
}

TEST(AvailabilityTest, SolverMethodsAgree) {
  AvailabilityOptions lu;
  lu.solver.method = markov::SteadyStateMethod::kLu;
  AvailabilityOptions power;
  power.solver.method = markov::SteadyStateMethod::kPower;
  auto a = MakeEpModel(lu).Evaluate(Configuration({2, 2, 2}));
  auto b = MakeEpModel(power).Evaluate(Configuration({2, 2, 2}));
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_NEAR(a->availability, b->availability, 1e-9);
}

TEST(AvailabilityTest, InvalidConfigurationRejected) {
  const AvailabilityModel model = MakeEpModel();
  EXPECT_FALSE(model.Evaluate(Configuration({1, 1})).ok());
  EXPECT_FALSE(model.Evaluate(Configuration({1, 0, 1})).ok());
}

TEST(AvailabilityTest, PerTypeDistributionValidation) {
  const AvailabilityModel model = MakeEpModel();
  EXPECT_FALSE(model.PerTypeDistribution(99, 2).ok());
  auto dist = model.PerTypeDistribution(2, 2);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->size(), 3u);
}

}  // namespace
}  // namespace wfms::avail

// Region evacuation drill: a scripted whole-site outage (EU down from
// minute 5000 to 9000) replayed against two placements. Everything-at-EU
// goes dark for the whole window; the active/active placement rides it
// out. The simulator's observed availability is cross-checked against the
// schedule's symbolic replay (PrescribedAvailability) — the two must
// agree to within integration round-off.
//
// Build & run:  ./build/examples/geo_evacuation

#include <cstdio>

#include "sim/fault_schedule.h"
#include "sim/simulator.h"
#include "workflow/configuration.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;

  auto env = workflow::GeoEpEnvironment();
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }

  auto schedule = sim::ParseFaultSchedule(
      "at 5000 site-crash EU\n"
      "at 9000 site-repair EU\n",
      env->servers, &env->topology);
  if (!schedule.ok()) {
    std::fprintf(stderr, "fault schedule: %s\n",
                 schedule.status().ToString().c_str());
    return 1;
  }

  const workflow::Configuration all_eu =
      workflow::Configuration::FromSiteCounts({1, 0, 1, 0, 2, 0}, 2);
  const workflow::Configuration active_active =
      workflow::Configuration::FromSiteCounts({1, 1, 1, 1, 2, 2}, 2);

  for (const workflow::Configuration& config : {all_eu, active_active}) {
    sim::SimulationOptions options;
    options.config = config;
    options.duration = 20000.0;
    options.warmup = 1000.0;
    options.seed = 11;
    options.faults = *schedule;

    auto prescribed = options.faults.PrescribedAvailability(
        config, env->num_server_types(), options.warmup, options.duration,
        &env->topology);
    if (!prescribed.ok()) {
      std::fprintf(stderr, "prescribed: %s\n",
                   prescribed.status().ToString().c_str());
      return 1;
    }
    auto simulator = sim::Simulator::Create(*env, options);
    if (!simulator.ok()) {
      std::fprintf(stderr, "simulator: %s\n",
                   simulator.status().ToString().c_str());
      return 1;
    }
    auto result = simulator->Run();
    if (!result.ok()) {
      std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("Placement %s: observed availability %.6f, "
                "prescribed %.6f\n",
                config.ToString().c_str(), result->observed_availability,
                *prescribed);
  }
  return 0;
}

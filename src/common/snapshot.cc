#include "common/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace wfms {

namespace {

constexpr char kMagic[4] = {'W', 'F', 'S', 'N'};

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void AppendLe(std::string* out, uint64_t value, size_t bytes) {
  for (size_t i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

uint64_t ReadLe(std::string_view bytes, size_t offset, size_t n) {
  uint64_t value = 0;
  for (size_t i = 0; i < n; ++i) {
    value |= static_cast<uint64_t>(
                 static_cast<unsigned char>(bytes[offset + i]))
             << (8 * i);
  }
  return value;
}

std::string ErrnoString(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint64_t Fnv1a64(std::string_view bytes, uint64_t state) {
  for (char ch : bytes) {
    state ^= static_cast<unsigned char>(ch);
    state *= 0x100000001B3ULL;
  }
  return state;
}

uint64_t Fnv1a64(std::string_view bytes) {
  return Fnv1a64(bytes, kFnv1a64Seed);
}

void SnapshotWriter::Field(uint32_t tag, std::string_view value) {
  AppendLe(&payload_, tag, 4);
  AppendLe(&payload_, value.size(), 8);
  payload_.append(value.data(), value.size());
}

void SnapshotWriter::U32(uint32_t tag, uint32_t value) {
  std::string bytes;
  AppendLe(&bytes, value, 4);
  Field(tag, bytes);
}

void SnapshotWriter::U64(uint32_t tag, uint64_t value) {
  std::string bytes;
  AppendLe(&bytes, value, 8);
  Field(tag, bytes);
}

void SnapshotWriter::I64(uint32_t tag, int64_t value) {
  U64(tag, static_cast<uint64_t>(value));
}

void SnapshotWriter::F64(uint32_t tag, double value) {
  U64(tag, std::bit_cast<uint64_t>(value));
}

void SnapshotWriter::Str(uint32_t tag, std::string_view value) {
  Field(tag, value);
}

void SnapshotWriter::VecF64(uint32_t tag, const std::vector<double>& value) {
  std::string bytes;
  bytes.reserve(value.size() * 8);
  for (double v : value) AppendLe(&bytes, std::bit_cast<uint64_t>(v), 8);
  Field(tag, bytes);
}

void SnapshotWriter::VecI32(uint32_t tag, const std::vector<int>& value) {
  std::string bytes;
  bytes.reserve(value.size() * 4);
  for (int v : value) {
    AppendLe(&bytes, static_cast<uint32_t>(v), 4);
  }
  Field(tag, bytes);
}

void SnapshotWriter::VecU64(uint32_t tag, const uint64_t* data, size_t n) {
  std::string bytes;
  bytes.reserve(n * 8);
  for (size_t i = 0; i < n; ++i) AppendLe(&bytes, data[i], 8);
  Field(tag, bytes);
}

Result<std::string_view> SnapshotReader::Field(uint32_t tag) {
  if (offset_ + 12 > payload_.size()) {
    return Status::ParseError(
        "snapshot payload truncated at offset " + std::to_string(offset_) +
        " reading field tag " + std::to_string(tag));
  }
  const uint32_t stored_tag =
      static_cast<uint32_t>(ReadLe(payload_, offset_, 4));
  const uint64_t length = ReadLe(payload_, offset_ + 4, 8);
  if (stored_tag != tag) {
    return Status::ParseError("snapshot field tag mismatch at offset " +
                              std::to_string(offset_) + ": expected " +
                              std::to_string(tag) + ", found " +
                              std::to_string(stored_tag));
  }
  if (offset_ + 12 + length > payload_.size()) {
    return Status::ParseError("snapshot field " + std::to_string(tag) +
                              " overruns the payload (length " +
                              std::to_string(length) + ")");
  }
  std::string_view value = payload_.substr(offset_ + 12, length);
  offset_ += 12 + length;
  return value;
}

Result<uint32_t> SnapshotReader::U32(uint32_t tag) {
  WFMS_ASSIGN_OR_RETURN(std::string_view value, Field(tag));
  if (value.size() != 4) {
    return Status::ParseError("snapshot field " + std::to_string(tag) +
                              " has length " + std::to_string(value.size()) +
                              ", expected 4");
  }
  return static_cast<uint32_t>(ReadLe(value, 0, 4));
}

Result<uint64_t> SnapshotReader::U64(uint32_t tag) {
  WFMS_ASSIGN_OR_RETURN(std::string_view value, Field(tag));
  if (value.size() != 8) {
    return Status::ParseError("snapshot field " + std::to_string(tag) +
                              " has length " + std::to_string(value.size()) +
                              ", expected 8");
  }
  return ReadLe(value, 0, 8);
}

Result<int64_t> SnapshotReader::I64(uint32_t tag) {
  WFMS_ASSIGN_OR_RETURN(uint64_t value, U64(tag));
  return static_cast<int64_t>(value);
}

Result<double> SnapshotReader::F64(uint32_t tag) {
  WFMS_ASSIGN_OR_RETURN(uint64_t value, U64(tag));
  return std::bit_cast<double>(value);
}

Result<std::string> SnapshotReader::Str(uint32_t tag) {
  WFMS_ASSIGN_OR_RETURN(std::string_view value, Field(tag));
  return std::string(value);
}

Result<std::vector<double>> SnapshotReader::VecF64(uint32_t tag) {
  WFMS_ASSIGN_OR_RETURN(std::string_view value, Field(tag));
  if (value.size() % 8 != 0) {
    return Status::ParseError("snapshot field " + std::to_string(tag) +
                              " is not a multiple of 8 bytes");
  }
  std::vector<double> out(value.size() / 8);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = std::bit_cast<double>(ReadLe(value, i * 8, 8));
  }
  return out;
}

Result<std::vector<int>> SnapshotReader::VecI32(uint32_t tag) {
  WFMS_ASSIGN_OR_RETURN(std::string_view value, Field(tag));
  if (value.size() % 4 != 0) {
    return Status::ParseError("snapshot field " + std::to_string(tag) +
                              " is not a multiple of 4 bytes");
  }
  std::vector<int> out(value.size() / 4);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<int>(static_cast<uint32_t>(ReadLe(value, i * 4, 4)));
  }
  return out;
}

Result<std::vector<uint64_t>> SnapshotReader::VecU64(uint32_t tag) {
  WFMS_ASSIGN_OR_RETURN(std::string_view value, Field(tag));
  if (value.size() % 8 != 0) {
    return Status::ParseError("snapshot field " + std::to_string(tag) +
                              " is not a multiple of 8 bytes");
  }
  std::vector<uint64_t> out(value.size() / 8);
  for (size_t i = 0; i < out.size(); ++i) out[i] = ReadLe(value, i * 8, 8);
  return out;
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(ErrnoString("cannot create temp file", tmp));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status error =
          Status::Internal(ErrnoString("cannot write temp file", tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return error;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status error =
        Status::Internal(ErrnoString("cannot fsync temp file", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return error;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal(ErrnoString("cannot close temp file", tmp));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status error =
        Status::Internal(ErrnoString("cannot rename temp file over", path));
    ::unlink(tmp.c_str());
    return error;
  }
  // Persist the rename itself: fsync the containing directory.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best-effort; the data itself is already durable
    ::close(dir_fd);
  }
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file '" + path + "'");
    }
    return Status::Internal(ErrnoString("cannot open", path));
  }
  std::string bytes;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status error = Status::Internal(ErrnoString("cannot read", path));
      ::close(fd);
      return error;
    }
    if (n == 0) break;
    bytes.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return bytes;
}

Status WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                         std::string_view payload) {
  std::string bytes;
  bytes.reserve(24 + payload.size() + 4);
  bytes.append(kMagic, sizeof(kMagic));
  AppendLe(&bytes, kSnapshotFormatVersion, 4);
  AppendLe(&bytes, static_cast<uint32_t>(kind), 4);
  AppendLe(&bytes, payload.size(), 8);
  bytes.append(payload.data(), payload.size());
  AppendLe(&bytes, Crc32(bytes), 4);
  return AtomicWriteFile(path, bytes);
}

Result<std::string> ReadSnapshotFile(const std::string& path,
                                     SnapshotKind kind) {
  WFMS_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  constexpr size_t kHeader = 20;
  constexpr size_t kFooter = 4;
  if (bytes.size() < kHeader + kFooter) {
    return Status::ParseError("snapshot '" + path + "' is truncated: " +
                              std::to_string(bytes.size()) +
                              " bytes is smaller than the fixed framing");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("'" + path +
                              "' is not a snapshot file (bad magic)");
  }
  const uint32_t version = static_cast<uint32_t>(ReadLe(bytes, 4, 4));
  if (version < 1 || version > kSnapshotFormatVersion) {
    return Status::ParseError(
        "snapshot '" + path + "' has unsupported snapshot format version " +
        std::to_string(version) + " (this build reads 1.." +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  const uint32_t stored_kind = static_cast<uint32_t>(ReadLe(bytes, 8, 4));
  if (stored_kind != static_cast<uint32_t>(kind)) {
    return Status::ParseError(
        "snapshot '" + path + "' holds the wrong snapshot kind " +
        std::to_string(stored_kind) + " (expected " +
        std::to_string(static_cast<uint32_t>(kind)) + ")");
  }
  const uint64_t payload_size = ReadLe(bytes, 12, 8);
  if (bytes.size() != kHeader + payload_size + kFooter) {
    return Status::ParseError(
        "snapshot '" + path + "' is truncated: header declares " +
        std::to_string(payload_size) + " payload bytes but the file holds " +
        std::to_string(bytes.size() - kHeader - kFooter));
  }
  const uint32_t stored_crc =
      static_cast<uint32_t>(ReadLe(bytes, bytes.size() - kFooter, 4));
  const uint32_t computed_crc =
      Crc32(std::string_view(bytes).substr(0, bytes.size() - kFooter));
  if (stored_crc != computed_crc) {
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  "CRC mismatch (stored %08x, computed %08x)", stored_crc,
                  computed_crc);
    return Status::ParseError("snapshot '" + path + "' is corrupt: " +
                              buffer);
  }
  return bytes.substr(kHeader, payload_size);
}

}  // namespace wfms

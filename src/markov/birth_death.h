// Closed-form steady state of finite birth-death CTMCs. The availability
// model of a single replicated server type is exactly such a chain
// (births = repairs, deaths = failures), so this provides the product-form
// baseline against which the full CTMC solution is validated.
#ifndef WFMS_MARKOV_BIRTH_DEATH_H_
#define WFMS_MARKOV_BIRTH_DEATH_H_

#include "common/result.h"
#include "linalg/vector.h"

namespace wfms::markov {

/// Steady-state distribution of a birth-death chain on {0, ..., n} where
/// `birth_rates[i]` is the rate i -> i+1 (size n) and `death_rates[i]` is
/// the rate i+1 -> i (size n). All rates must be positive (irreducibility).
///
///   pi_j = pi_0 * prod_{i<j} birth_i / death_i,  normalized.
Result<linalg::Vector> BirthDeathSteadyState(
    const linalg::Vector& birth_rates, const linalg::Vector& death_rates);

/// Steady-state distribution of the number of *up* servers for a server
/// type with Y replicas, per-server failure rate lambda and repair rate mu,
/// with independent repair (the machine-repairman model with as many repair
/// crews as servers): state j has failure rate j*lambda and repair rate
/// (Y-j)*mu. Returns a vector of size Y+1 indexed by the number of up
/// servers; equals Binomial(Y, mu/(lambda+mu)).
Result<linalg::Vector> ReplicatedServerAvailability(int replicas,
                                                    double failure_rate,
                                                    double repair_rate);

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_BIRTH_DEATH_H_

file(REMOVE_RECURSE
  "CMakeFiles/wfms_statechart.dir/builder.cc.o"
  "CMakeFiles/wfms_statechart.dir/builder.cc.o.d"
  "CMakeFiles/wfms_statechart.dir/interpreter.cc.o"
  "CMakeFiles/wfms_statechart.dir/interpreter.cc.o.d"
  "CMakeFiles/wfms_statechart.dir/model.cc.o"
  "CMakeFiles/wfms_statechart.dir/model.cc.o.d"
  "CMakeFiles/wfms_statechart.dir/parser.cc.o"
  "CMakeFiles/wfms_statechart.dir/parser.cc.o.d"
  "CMakeFiles/wfms_statechart.dir/to_ctmc.cc.o"
  "CMakeFiles/wfms_statechart.dir/to_ctmc.cc.o.d"
  "libwfms_statechart.a"
  "libwfms_statechart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_statechart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "statechart/parser.h"

#include <gtest/gtest.h>

#include "tests/test_charts.h"

namespace wfms::statechart {
namespace {

TEST(ParserTest, ParsesEpFixture) {
  auto registry = ParseCharts(wfms::testing::kEpChartsDsl);
  ASSERT_TRUE(registry.ok()) << registry.status();
  EXPECT_EQ(registry->size(), 3u);
  ASSERT_TRUE(registry->GetChart("EP").ok());
  ASSERT_TRUE(registry->GetChart("Notify").ok());
  ASSERT_TRUE(registry->GetChart("Delivery").ok());

  const StateChart& ep = **registry->GetChart("EP");
  EXPECT_EQ(ep.num_states(), 7u);  // paper: seven top-level states
  EXPECT_EQ(ep.initial_state(), "NewOrder");
  EXPECT_EQ(ep.final_state(), "EPExit");

  const size_t shipment = *ep.StateIndex("Shipment");
  EXPECT_EQ(ep.state(shipment).kind, StateKind::kComposite);
  ASSERT_EQ(ep.state(shipment).subcharts.size(), 2u);
  EXPECT_EQ(ep.state(shipment).subcharts[0], "Notify");
  EXPECT_EQ(ep.state(shipment).subcharts[1], "Delivery");

  const size_t collect = *ep.StateIndex("CollectPayment");
  EXPECT_DOUBLE_EQ(ep.state(collect).residence_time, 1440.0);
  EXPECT_EQ(ep.state(collect).activity, "collect_payment");
}

TEST(ParserTest, ParsesEcaAnnotations) {
  auto registry = ParseCharts(wfms::testing::kEpChartsDsl);
  ASSERT_TRUE(registry.ok());
  const StateChart& ep = **registry->GetChart("EP");
  const auto outgoing = ep.OutgoingTransitions("NewOrder");
  ASSERT_EQ(outgoing.size(), 2u);
  EXPECT_EQ(outgoing[0]->rule.event, "NewOrder_DONE");
  EXPECT_EQ(outgoing[0]->rule.condition, "PayByCreditCard");
  ASSERT_EQ(outgoing[0]->rule.actions.size(), 1u);
  EXPECT_EQ(outgoing[0]->rule.actions[0], "st!(cc_check)");
  EXPECT_EQ(outgoing[1]->rule.condition, "!PayByCreditCard");
}

TEST(ParserTest, SingleChartHelper) {
  auto chart = ParseSingleChart(R"(
chart Mini
  state A residence=1
  state B residence=2
  initial A
  final B
  trans A -> B prob=1
end
)");
  ASSERT_TRUE(chart.ok()) << chart.status();
  EXPECT_EQ(chart->name(), "Mini");
  EXPECT_FALSE(ParseSingleChart(wfms::testing::kEpChartsDsl).ok());
}

TEST(ParserTest, DefaultProbabilityIsOne) {
  auto chart = ParseSingleChart(R"(
chart Mini
  state A residence=1
  state B residence=2
  initial A
  final B
  trans A -> B
end
)");
  ASSERT_TRUE(chart.ok());
  EXPECT_DOUBLE_EQ(chart->transitions()[0].probability, 1.0);
}

TEST(ParserTest, CommentsAndBlankLinesIgnored) {
  auto chart = ParseSingleChart(R"(
# leading comment

chart Mini
  # inner comment
  state A residence=1

  state B residence=2
  initial A
  final B
  trans A -> B prob=1
end
)");
  EXPECT_TRUE(chart.ok()) << chart.status();
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto r = ParseCharts("chart X\n  bogus A\nend\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(ParserTest, RejectsUnknownKeyword) {
  EXPECT_FALSE(ParseCharts("chart X\n  widget A\nend\n").ok());
}

TEST(ParserTest, RejectsStatementOutsideChart) {
  EXPECT_FALSE(ParseCharts("state A residence=1\n").ok());
}

TEST(ParserTest, RejectsUnclosedChart) {
  EXPECT_FALSE(ParseCharts("chart X\n  state A residence=1\n").ok());
}

TEST(ParserTest, RejectsNestedChart) {
  EXPECT_FALSE(ParseCharts("chart X\nchart Y\nend\nend\n").ok());
}

TEST(ParserTest, RejectsEmptyDocument) {
  EXPECT_FALSE(ParseCharts("# nothing here\n").ok());
}

TEST(ParserTest, RejectsMissingResidence) {
  EXPECT_FALSE(ParseCharts(R"(
chart X
  state A activity=foo
  state B residence=1
  initial A
  final B
  trans A -> B prob=1
end
)")
                   .ok());
}

TEST(ParserTest, RejectsMalformedAttribute) {
  EXPECT_FALSE(ParseCharts(R"(
chart X
  state A residence=abc
  state B residence=1
  initial A
  final B
  trans A -> B prob=1
end
)")
                   .ok());
  EXPECT_FALSE(ParseCharts(R"(
chart X
  state A residence=1 residence=2
  state B residence=1
  initial A
  final B
  trans A -> B prob=1
end
)")
                   .ok());
}

TEST(ParserTest, RejectsBadTransitionSyntax) {
  EXPECT_FALSE(ParseCharts(R"(
chart X
  state A residence=1
  state B residence=1
  initial A
  final B
  trans A B prob=1
end
)")
                   .ok());
}

TEST(ParserTest, RejectsUnknownSubchartReference) {
  auto r = ParseCharts(R"(
chart X
  compound C subcharts=NoSuchChart
  state B residence=1
  initial C
  final B
  trans C -> B prob=1
end
)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ParserTest, DslRoundTrip) {
  auto registry = ParseCharts(wfms::testing::kEpChartsDsl);
  ASSERT_TRUE(registry.ok());
  const std::string dsl = registry->ToDsl();
  auto reparsed = ParseCharts(dsl);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->size(), registry->size());
  const StateChart& ep1 = **registry->GetChart("EP");
  const StateChart& ep2 = **reparsed->GetChart("EP");
  ASSERT_EQ(ep2.num_states(), ep1.num_states());
  ASSERT_EQ(ep2.transitions().size(), ep1.transitions().size());
  for (size_t i = 0; i < ep1.transitions().size(); ++i) {
    EXPECT_EQ(ep2.transitions()[i].from, ep1.transitions()[i].from);
    EXPECT_EQ(ep2.transitions()[i].to, ep1.transitions()[i].to);
    EXPECT_DOUBLE_EQ(ep2.transitions()[i].probability,
                     ep1.transitions()[i].probability);
    EXPECT_EQ(ep2.transitions()[i].rule.event,
              ep1.transitions()[i].rule.event);
  }
}

}  // namespace
}  // namespace wfms::statechart

#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/metrics.h"

namespace wfms {

namespace {

metrics::Counter& TasksSubmitted() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_threadpool_tasks_submitted_total");
  return counter;
}

metrics::Counter& TasksExecuted() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_threadpool_tasks_executed_total");
  return counter;
}

metrics::Histogram& QueueWaitSeconds() {
  static metrics::Histogram& histogram = metrics::MetricsRegistry::Global()
      .GetHistogram("wfms_threadpool_queue_wait_seconds");
  return histogram;
}

metrics::Gauge& QueueDepthGauge() {
  static metrics::Gauge& gauge = metrics::MetricsRegistry::Global()
      .GetGauge("wfms_threadpool_queue_depth");
  return gauge;
}

metrics::Counter& TasksRejected() {
  static metrics::Counter& counter = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_threadpool_tasks_rejected_total");
  return counter;
}

// Wraps a queued task so its time-in-queue is observed at dequeue. Inline
// executions (single-lane pool) record a zero wait instead.
std::function<void()> TimedTask(std::function<void()> task) {
  const auto enqueued = std::chrono::steady_clock::now();
  return [enqueued, task = std::move(task)]() {
    QueueWaitSeconds().Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      enqueued)
            .count());
    TasksExecuted().Increment();
    task();
  };
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  const size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // idempotent (second call or dtor after Shutdown)
    stopping_ = true;
  }
  work_available_.notify_all();
  // Workers exit only once the queue is empty, so every task queued before
  // the stop flag was raised still runs and resolves its future.
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

Status ThreadPool::Enqueue(std::function<void()> task, bool bounded) {
  bool run_inline = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // A Submit racing Shutdown (checkpoint-on-signal vs. pool teardown)
      // is rejected, never enqueued onto a dying queue.
      return Status::FailedPrecondition("ThreadPool::Submit after Shutdown");
    }
    if (workers_.empty()) {
      run_inline = true;  // single-lane pool: deterministic inline execution
    } else {
      if (bounded && max_queue_ > 0 && queue_.size() >= max_queue_) {
        // Shed-don't-block: the caller gets an immediate, explicit
        // rejection instead of unbounded queueing (the daemon turns this
        // into a `rejected: overloaded` response).
        TasksRejected().Increment();
        return Status::Unavailable(
            "ThreadPool queue full (" + std::to_string(queue_.size()) +
            " of " + std::to_string(max_queue_) + " slots)");
      }
      queue_.push_back(TimedTask(std::move(task)));
      QueueDepthGauge().Set(static_cast<double>(queue_.size()));
    }
  }
  TasksSubmitted().Increment();
  if (run_inline) {
    QueueWaitSeconds().Observe(0.0);
    TasksExecuted().Increment();
    task();
    return Status::OK();
  }
  work_available_.notify_one();
  return Status::OK();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge().Set(static_cast<double>(queue_.size()));
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared claim counter: lanes grab the next unclaimed index until all n
  // are taken. The caller is one of the lanes, so a pool is never idle
  // while its owner blocks.
  struct SharedState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t total;
    const std::function<void(size_t)>* fn;
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<SharedState>();
  state->total = n;
  state->fn = &fn;

  const auto drain = [](const std::shared_ptr<SharedState>& s) {
    for (;;) {
      const size_t i = s->next.fetch_add(1);
      if (i >= s->total) break;
      (*s->fn)(i);
      if (s->done.fetch_add(1) + 1 == s->total) {
        std::lock_guard<std::mutex> lock(s->mutex);
        s->all_done.notify_all();
      }
    }
  };

  // Helper fan-out bypasses the Submit bound: the calling lane drains the
  // whole index range itself if no helper ever runs, so these tasks can
  // never wedge a bounded pool.
  const size_t helpers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t h = 0; h < helpers; ++h) {
      queue_.push_back(TimedTask([state, drain]() { drain(state); }));
    }
    QueueDepthGauge().Set(static_cast<double>(queue_.size()));
  }
  TasksSubmitted().Increment(helpers);
  work_available_.notify_all();

  drain(state);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&state]() {
    return state->done.load() == state->total;
  });
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("WFMS_NUM_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace wfms

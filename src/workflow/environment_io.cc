#include "workflow/environment_io.h"

#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "statechart/parser.h"

namespace wfms::workflow {

namespace {

Status LineError(int line_no, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line_no) + ": " +
                            message);
}

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

Result<std::map<std::string, std::string>> ParseKeyValues(
    const std::vector<std::string>& tokens, size_t first, int line_no) {
  std::map<std::string, std::string> out;
  for (size_t i = first; i < tokens.size(); ++i) {
    const size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      return LineError(line_no, "expected key=value, got '" + tokens[i] +
                                    "'");
    }
    if (!out.emplace(tokens[i].substr(0, eq), tokens[i].substr(eq + 1))
             .second) {
      return LineError(line_no,
                       "duplicate key '" + tokens[i].substr(0, eq) + "'");
    }
  }
  return out;
}

Result<double> GetDouble(const std::map<std::string, std::string>& kv,
                         const std::string& key, int line_no) {
  const auto it = kv.find(key);
  if (it == kv.end()) return LineError(line_no, "missing '" + key + "'");
  double value = 0.0;
  if (!ParseDouble(it->second, &value)) {
    return LineError(line_no, "'" + key + "' is not a number");
  }
  return value;
}

Result<ServerKind> ParseKind(const std::string& text, int line_no) {
  if (text == "communication") return ServerKind::kCommunicationServer;
  if (text == "engine") return ServerKind::kWorkflowEngine;
  if (text == "application") return ServerKind::kApplicationServer;
  return LineError(line_no, "unknown server kind '" + text +
                                "' (communication|engine|application)");
}

const char* KindKeyword(ServerKind kind) {
  switch (kind) {
    case ServerKind::kCommunicationServer:
      return "communication";
    case ServerKind::kWorkflowEngine:
      return "engine";
    case ServerKind::kApplicationServer:
      return "application";
  }
  return "engine";
}

}  // namespace

Result<Environment> ParseEnvironment(std::string_view text) {
  Environment env;
  std::string chart_dsl;  // chart blocks forwarded to the statechart parser

  // Load lines are parsed after all servers are known (load vectors are
  // keyed by server-type name).
  struct PendingLoad {
    int line_no;
    std::string activity;
    std::map<std::string, std::string> entries;
  };
  std::vector<PendingLoad> pending_loads;

  // Latency rows are parsed after all sites are known (the row width is
  // the site count, and rows are keyed by site name).
  struct PendingLatencyRow {
    int line_no;
    std::string site;
    std::vector<double> values;
  };
  std::vector<PendingLatencyRow> pending_latency;

  enum class Section { kNone, kServers, kLoads, kWorkflows, kSites, kChart };
  Section section = Section::kNone;

  std::istringstream stream{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') {
      if (section == Section::kChart) chart_dsl += std::string(raw) + "\n";
      continue;
    }
    const std::vector<std::string> tokens = Tokenize(line);
    const std::string& keyword = tokens[0];

    if (section == Section::kChart) {
      chart_dsl += std::string(raw) + "\n";
      if (keyword == "end") section = Section::kNone;
      continue;
    }

    if (section == Section::kNone) {
      if (keyword == "servers") {
        section = Section::kServers;
      } else if (keyword == "loads") {
        section = Section::kLoads;
      } else if (keyword == "workflows") {
        section = Section::kWorkflows;
      } else if (keyword == "sites") {
        section = Section::kSites;
      } else if (keyword == "chart") {
        chart_dsl += std::string(raw) + "\n";
        section = Section::kChart;
      } else {
        return LineError(line_no, "unexpected '" + keyword +
                                      "' outside any section");
      }
      continue;
    }

    if (keyword == "end") {
      section = Section::kNone;
      continue;
    }

    switch (section) {
      case Section::kServers: {
        if (keyword != "server" || tokens.size() < 2) {
          return LineError(line_no, "usage: server NAME key=value...");
        }
        WFMS_ASSIGN_OR_RETURN(auto kv, ParseKeyValues(tokens, 2, line_no));
        ServerType type;
        type.name = tokens[1];
        const auto kind_it = kv.find("kind");
        if (kind_it == kv.end()) {
          return LineError(line_no, "missing 'kind'");
        }
        WFMS_ASSIGN_OR_RETURN(type.kind, ParseKind(kind_it->second, line_no));
        WFMS_ASSIGN_OR_RETURN(double mean,
                              GetDouble(kv, "service_mean", line_no));
        double scv = 1.0;
        if (kv.count("service_scv") > 0) {
          WFMS_ASSIGN_OR_RETURN(scv, GetDouble(kv, "service_scv", line_no));
        }
        // Reject non-finite / out-of-range numerics at parse time, naming
        // the server type: a NaN or negative moment would otherwise only
        // surface deep inside a solver as an opaque numerical failure.
        if (!std::isfinite(mean) || !(mean > 0.0)) {
          return LineError(line_no, "server '" + type.name +
                                        "': service_mean must be finite "
                                        "and positive");
        }
        if (!std::isfinite(scv) || scv < 0.0) {
          return LineError(line_no, "server '" + type.name +
                                        "': service_scv must be finite "
                                        "and non-negative");
        }
        auto moments = queueing::ServiceFromMeanScv(mean, scv);
        if (!moments.ok()) {
          return moments.status().WithContext("line " +
                                              std::to_string(line_no));
        }
        type.service = *moments;
        WFMS_ASSIGN_OR_RETURN(double mttf, GetDouble(kv, "mttf", line_no));
        WFMS_ASSIGN_OR_RETURN(double mttr, GetDouble(kv, "mttr", line_no));
        if (!std::isfinite(mttf) || !std::isfinite(mttr) || !(mttf > 0.0) ||
            !(mttr > 0.0)) {
          return LineError(line_no, "server '" + type.name +
                                        "': mttf/mttr must be finite and "
                                        "positive");
        }
        type.failure_rate = 1.0 / mttf;
        type.repair_rate = 1.0 / mttr;
        WFMS_RETURN_NOT_OK(env.servers.AddServerType(std::move(type))
                               .status()
                               .WithContext("line " +
                                            std::to_string(line_no)));
        break;
      }
      case Section::kLoads: {
        if (keyword != "load" || tokens.size() < 2) {
          return LineError(line_no, "usage: load ACTIVITY server=count...");
        }
        WFMS_ASSIGN_OR_RETURN(auto kv, ParseKeyValues(tokens, 2, line_no));
        pending_loads.push_back({line_no, tokens[1], std::move(kv)});
        break;
      }
      case Section::kWorkflows: {
        if (keyword != "workflow" || tokens.size() < 2) {
          return LineError(line_no, "usage: workflow NAME chart=C rate=R");
        }
        WFMS_ASSIGN_OR_RETURN(auto kv, ParseKeyValues(tokens, 2, line_no));
        WorkflowTypeSpec spec;
        spec.name = tokens[1];
        const auto chart_it = kv.find("chart");
        spec.chart = chart_it == kv.end() ? spec.name : chart_it->second;
        WFMS_ASSIGN_OR_RETURN(spec.arrival_rate,
                              GetDouble(kv, "rate", line_no));
        if (!std::isfinite(spec.arrival_rate) || spec.arrival_rate < 0.0) {
          return LineError(line_no, "workflow '" + spec.name +
                                        "': rate must be finite and "
                                        "non-negative");
        }
        env.workflows.push_back(std::move(spec));
        break;
      }
      case Section::kSites: {
        if (keyword == "site") {
          if (tokens.size() < 2) {
            return LineError(line_no, "usage: site NAME [mttf=H mttr=H]");
          }
          WFMS_ASSIGN_OR_RETURN(auto kv, ParseKeyValues(tokens, 2, line_no));
          Site site;
          site.name = tokens[1];
          if (env.topology.IndexOf(site.name).ok()) {
            return LineError(line_no,
                             "duplicate site '" + site.name + "'");
          }
          if (kv.count("mttf") > 0 || kv.count("mttr") > 0) {
            WFMS_ASSIGN_OR_RETURN(double mttf,
                                  GetDouble(kv, "mttf", line_no));
            WFMS_ASSIGN_OR_RETURN(double mttr,
                                  GetDouble(kv, "mttr", line_no));
            if (!std::isfinite(mttf) || !std::isfinite(mttr) ||
                !(mttf > 0.0) || !(mttr > 0.0)) {
              return LineError(line_no, "site '" + site.name +
                                            "': mttf/mttr must be finite "
                                            "and positive");
            }
            site.failure_rate = 1.0 / mttf;
            site.repair_rate = 1.0 / mttr;
          }
          env.topology.sites.push_back(std::move(site));
        } else if (keyword == "latency") {
          if (tokens.size() < 2) {
            return LineError(line_no, "usage: latency SITE v1 v2 ... vs");
          }
          PendingLatencyRow row;
          row.line_no = line_no;
          row.site = tokens[1];
          for (size_t i = 2; i < tokens.size(); ++i) {
            double value = 0.0;
            if (!ParseDouble(tokens[i], &value)) {
              return LineError(line_no, "latency row for site '" + row.site +
                                            "': entry " +
                                            std::to_string(i - 1) + " ('" +
                                            tokens[i] +
                                            "') is not a number");
            }
            row.values.push_back(value);
          }
          pending_latency.push_back(std::move(row));
        } else if (keyword == "partition") {
          WFMS_ASSIGN_OR_RETURN(auto kv, ParseKeyValues(tokens, 1, line_no));
          WFMS_ASSIGN_OR_RETURN(env.topology.partition_rate,
                                GetDouble(kv, "rate", line_no));
          WFMS_ASSIGN_OR_RETURN(env.topology.heal_rate,
                                GetDouble(kv, "heal", line_no));
        } else {
          return LineError(line_no, "unexpected '" + keyword +
                                        "' in sites section "
                                        "(site|latency|partition)");
        }
        break;
      }
      default:
        return LineError(line_no, "internal section error");
    }
  }
  if (section == Section::kChart) {
    return Status::ParseError("unterminated chart block");
  }
  if (section != Section::kNone) {
    return Status::ParseError("unterminated section");
  }

  // Resolve load vectors now that all server types are registered.
  for (const PendingLoad& load : pending_loads) {
    linalg::Vector requests(env.servers.size(), 0.0);
    for (const auto& [server, count_text] : load.entries) {
      auto index = env.servers.IndexOf(server);
      if (!index.ok()) {
        return LineError(load.line_no, "unknown server type '" + server +
                                           "' in load for '" +
                                           load.activity + "'");
      }
      double count = 0.0;
      if (!ParseDouble(count_text, &count) || count < 0.0) {
        return LineError(load.line_no, "bad request count for '" + server +
                                           "'");
      }
      requests[*index] = count;
    }
    WFMS_RETURN_NOT_OK(env.loads.SetLoad(load.activity, std::move(requests)));
  }

  // Resolve latency rows now that the site list (and so the expected row
  // width) is known. Errors name the offending site or matrix entry.
  const size_t num_sites = env.topology.num_sites();
  if (num_sites > 0) {
    env.topology.latency.assign(num_sites * num_sites, 0.0);
    std::set<std::string> seen_rows;
    for (const PendingLatencyRow& row : pending_latency) {
      const auto index = env.topology.IndexOf(row.site);
      if (!index.ok()) {
        return LineError(row.line_no,
                         "latency row names unknown site '" + row.site + "'");
      }
      if (!seen_rows.insert(row.site).second) {
        return LineError(row.line_no,
                         "duplicate latency row for site '" + row.site + "'");
      }
      if (row.values.size() != num_sites) {
        return LineError(row.line_no,
                         "latency row for site '" + row.site + "' has " +
                             std::to_string(row.values.size()) +
                             " entries, expected " +
                             std::to_string(num_sites) + " (one per site)");
      }
      for (size_t b = 0; b < num_sites; ++b) {
        env.topology.latency[*index * num_sites + b] = row.values[b];
      }
    }
    if (!pending_latency.empty() && seen_rows.size() != num_sites) {
      for (const Site& site : env.topology.sites) {
        if (seen_rows.count(site.name) == 0) {
          return Status::ParseError("missing latency row for site '" +
                                    site.name + "'");
        }
      }
    }
  } else if (!pending_latency.empty()) {
    return LineError(pending_latency.front().line_no,
                     "latency row for site '" + pending_latency.front().site +
                         "' but no sites declared");
  }

  if (!chart_dsl.empty()) {
    auto charts = statechart::ParseCharts(chart_dsl);
    if (!charts.ok()) {
      return charts.status().WithContext("embedded charts");
    }
    env.charts = *std::move(charts);
  }
  WFMS_RETURN_NOT_OK(env.Validate());
  return env;
}

std::string SerializeEnvironment(const Environment& env) {
  std::ostringstream os;
  os.precision(12);
  os << "servers\n";
  for (size_t x = 0; x < env.servers.size(); ++x) {
    const ServerType& type = env.servers.type(x);
    os << "  server " << type.name << " kind=" << KindKeyword(type.kind)
       << " service_mean=" << type.service.mean
       << " service_scv=" << type.service.scv()
       << " mttf=" << 1.0 / type.failure_rate
       << " mttr=" << 1.0 / type.repair_rate << "\n";
  }
  os << "end\n\nloads\n";
  for (const std::string& activity : env.loads.Activities()) {
    const linalg::Vector load = env.loads.LoadOf(activity,
                                                 env.servers.size());
    os << "  load " << activity;
    for (size_t x = 0; x < env.servers.size(); ++x) {
      if (load[x] != 0.0) {
        os << " " << env.servers.type(x).name << "=" << load[x];
      }
    }
    os << "\n";
  }
  os << "end\n\nworkflows\n";
  for (const WorkflowTypeSpec& spec : env.workflows) {
    os << "  workflow " << spec.name << " chart=" << spec.chart
       << " rate=" << spec.arrival_rate << "\n";
  }
  os << "end\n\n";
  // The sites section is emitted only for multi-site environments so
  // single-site scenario round-trips stay byte-identical to pre-site
  // builds.
  if (!env.topology.empty()) {
    const size_t s = env.topology.num_sites();
    os << "sites\n";
    for (const Site& site : env.topology.sites) {
      os << "  site " << site.name;
      if (site.failure_rate > 0.0) {
        os << " mttf=" << 1.0 / site.failure_rate
           << " mttr=" << 1.0 / site.repair_rate;
      }
      os << "\n";
    }
    for (size_t a = 0; a < s; ++a) {
      os << "  latency " << env.topology.sites[a].name;
      for (size_t b = 0; b < s; ++b) {
        os << " " << env.topology.Latency(a, b);
      }
      os << "\n";
    }
    if (env.topology.partition_rate > 0.0) {
      os << "  partition rate=" << env.topology.partition_rate
         << " heal=" << env.topology.heal_rate << "\n";
    }
    os << "end\n\n";
  }
  os << env.charts.ToDsl();
  return os.str();
}

}  // namespace wfms::workflow

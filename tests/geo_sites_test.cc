// Geo-distributed environments (DESIGN.md §12): the coverage structure
// function, the site-mode availability CTMC vs its product form, the
// survivability contingency assessment, the per-site placement search,
// and the simulator cross-checks (overlay partitions and scripted site
// evacuation against the analytic / prescribed availability).
#include "workflow/sites.h"

#include <gtest/gtest.h>

#include <vector>

#include "avail/availability_model.h"
#include "configtool/tool.h"
#include "sim/fault_schedule.h"
#include "sim/simulator.h"
#include "workflow/configuration.h"
#include "workflow/scenarios.h"

namespace wfms {
namespace {

using workflow::Configuration;
using workflow::Environment;
using workflow::ServingComponent;

Environment GeoEnv() {
  auto env = workflow::GeoEpEnvironment();
  EXPECT_TRUE(env.ok()) << env.status();
  return *std::move(env);
}

// Split replica placement across EU/US: comm 1/1, engine 1/1, app 2/2.
Configuration SymmetricPlacement() {
  return Configuration::FromSiteCounts({1, 1, 1, 1, 2, 2}, 2);
}

// All engines at EU, all app servers at US: a partition severs the
// workflow (no side hosts every type).
Configuration SplitBrainPlacement() {
  return Configuration::FromSiteCounts({1, 1, 2, 0, 0, 2}, 2);
}

// ------------------------------------------------ structure function --

TEST(ServingComponentTest, RequiresEveryTypeInOneComponent) {
  // 2 types x 2 sites, type-major up counts.
  const int covered[] = {1, 1, 1, 1};
  // All up, no partition: both sites connect; serving mask covers both.
  EXPECT_EQ(ServingComponent(2, 2, covered, 0b11, 0), 0b11u);
  // Partitioned, but each site self-sufficient: a singleton serves.
  EXPECT_NE(ServingComponent(2, 2, covered, 0b11, 0b1), 0u);

  // Type 0 only at site 0, type 1 only at site 1: needs the link.
  const int split[] = {1, 0, 0, 1};
  EXPECT_EQ(ServingComponent(2, 2, split, 0b11, 0), 0b11u);
  EXPECT_EQ(ServingComponent(2, 2, split, 0b11, 0b1), 0u);
  // Losing either site kills it too.
  EXPECT_EQ(ServingComponent(2, 2, split, 0b01, 0), 0u);
  EXPECT_EQ(ServingComponent(2, 2, split, 0b10, 0), 0u);

  // A down site contributes nothing even if its counts are up.
  EXPECT_EQ(ServingComponent(2, 2, covered, 0b01, 0), 0b01u);
  EXPECT_EQ(ServingComponent(2, 2, covered, 0, 0), 0u);
}

TEST(ServingComponentTest, PicksTheBestQualifyingComponent) {
  // Both singletons qualify under a partition; the one with more up
  // replicas wins, ties break to the lowest site index.
  const int heavier_b[] = {1, 2, 1, 2};
  EXPECT_EQ(ServingComponent(2, 2, heavier_b, 0b11, 0b1), 0b10u);
  const int tie[] = {1, 1, 1, 1};
  EXPECT_EQ(ServingComponent(2, 2, tie, 0b11, 0b1), 0b01u);
}

TEST(SiteTopologyTest, PairIndexingAndGeoScenario) {
  EXPECT_EQ(workflow::PairCount(2), 1u);
  EXPECT_EQ(workflow::PairCount(4), 6u);
  EXPECT_EQ(workflow::PairIndex(0, 1, 2), 0u);

  const Environment env = GeoEnv();
  ASSERT_EQ(env.topology.num_sites(), 2u);
  EXPECT_EQ(env.topology.sites[0].name, "EU");
  EXPECT_EQ(env.topology.sites[1].name, "US");
  EXPECT_GT(env.topology.Latency(0, 1), 0.0);
  EXPECT_EQ(env.topology.Latency(0, 0), 0.0);
  auto eu = env.topology.IndexOf("EU");
  ASSERT_TRUE(eu.ok());
  EXPECT_EQ(*eu, 0u);
  EXPECT_FALSE(env.topology.IndexOf("MARS").ok());
}

// ------------------------------------------- availability, site mode --

TEST(GeoAvailabilityTest, ProductFormMatchesCtmcSolve) {
  const Environment env = GeoEnv();
  avail::AvailabilityOptions ctmc_options;
  auto ctmc_model = avail::AvailabilityModel::Create(env.servers, ctmc_options,
                                                     &env.topology);
  ASSERT_TRUE(ctmc_model.ok()) << ctmc_model.status();
  avail::AvailabilityOptions pf_options;
  pf_options.use_product_form = true;
  auto pf_model =
      avail::AvailabilityModel::Create(env.servers, pf_options, &env.topology);
  ASSERT_TRUE(pf_model.ok());

  for (const Configuration& config :
       {SymmetricPlacement(), SplitBrainPlacement()}) {
    auto ctmc = ctmc_model->EvaluateSites(config);
    ASSERT_TRUE(ctmc.ok()) << ctmc.status();
    auto pf = pf_model->EvaluateSites(config);
    ASSERT_TRUE(pf.ok()) << pf.status();
    EXPECT_NEAR(ctmc->availability, pf->availability, 1e-9)
        << config.ToString();
    ASSERT_EQ(ctmc->expected_up_servers.size(), pf->expected_up_servers.size());
    for (size_t x = 0; x < ctmc->expected_up_servers.size(); ++x) {
      EXPECT_NEAR(ctmc->expected_up_servers[x], pf->expected_up_servers[x],
                  1e-8);
    }
  }
}

TEST(GeoAvailabilityTest, ContingencyConditioningIsMonotone) {
  const Environment env = GeoEnv();
  auto model = avail::AvailabilityModel::Create(env.servers, {}, &env.topology);
  ASSERT_TRUE(model.ok());

  const Configuration config = SymmetricPlacement();
  auto baseline = model->EvaluateSites(config);
  ASSERT_TRUE(baseline.ok());
  EXPECT_GT(baseline->availability, 0.999);

  // Losing a site can only hurt; the symmetric placement still serves
  // from the survivor.
  avail::SiteContingency eu_down;
  eu_down.down_sites = 0b01;
  auto degraded = model->EvaluateSites(config, eu_down);
  ASSERT_TRUE(degraded.ok());
  EXPECT_LT(degraded->availability, baseline->availability);
  EXPECT_GT(degraded->availability, 0.99);

  // The split-brain placement is dead under a partition: no side covers
  // every type, so availability is exactly zero.
  avail::SiteContingency split;
  split.partitioned_pairs = 0b1;
  auto dead = model->EvaluateSites(SplitBrainPlacement(), split);
  ASSERT_TRUE(dead.ok());
  EXPECT_EQ(dead->availability, 0.0);
  // The symmetric placement rides a partition out on both sides.
  auto survives = model->EvaluateSites(config, split);
  ASSERT_TRUE(survives.ok());
  EXPECT_GT(survives->availability, 0.999);
}

TEST(GeoAvailabilityTest, ClassicConfigurationIsUnchangedByTopology) {
  // A non-site-placed configuration must take the classic path even when
  // the model owns a topology: single-site outputs stay byte-identical.
  const Environment geo = GeoEnv();
  auto geo_model =
      avail::AvailabilityModel::Create(geo.servers, {}, &geo.topology);
  ASSERT_TRUE(geo_model.ok());
  auto plain_env = workflow::EpEnvironment();
  ASSERT_TRUE(plain_env.ok());
  auto plain_model = avail::AvailabilityModel::Create(plain_env->servers, {});
  ASSERT_TRUE(plain_model.ok());

  const Configuration classic({2, 2, 3});
  EXPECT_FALSE(geo_model->site_mode(classic));
  auto a = geo_model->Evaluate(classic);
  auto b = plain_model->Evaluate(classic);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->availability, b->availability);
  EXPECT_EQ(a->downtime_minutes_per_year, b->downtime_minutes_per_year);
  EXPECT_FALSE(a->site_layout.active);
}

// -------------------------------------------- survivability assessment --

configtool::Goals SurvivabilityGoals() {
  configtool::Goals goals;
  goals.max_waiting_time = 0.2;
  goals.min_availability = 0.999;
  goals.survive_sites = 1;
  goals.survive_partitions = true;
  goals.degraded_max_waiting_time = 0.2;
  goals.degraded_min_availability = 0.995;
  return goals;
}

TEST(GeoAssessTest, SplitBrainFailsAndSymmetricMeetsSurvivability) {
  const Environment env = GeoEnv();
  auto tool = configtool::ConfigurationTool::Create(env);
  ASSERT_TRUE(tool.ok()) << tool.status();
  const configtool::Goals goals = SurvivabilityGoals();

  auto split = tool->Assess(SplitBrainPlacement(), goals);
  ASSERT_TRUE(split.ok()) << split.status();
  ASSERT_EQ(split->contingencies.size(), 3u);  // 2 site losses + 1 partition
  EXPECT_FALSE(split->meets_survivability_goal);
  EXPECT_FALSE(split->Satisfies());
  bool saw_partition = false;
  for (const auto& c : split->contingencies) {
    if (c.label == "partition EU|US") {
      saw_partition = true;
      EXPECT_EQ(c.availability, 0.0);
      EXPECT_FALSE(c.satisfied);
    }
  }
  EXPECT_TRUE(saw_partition);

  auto symmetric = tool->Assess(SymmetricPlacement(), goals);
  ASSERT_TRUE(symmetric.ok());
  ASSERT_EQ(symmetric->contingencies.size(), 3u);
  for (const auto& c : symmetric->contingencies) {
    EXPECT_TRUE(c.satisfied) << c.label;
    EXPECT_GE(c.availability, goals.DegradedAvailabilityGoal()) << c.label;
  }
  EXPECT_TRUE(symmetric->meets_survivability_goal);
  EXPECT_TRUE(symmetric->Satisfies());

  // Without survivability goals the same placements skip the contingency
  // sweep entirely (it is a pure opt-in).
  configtool::Goals plain;
  plain.max_waiting_time = 0.2;
  plain.min_availability = 0.999;
  auto unswept = tool->Assess(SplitBrainPlacement(), plain);
  ASSERT_TRUE(unswept.ok());
  EXPECT_TRUE(unswept->contingencies.empty());
  EXPECT_TRUE(unswept->meets_survivability_goal);
}

TEST(GeoAssessTest, ContingencyReportsAreMemoized) {
  const Environment env = GeoEnv();
  auto tool = configtool::ConfigurationTool::Create(env);
  ASSERT_TRUE(tool.ok());
  const configtool::Goals goals = SurvivabilityGoals();

  auto first = tool->Assess(SymmetricPlacement(), goals);
  ASSERT_TRUE(first.ok());
  const auto after_first = tool->cache_stats();
  // Base report + one per contingency.
  EXPECT_GE(after_first.entries, 4u);

  auto second = tool->Assess(SymmetricPlacement(), goals);
  ASSERT_TRUE(second.ok());
  const auto after_second = tool->cache_stats();
  EXPECT_EQ(after_second.entries, after_first.entries);
  EXPECT_GT(after_second.hits, after_first.hits);
  ASSERT_EQ(second->contingencies.size(), first->contingencies.size());
  for (size_t i = 0; i < first->contingencies.size(); ++i) {
    EXPECT_EQ(second->contingencies[i].availability,
              first->contingencies[i].availability);
    EXPECT_EQ(second->contingencies[i].max_expected_waiting,
              first->contingencies[i].max_expected_waiting);
  }
}

// -------------------------------------------------- placement search --

TEST(GeoSearchTest, GreedySiteFindsSurvivablePlacement) {
  const Environment env = GeoEnv();
  auto tool = configtool::ConfigurationTool::Create(env);
  ASSERT_TRUE(tool.ok());

  auto result = tool->GreedySiteMinCost(SurvivabilityGoals());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->satisfied);
  EXPECT_TRUE(result->assessment.Satisfies());
  EXPECT_TRUE(result->assessment.meets_survivability_goal);
  // The ISSUE acceptance scenario: where the split-brain baseline dies
  // under a partition, the search lands on the symmetric placement.
  EXPECT_EQ(result->config, SymmetricPlacement());
  EXPECT_EQ(result->cost, 8.0);
  // Every site hosts every type, so each side survives alone.
  for (size_t x = 0; x < env.num_server_types(); ++x) {
    for (size_t a = 0; a < env.topology.num_sites(); ++a) {
      EXPECT_GE(result->config.SiteCount(x, a), 1) << x << "/" << a;
    }
  }
}

TEST(GeoSearchTest, GreedySiteIsThreadCountInvariant) {
  const Environment env = GeoEnv();
  auto sequential = configtool::ConfigurationTool::Create(env);
  ASSERT_TRUE(sequential.ok());
  sequential->set_num_threads(1);
  auto pooled = configtool::ConfigurationTool::Create(env);
  ASSERT_TRUE(pooled.ok());
  pooled->set_num_threads(4);

  const configtool::Goals goals = SurvivabilityGoals();
  auto a = sequential->GreedySiteMinCost(goals);
  auto b = pooled->GreedySiteMinCost(goals);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->config, b->config);
  EXPECT_EQ(a->cost, b->cost);
  EXPECT_EQ(a->satisfied, b->satisfied);
  EXPECT_EQ(a->evaluations, b->evaluations);
  EXPECT_EQ(a->assessment.performability.availability,
            b->assessment.performability.availability);
}

TEST(GeoSearchTest, MinPerSiteAnchorsAreHonored) {
  const Environment env = GeoEnv();
  auto tool = configtool::ConfigurationTool::Create(env);
  ASSERT_TRUE(tool.ok());

  configtool::SiteSearchConstraints constraints;
  // Type-major (k=3, s=2): the US site always keeps two app servers.
  constraints.min_per_site = {0, 0, 0, 0, 0, 2};
  auto result = tool->GreedySiteMinCost(SurvivabilityGoals(), constraints);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->satisfied);
  EXPECT_GE(result->config.SiteCount(2, 1), 2);

  // Bad shapes are structural errors, not silent truncation.
  configtool::SiteSearchConstraints bad;
  bad.min_per_site = {1, 2, 3};  // not k*s entries
  EXPECT_FALSE(tool->GreedySiteMinCost(SurvivabilityGoals(), bad).ok());
}

// ----------------------------------------------- simulator cross-checks --

sim::SimulationResult RunSim(const Environment& env,
                             sim::SimulationOptions options) {
  auto simulator = sim::Simulator::Create(env, std::move(options));
  EXPECT_TRUE(simulator.ok()) << simulator.status();
  auto result = simulator->Run();
  EXPECT_TRUE(result.ok()) << result.status();
  return *std::move(result);
}

TEST(GeoSimulationTest, OverlayPartitionMatchesAnalyticContingency) {
  const Environment env = GeoEnv();
  auto model = avail::AvailabilityModel::Create(env.servers, {}, &env.topology);
  ASSERT_TRUE(model.ok());
  avail::SiteContingency partition;
  partition.partitioned_pairs = 0b1;

  // A partition pinned for the whole run via the overlay schedule (random
  // replica failures stay on) must reproduce the analytic contingency
  // availability: exactly 0 for the split-brain placement, and within
  // confidence bounds of ~0.999998 for the symmetric one.
  auto schedule = sim::ParseFaultSchedule(
      "mode overlay\nat 0 partition EU|US\n", env.servers, &env.topology);
  ASSERT_TRUE(schedule.ok()) << schedule.status();

  sim::SimulationOptions options;
  options.duration = 20000.0;
  options.warmup = 1000.0;
  options.seed = 7;
  options.enable_failures = true;
  options.faults = *schedule;

  options.config = SplitBrainPlacement();
  const sim::SimulationResult dead = RunSim(env, options);
  auto dead_analytic =
      model->EvaluateSites(SplitBrainPlacement(), partition);
  ASSERT_TRUE(dead_analytic.ok());
  EXPECT_EQ(dead_analytic->availability, 0.0);
  EXPECT_EQ(dead.observed_availability, 0.0);

  options.config = SymmetricPlacement();
  const sim::SimulationResult alive = RunSim(env, options);
  auto alive_analytic = model->EvaluateSites(SymmetricPlacement(), partition);
  ASSERT_TRUE(alive_analytic.ok());
  EXPECT_GT(alive_analytic->availability, 0.999);
  EXPECT_NEAR(alive.observed_availability, alive_analytic->availability, 0.01);
}

TEST(GeoSimulationTest, SiteCrashReplayMatchesPrescribedAvailability) {
  const Environment env = GeoEnv();
  // Everything at EU: the scripted EU outage (minutes 5000-9000, inside
  // the 1000-20000 measurement window) takes the whole WFMS down for
  // 4000 of 19000 measured minutes.
  const Configuration all_eu =
      Configuration::FromSiteCounts({1, 0, 1, 0, 2, 0}, 2);
  auto schedule = sim::ParseFaultSchedule(
      "at 5000 site-crash EU\nat 9000 site-repair EU\n", env.servers,
      &env.topology);
  ASSERT_TRUE(schedule.ok()) << schedule.status();

  sim::SimulationOptions options;
  options.config = all_eu;
  options.duration = 20000.0;
  options.warmup = 1000.0;
  options.seed = 11;
  options.faults = *schedule;

  auto prescribed = options.faults.PrescribedAvailability(
      all_eu, env.num_server_types(), options.warmup, options.duration,
      &env.topology);
  ASSERT_TRUE(prescribed.ok()) << prescribed.status();
  EXPECT_NEAR(*prescribed, 15000.0 / 19000.0, 1e-12);
  const sim::SimulationResult result = RunSim(env, options);
  EXPECT_NEAR(result.observed_availability, *prescribed, 1e-9);

  // A placement with a full replica set at the surviving site rides the
  // evacuation out.
  options.config = SymmetricPlacement();
  auto covered = options.faults.PrescribedAvailability(
      options.config, env.num_server_types(), options.warmup,
      options.duration, &env.topology);
  ASSERT_TRUE(covered.ok());
  EXPECT_DOUBLE_EQ(*covered, 1.0);
  const sim::SimulationResult survived = RunSim(env, options);
  EXPECT_DOUBLE_EQ(survived.observed_availability, 1.0);
}

TEST(GeoSimulationTest, ScriptedGeoRunsAreBitIdentical) {
  const Environment env = GeoEnv();
  sim::SimulationOptions options;
  options.config = SymmetricPlacement();
  options.duration = 8000.0;
  options.warmup = 500.0;
  options.seed = 29;
  auto schedule = sim::ParseFaultSchedule(
      "at 1000 partition EU|US\nat 1400 heal EU|US\n"
      "at 3000 site-crash US\nat 3600 site-repair US\n",
      env.servers, &env.topology);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  options.faults = *schedule;

  const sim::SimulationResult a = RunSim(env, options);
  const sim::SimulationResult b = RunSim(env, options);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.observed_availability, b.observed_availability);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (size_t x = 0; x < a.servers.size(); ++x) {
    EXPECT_EQ(a.servers[x].completed_requests,
              b.servers[x].completed_requests);
    EXPECT_DOUBLE_EQ(a.servers[x].waiting_time.mean(),
                     b.servers[x].waiting_time.mean());
  }
}

}  // namespace
}  // namespace wfms

#include "common/trace.h"

#include <gtest/gtest.h>

#include "common/metrics.h"

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace wfms::trace {
namespace {

// The trace buffers are process-global: every test starts from a clean,
// enabled state and leaves recording off.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Clear();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    Clear();
  }
};

// One exported event, extracted with string surgery (the exporter emits
// one event per line, see trace.cc).
struct ParsedEvent {
  std::string name;
  double ts = -1.0;
  double dur = -1.0;
};

std::vector<ParsedEvent> ParseEvents(const std::string& json) {
  std::vector<ParsedEvent> events;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t name_pos = line.find("\"name\": \"");
    if (name_pos == std::string::npos) continue;
    ParsedEvent event;
    const size_t name_start = name_pos + 9;
    event.name = line.substr(name_start, line.find('"', name_start) -
                                             name_start);
    const size_t ts_pos = line.find("\"ts\": ");
    if (ts_pos != std::string::npos) {
      event.ts = std::stod(line.substr(ts_pos + 6));
    }
    const size_t dur_pos = line.find("\"dur\": ");
    if (dur_pos != std::string::npos) {
      event.dur = std::stod(line.substr(dur_pos + 7));
    }
    events.push_back(event);
  }
  return events;
}

bool JsonIsBalanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  SetEnabled(false);
  {
    TraceSpan span("test/ignored", "test");
    Instant("test/also_ignored", "test");
  }
  EXPECT_EQ(event_count(), 0u);
}

TEST_F(TraceTest, SpanRecordsOneCompleteEvent) {
  { TraceSpan span("test/unit", "test"); }
  EXPECT_EQ(event_count(), 1u);
  const std::string json = ExportJson();
  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test/unit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(TraceTest, NestedSpansAreContained) {
  {
    TraceSpan outer("test/outer", "test");
    { TraceSpan inner("test/inner", "test"); }
  }
  const std::vector<ParsedEvent> events = ParseEvents(ExportJson());
  ASSERT_EQ(events.size(), 2u);
  const ParsedEvent* outer = nullptr;
  const ParsedEvent* inner = nullptr;
  for (const ParsedEvent& e : events) {
    if (e.name == "test/outer") outer = &e;
    if (e.name == "test/inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner span's [ts, ts+dur] interval lies inside the outer's.
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
  EXPECT_GE(outer->dur, 0.0);
  EXPECT_GE(inner->dur, 0.0);
}

TEST_F(TraceTest, ExportIsSortedByTimestamp) {
  for (int i = 0; i < 8; ++i) {
    TraceSpan span("test/step", "test");
  }
  const std::vector<ParsedEvent> events = ParseEvents(ExportJson());
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts, events[i - 1].ts);
  }
}

TEST_F(TraceTest, InstantEventsAreRecorded) {
  Instant("test/marker", "test");
  EXPECT_EQ(event_count(), 1u);
  const std::string json = ExportJson();
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test/marker\""), std::string::npos);
}

TEST_F(TraceTest, NamesAreJsonEscaped) {
  { TraceSpan span("test/\"quoted\"\\slash", "test"); }
  const std::string json = ExportJson();
  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST_F(TraceTest, ConcurrentEmittersProduceValidJson) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("test/worker_" + std::to_string(t), "test");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Exited threads' buffers are orphaned, not dropped.
  EXPECT_EQ(event_count(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  const std::string json = ExportJson();
  EXPECT_TRUE(JsonIsBalanced(json));
  EXPECT_EQ(ParseEvents(json).size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
}

TEST_F(TraceTest, ClearDropsEverything) {
  { TraceSpan span("test/gone", "test"); }
  ASSERT_GT(event_count(), 0u);
  Clear();
  EXPECT_EQ(event_count(), 0u);
  EXPECT_EQ(ExportJson().find("test/gone"), std::string::npos);
}

TEST_F(TraceTest, WriteJsonRoundTrips) {
  { TraceSpan span("test/to_disk", "test"); }
  const std::string path =
      ::testing::TempDir() + "/wfms_trace_test_out.json";
  ASSERT_TRUE(WriteJson(path).ok());
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_EQ(contents, ExportJson());
}

TEST_F(TraceTest, WriteJsonReportsUnwritablePath) {
  EXPECT_FALSE(WriteJson("/nonexistent_dir_zzz/trace.json").ok());
}

// ---------------------------------------------------------------------------
// TraceContext: the distributed parent links of DESIGN.md §13. Suite name
// must keep matching the TSan CI regex (TraceContext).

using TraceContextTest = TraceTest;

TEST_F(TraceContextTest, MintProducesValidRootContext) {
  const TraceContext ctx = TraceContext::Mint();
  EXPECT_TRUE(ctx.valid());
  EXPECT_EQ(ctx.span_id, 0u) << "a minted context is a root, no parent span";
  EXPECT_EQ(ctx.trace_id_hex().size(), 32u);
  EXPECT_EQ(ctx.span_id_hex().size(), 16u);
  const TraceContext other = TraceContext::Mint();
  EXPECT_FALSE(ctx.trace_hi == other.trace_hi &&
               ctx.trace_lo == other.trace_lo)
      << "two mints returned the same 128-bit trace id";
}

TEST_F(TraceContextTest, WithRemoteParentAdoptsWireValues) {
  const TraceContext ctx = TraceContext::WithRemoteParent(
      "0123456789abcdef0123456789ABCDEF", "00000000000000ff");
  EXPECT_EQ(ctx.trace_hi, 0x0123456789abcdefull);
  EXPECT_EQ(ctx.trace_lo, 0x0123456789abcdefull);
  EXPECT_EQ(ctx.span_id, 0xffu);
  EXPECT_EQ(ctx.trace_id_hex(), "0123456789abcdef0123456789abcdef");
}

TEST_F(TraceContextTest, WithRemoteParentMintsFreshOnGarbageTraceId) {
  for (const char* hostile :
       {"", "short", "zzzz456789abcdef0123456789abcdef",
        "0123456789abcdef0123456789abcdef0", "00000000000000000000000000000000"}) {
    const TraceContext ctx =
        TraceContext::WithRemoteParent(hostile, "00000000000000ff");
    EXPECT_TRUE(ctx.valid()) << hostile;
    EXPECT_EQ(ctx.span_id, 0u)
        << "a remote parent must not survive a rejected trace id";
  }
}

TEST_F(TraceContextTest, WithRemoteParentDropsUnparsableParentSpan) {
  const TraceContext ctx = TraceContext::WithRemoteParent(
      "0123456789abcdef0123456789abcdef", "xyz");
  EXPECT_EQ(ctx.trace_id_hex(), "0123456789abcdef0123456789abcdef");
  EXPECT_EQ(ctx.span_id, 0u);
}

TEST_F(TraceContextTest, LinkedSpansExportArgsWithParentLinks) {
  const TraceContext root = TraceContext::WithRemoteParent(
      "0123456789abcdef0123456789abcdef", "000000000000beef");
  std::string child_span_hex;
  {
    TraceSpan span("service/assess", "service", root);
    const TraceContext child = span.context();
    EXPECT_EQ(child.trace_id_hex(), root.trace_id_hex());
    EXPECT_NE(child.span_id, 0u) << "recorded span must mint its own span id";
    EXPECT_NE(child.span_id, root.span_id);
    child_span_hex = child.span_id_hex();
  }
  const std::string json = ExportJson();
  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"trace_id\": \"0123456789abcdef0123456789abcdef\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"span_id\": \"" + child_span_hex + "\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"parent_span_id\": \"000000000000beef\""),
            std::string::npos)
      << json;
}

TEST_F(TraceContextTest, RootSpanOmitsParentLink) {
  const TraceContext root = TraceContext::Mint();  // span_id == 0
  { TraceSpan span("client/assess", "client", root); }
  const std::string json = ExportJson();
  EXPECT_NE(json.find("\"trace_id\": \"" + root.trace_id_hex() + "\""),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("parent_span_id"), std::string::npos) << json;
}

TEST_F(TraceContextTest, UnlinkedSpansExportNoArgs) {
  { TraceSpan span("markov/steady_state", "markov"); }
  EXPECT_EQ(ExportJson().find("\"args\""), std::string::npos);
}

TEST_F(TraceContextTest, ContextPassesThroughWhileDisabled) {
  SetEnabled(false);
  const TraceContext parent = TraceContext::WithRemoteParent(
      "0123456789abcdef0123456789abcdef", "000000000000beef");
  TraceSpan span("service/assess", "service", parent);
  const TraceContext through = span.context();
  EXPECT_EQ(through.trace_hi, parent.trace_hi);
  EXPECT_EQ(through.trace_lo, parent.trace_lo);
  EXPECT_EQ(through.span_id, parent.span_id)
      << "unrecorded spans must not break the parent chain";
  EXPECT_EQ(event_count(), 0u);
}

TEST_F(TraceContextTest, NestedContextsChainParentLinks) {
  const TraceContext root = TraceContext::Mint();
  TraceSpan outer("service/assess", "service", root);
  TraceSpan inner("configtool/assess_isolated", "configtool",
                  outer.context());
  EXPECT_EQ(inner.context().trace_id_hex(), root.trace_id_hex());
  EXPECT_NE(inner.context().span_id, outer.context().span_id);
}

TEST_F(TraceContextTest, BufferWraparoundIncrementsDroppedCounter) {
  auto& dropped =
      metrics::MetricsRegistry::Global().GetCounter("wfms_trace_dropped_total");
  const uint64_t baseline = dropped.value();
  SetThreadBufferCapacity(16);
  const TraceContext ctx = TraceContext::Mint();
  for (int i = 0; i < 48; ++i) {
    TraceSpan span("overflow/span", "test", ctx);
  }
  SetThreadBufferCapacity(0);  // restore the default for later tests
  EXPECT_LE(event_count(), 16u) << "buffer grew past its cap";
  EXPECT_GE(dropped.value() - baseline, 32u)
      << "spans past capacity must be counted, not silently lost";
  EXPECT_TRUE(JsonIsBalanced(ExportJson()));
}

}  // namespace
}  // namespace wfms::trace

#include "performability/performability_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "workflow/scenarios.h"

namespace wfms::performability {
namespace {

using workflow::Configuration;

PerformabilityModel MakeModel(const workflow::Environment& env,
                              PerformabilityOptions options = {}) {
  auto model = PerformabilityModel::Create(env, options);
  EXPECT_TRUE(model.ok()) << model.status();
  return *std::move(model);
}

TEST(PerformabilityTest, ProbDownMatchesAvailabilityModel) {
  auto env = workflow::EpEnvironment(0.5);
  ASSERT_TRUE(env.ok());
  const PerformabilityModel model = MakeModel(*env);
  const Configuration config({2, 2, 2});
  auto report = model.Evaluate(config);
  ASSERT_TRUE(report.ok()) << report.status();
  auto avail = model.availability().Evaluate(config);
  ASSERT_TRUE(avail.ok());
  EXPECT_NEAR(report->prob_down, avail->unavailability, 1e-12);
  EXPECT_NEAR(report->availability, avail->availability, 1e-12);
}

TEST(PerformabilityTest, DegradationRaisesExpectedWaiting) {
  auto env = workflow::EpEnvironment(1.0);
  ASSERT_TRUE(env.ok());
  const PerformabilityModel model = MakeModel(*env);
  auto report = model.Evaluate(Configuration({2, 2, 2}));
  ASSERT_TRUE(report.ok());
  for (size_t x = 0; x < 3; ++x) {
    // W^Y must dominate the failure-free waiting time of the full config.
    EXPECT_GE(report->expected_waiting[x],
              report->full_config_waiting[x] * (1.0 - 1e-12));
  }
  EXPECT_GT(report->prob_degraded, 0.0);
  EXPECT_LE(report->prob_down + report->prob_saturated +
                report->prob_degraded,
            1.0 + 1e-12);
}

TEST(PerformabilityTest, FastRepairApproachesFailureFreeWaiting) {
  auto env = workflow::EpEnvironment(1.0);
  ASSERT_TRUE(env.ok());
  // Make repairs nearly instantaneous: degradation mass vanishes.
  for (size_t x = 0; x < env->servers.size(); ++x) {
    env->servers.mutable_type(x).repair_rate = 1e4;
  }
  const PerformabilityModel model = MakeModel(*env);
  auto report = model.Evaluate(Configuration({2, 2, 2}));
  ASSERT_TRUE(report.ok());
  for (size_t x = 0; x < 3; ++x) {
    EXPECT_NEAR(report->expected_waiting[x], report->full_config_waiting[x],
                1e-6 + report->full_config_waiting[x] * 1e-3);
  }
}

TEST(PerformabilityTest, ReplicationImprovesPerformability) {
  auto env = workflow::EpEnvironment(1.5);
  ASSERT_TRUE(env.ok());
  const PerformabilityModel model = MakeModel(*env);
  auto small = model.Evaluate(Configuration({1, 1, 1}));
  auto large = model.Evaluate(Configuration({2, 3, 3}));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(large->max_expected_waiting, small->max_expected_waiting);
  EXPECT_LT(large->prob_down, small->prob_down);
}

TEST(PerformabilityTest, SaturatedDegradedStatesDetected) {
  // At a load where one engine saturates, the (2,1,2)-style degraded
  // states are saturated: with the conditional policy they are excluded
  // but reported.
  auto env = workflow::EpEnvironment(2.0);  // one engine cannot carry this
  ASSERT_TRUE(env.ok());
  const PerformabilityModel model = MakeModel(*env);
  auto report = model.Evaluate(Configuration({1, 2, 2}));
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->prob_saturated, 0.0);
  // The full configuration itself is stable.
  EXPECT_FALSE(std::isinf(report->full_config_waiting[1]));
}

TEST(PerformabilityTest, PenaltyPolicyDominatesConditional) {
  auto env = workflow::EpEnvironment(2.0);
  ASSERT_TRUE(env.ok());
  PerformabilityOptions penalty;
  penalty.saturation_policy = SaturationPolicy::kPenalty;
  penalty.penalty_waiting_time = 120.0;
  const PerformabilityModel conditional_model = MakeModel(*env);
  const PerformabilityModel penalty_model = MakeModel(*env, penalty);
  const Configuration config({1, 2, 2});
  auto conditional = conditional_model.Evaluate(config);
  auto with_penalty = penalty_model.Evaluate(config);
  ASSERT_TRUE(conditional.ok());
  ASSERT_TRUE(with_penalty.ok());
  EXPECT_GE(with_penalty->max_expected_waiting,
            conditional->max_expected_waiting);
}

TEST(PerformabilityTest, FullySaturatedConfigYieldsInfiniteWaiting) {
  auto env = workflow::EpEnvironment(5.0);
  ASSERT_TRUE(env.ok());
  const PerformabilityModel model = MakeModel(*env);
  auto report = model.Evaluate(Configuration({1, 1, 1}));
  ASSERT_TRUE(report.ok());
  // Even the full configuration cannot carry the load: the conditional
  // mean is over an empty set.
  EXPECT_TRUE(std::isinf(report->max_expected_waiting));
  EXPECT_GT(report->prob_saturated, 0.9);
}

TEST(PerformabilityTest, CommWaitingBarelyDegrades) {
  // The comm server fails monthly; its degraded states carry negligible
  // probability, so W^Y_comm stays within a hair of the full-config value.
  auto env = workflow::EpEnvironment(1.0);
  ASSERT_TRUE(env.ok());
  const PerformabilityModel model = MakeModel(*env);
  auto report = model.Evaluate(Configuration({2, 2, 2}));
  ASSERT_TRUE(report.ok());
  const double rel_increase =
      (report->expected_waiting[0] - report->full_config_waiting[0]) /
      report->full_config_waiting[0];
  EXPECT_LT(rel_increase, 0.01);
  // The app server (daily failures) degrades relatively more.
  const double app_increase =
      (report->expected_waiting[2] - report->full_config_waiting[2]) /
      report->full_config_waiting[2];
  EXPECT_GT(app_increase, rel_increase);
}

TEST(PerformabilityTest, InvalidConfigurationRejected) {
  auto env = workflow::EpEnvironment();
  ASSERT_TRUE(env.ok());
  const PerformabilityModel model = MakeModel(*env);
  EXPECT_FALSE(model.Evaluate(Configuration({1, 1})).ok());
  EXPECT_FALSE(model.Evaluate(Configuration({0, 1, 1})).ok());
}

TEST(PerformabilityTest, BenchmarkMixEvaluates) {
  auto env = workflow::BenchmarkEnvironment();
  ASSERT_TRUE(env.ok());
  const PerformabilityModel model = MakeModel(*env);
  auto report = model.Evaluate(Configuration({1, 1, 1, 2, 2}));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->expected_waiting.size(), 5u);
  EXPECT_GT(report->availability, 0.99);
}

}  // namespace
}  // namespace wfms::performability

// Quickstart: assess a distributed WFMS configuration and ask the tool
// for a minimum-cost recommendation.
//
// The scenario is the paper's running example: the electronic purchase
// (EP) workflow on three server types (communication server, workflow
// engine, application server) with the §5.2 failure/repair rates.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "configtool/tool.h"
#include "common/time_units.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;

  // 1. Load the workflow environment: charts, server types, load matrix,
  //    arrival rates (here: 1 EP workflow per minute).
  auto env = workflow::EpEnvironment(/*arrival_rate=*/1.0);
  if (!env.ok()) {
    std::fprintf(stderr, "environment: %s\n", env.status().ToString().c_str());
    return 1;
  }

  // 2. Build the configuration tool (performance + availability +
  //    performability models).
  auto tool = configtool::ConfigurationTool::Create(*env);
  if (!tool.ok()) {
    std::fprintf(stderr, "tool: %s\n", tool.status().ToString().c_str());
    return 1;
  }

  // 3. Assess a candidate configuration: 1 comm server, 2 engines,
  //    2 application servers.
  configtool::Goals goals;
  goals.max_waiting_time = 0.05;     // 3 seconds mean waiting
  goals.min_availability = 0.99999;  // ~5 min downtime/year
  const workflow::Configuration candidate({1, 2, 2});
  auto assessment = tool->Assess(candidate, goals);
  if (!assessment.ok()) {
    std::fprintf(stderr, "assess: %s\n",
                 assessment.status().ToString().c_str());
    return 1;
  }
  std::printf("Candidate %s: cost %.0f, availability %.6f, max W = %s -> %s\n",
              candidate.ToString().c_str(), assessment->cost,
              assessment->performability.availability,
              FormatMinutes(assessment->performability.max_expected_waiting)
                  .c_str(),
              assessment->Satisfies() ? "goals met" : "goals NOT met");

  // 4. Ask for the minimum-cost configuration meeting the goals (§7.2
  //    greedy heuristic).
  auto recommendation = tool->GreedyMinCost(goals);
  if (!recommendation.ok()) {
    std::fprintf(stderr, "search: %s\n",
                 recommendation.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n",
              tool->RenderRecommendation(*recommendation).c_str());
  return 0;
}

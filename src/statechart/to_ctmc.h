// The statechart -> CTMC mapping of §3.2 of the paper.
//
// Each chart state becomes one CTMC state; an artificial absorbing state
// s_A is appended, entered from the chart's final state with probability 1.
// A composite state (parallel subworkflows) is mapped hierarchically: its
// mean residence time is the maximum of the mean turnaround times of its
// subcharts (a conservative lower bound of the true residence, as the
// paper notes), where each subchart's turnaround is the first-passage time
// of its own recursively mapped CTMC.
#ifndef WFMS_STATECHART_TO_CTMC_H_
#define WFMS_STATECHART_TO_CTMC_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "markov/absorbing_ctmc.h"
#include "statechart/model.h"

namespace wfms::statechart {

struct MappedState {
  std::string name;
  /// Activity invoked in this state ("" for control/composite states).
  std::string activity;
  /// Subcharts embedded in this state (composite states only).
  std::vector<std::string> subcharts;
  /// Effective mean residence time used in the CTMC: the declared value
  /// for simple states, max of subchart turnarounds for composite states.
  double residence_time = 0.0;
  /// Erlang stages this state was refined into (1 unless the hierarchical
  /// phase-type decomposition expanded a composite state).
  int phase_stages = 1;
};

struct MappedWorkflow {
  /// CTMC with one state per chart state (in chart declaration order)
  /// followed by the artificial absorbing state s_A.
  markov::AbsorbingCtmc chain;
  /// Descriptors for the non-absorbing states, aligned with chain indices.
  std::vector<MappedState> states;
  /// Mean turnaround time of this chart (first-passage time to s_A).
  double turnaround_time = 0.0;
  /// Turnaround times of all (transitively) embedded subcharts.
  std::map<std::string, double> subchart_turnarounds;
  /// Hierarchical phase-type decomposition only: chart-state index that
  /// each chain state originates from (chain states outnumber chart states
  /// once composites expand into Erlang stages). Empty when no state was
  /// expanded — chain indices then align with `states` directly.
  std::vector<size_t> phase_origin;

  size_t num_activity_states() const { return states.size(); }
};

struct MappingOptions {
  /// States declared with zero residence (pure control states) receive
  /// this residence so the CTMC stays well-formed; negligible vs. real
  /// activity durations.
  double min_residence_time = 1e-9;
  /// Hierarchical decomposition of composite states into phase-type
  /// macro-states: each subchart is solved once for its turnaround *moments*
  /// (mean and SCV, memoized across composites referencing it), and the
  /// composite state — whose residence is far less variable than an
  /// exponential when its subworkflows have many stages — is refined into
  /// an Erlang-k macro-state matching the dominant subchart's SCV
  /// (markov::ErlangStagesForScv). Off by default: the flat exponential
  /// mapping of §3.2 is the paper's baseline and the regression contract.
  bool phase_type_composites = false;
  /// Stage cap per composite state for the phase-type refinement.
  int max_phase_stages = 8;
};

/// Maps `chart_name` (and, recursively, its subcharts) from the registry.
Result<MappedWorkflow> MapChartToCtmc(const ChartRegistry& registry,
                                      const std::string& chart_name,
                                      const MappingOptions& options = {});

/// Convenience: maps a standalone chart with no composite states.
Result<MappedWorkflow> MapChartToCtmc(const StateChart& chart,
                                      const MappingOptions& options = {});

}  // namespace wfms::statechart

#endif  // WFMS_STATECHART_TO_CTMC_H_

#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "avail/availability_model.h"
#include "perf/performance_model.h"
#include "statechart/parser.h"
#include "workflow/calibration.h"
#include "workflow/scenarios.h"

namespace wfms::sim {
namespace {

using workflow::Configuration;
using workflow::Environment;

SimulationResult RunSim(const Environment& env, SimulationOptions options) {
  auto sim = Simulator::Create(env, std::move(options));
  EXPECT_TRUE(sim.ok()) << sim.status();
  auto result = sim->Run();
  EXPECT_TRUE(result.ok()) << result.status();
  return *std::move(result);
}

TEST(SimulatorTest, CreateValidations) {
  auto env = workflow::EpEnvironment();
  ASSERT_TRUE(env.ok());
  SimulationOptions bad;
  bad.config = Configuration({1, 1});  // wrong arity
  EXPECT_FALSE(Simulator::Create(*env, bad).ok());
  SimulationOptions bad_times;
  bad_times.config = Configuration({1, 1, 1});
  bad_times.duration = 10.0;
  bad_times.warmup = 20.0;
  EXPECT_FALSE(Simulator::Create(*env, bad_times).ok());
}

TEST(SimulatorTest, DeterministicForSeed) {
  auto env = workflow::EpEnvironment(0.2);
  ASSERT_TRUE(env.ok());
  SimulationOptions options;
  options.config = Configuration({1, 1, 1});
  options.duration = 3000.0;
  options.warmup = 500.0;
  options.seed = 99;
  const SimulationResult a = RunSim(*env, options);
  const SimulationResult b = RunSim(*env, options);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.servers[1].waiting_time.mean(),
                   b.servers[1].waiting_time.mean());
  EXPECT_EQ(a.workflows.at("EP").completed, b.workflows.at("EP").completed);
}

TEST(SimulatorTest, SimpleLoopTurnaroundMatchesClosedForm) {
  // One workflow: A (H=2) -> B (H=3), B loops back to A with p=0.25.
  // R = (2+3)/0.75 = 20/3.
  Environment env;
  auto charts = statechart::ParseCharts(R"(
chart L
  state A activity=a residence=2
  state B activity=b residence=3
  state Done residence=0.1
  initial A
  final Done
  trans A -> B prob=1
  trans B -> A prob=0.25
  trans B -> Done prob=0.75
end
)");
  ASSERT_TRUE(charts.ok());
  env.charts = *std::move(charts);
  ASSERT_TRUE(env.servers
                  .AddServerType({"engine", workflow::ServerKind::kWorkflowEngine,
                                  queueing::ExponentialService(0.01), 1e-9,
                                  1.0})
                  .ok());
  ASSERT_TRUE(env.loads.SetLoad("a", {1}).ok());
  ASSERT_TRUE(env.loads.SetLoad("b", {1}).ok());
  env.workflows.push_back({"L", "L", 0.5});
  ASSERT_TRUE(env.Validate().ok());

  SimulationOptions options;
  options.config = Configuration({1});
  options.duration = 60000.0;
  options.warmup = 2000.0;
  options.enable_failures = false;
  const SimulationResult result = RunSim(env, options);
  const auto& wf = result.workflows.at("L");
  EXPECT_GT(wf.turnaround.count(), 10000);
  const double expected = (2.0 + 3.0) / 0.75 + 0.1;
  EXPECT_NEAR(wf.turnaround.mean(), expected, 0.05 * expected);
}

TEST(SimulatorTest, EpTurnaroundMatchesAnalyticModel) {
  auto env = workflow::EpEnvironment(0.2);
  ASSERT_TRUE(env.ok());
  auto model = perf::PerformanceModel::Create(*env);
  ASSERT_TRUE(model.ok());
  const double analytic = model->workflows()[0].turnaround_time;

  SimulationOptions options;
  options.config = Configuration({1, 1, 1});
  options.duration = 150000.0;
  options.warmup = 20000.0;
  options.enable_failures = false;
  options.seed = 3;
  const SimulationResult result = RunSim(*env, options);
  const auto& wf = result.workflows.at("EP");
  EXPECT_GT(wf.turnaround.count(), 5000);
  // The analytic residence of the parallel Shipment state is the max of
  // mean subworkflow turnarounds — a slight *underestimate* of
  // E[max(...)], so the simulated mean dominates but stays close.
  EXPECT_GE(wf.turnaround.mean(), analytic * 0.97);
  EXPECT_LE(wf.turnaround.mean(), analytic * 1.10);
}

TEST(SimulatorTest, UtilizationMatchesAnalyticLoad) {
  auto env = workflow::EpEnvironment(0.5);
  ASSERT_TRUE(env.ok());
  auto model = perf::PerformanceModel::Create(*env);
  ASSERT_TRUE(model.ok());
  auto analytic = model->EvaluateWaitingTimes(Configuration({1, 1, 1}));
  ASSERT_TRUE(analytic.ok());

  SimulationOptions options;
  options.config = Configuration({1, 1, 1});
  options.duration = 100000.0;
  options.warmup = 20000.0;
  options.enable_failures = false;
  options.seed = 7;
  const SimulationResult result = RunSim(*env, options);
  for (size_t x = 0; x < 3; ++x) {
    EXPECT_NEAR(result.utilization[x], analytic->servers[x].utilization,
                0.1 * analytic->servers[x].utilization + 0.01)
        << "server type " << x;
  }
}

TEST(SimulatorTest, WaitingTimesTrackMg1Predictions) {
  auto env = workflow::EpEnvironment(0.5);
  ASSERT_TRUE(env.ok());
  auto model = perf::PerformanceModel::Create(*env);
  ASSERT_TRUE(model.ok());
  auto analytic = model->EvaluateWaitingTimes(Configuration({1, 1, 1}));
  ASSERT_TRUE(analytic.ok());

  SimulationOptions options;
  options.config = Configuration({1, 1, 1});
  options.duration = 150000.0;
  options.warmup = 20000.0;
  options.enable_failures = false;
  options.seed = 5;
  const SimulationResult result = RunSim(*env, options);
  // Requests of one activity arrive as a burst within the activity's
  // residence, not as a smooth Poisson stream, so the M/G/1 prediction is
  // a *lower bound*; with Fig.-1-style batches of 2-3 requests the
  // observed mean stays within ~2.5x of it (see EXPERIMENTS.md E5). The
  // pure-Poisson validation of the M/G/1 formulas lives in
  // server_pool_test.cc.
  for (size_t x = 0; x < 3; ++x) {
    const double predicted = analytic->servers[x].mean_waiting_time;
    const double observed = result.servers[x].waiting_time.mean();
    EXPECT_GT(observed, 0.8 * predicted) << "server type " << x;
    EXPECT_LT(observed, 2.5 * predicted + 1e-3) << "server type " << x;
  }
}

TEST(SimulatorTest, ObservedAvailabilityMatchesCtmc) {
  // Boost failure rates so the estimate converges in reasonable sim time:
  // MTTF 200 min, MTTR 10 min per type.
  auto env = workflow::EpEnvironment(0.05);
  ASSERT_TRUE(env.ok());
  for (size_t x = 0; x < env->servers.size(); ++x) {
    env->servers.mutable_type(x).failure_rate = 1.0 / 200.0;
    env->servers.mutable_type(x).repair_rate = 1.0 / 10.0;
  }
  auto model = avail::AvailabilityModel::Create(env->servers);
  ASSERT_TRUE(model.ok());
  auto prediction = model->Evaluate(Configuration({1, 1, 1}));
  ASSERT_TRUE(prediction.ok());

  SimulationOptions options;
  options.config = Configuration({1, 1, 1});
  options.duration = 400000.0;
  options.warmup = 10000.0;
  options.seed = 11;
  const SimulationResult result = RunSim(*env, options);
  EXPECT_NEAR(result.observed_availability, prediction->availability, 0.01);
  // Replication visibly improves observed availability.
  SimulationOptions replicated = options;
  replicated.config = Configuration({2, 2, 2});
  const SimulationResult result2 = RunSim(*env, replicated);
  EXPECT_GT(result2.observed_availability, result.observed_availability);
}

TEST(SimulatorTest, AuditTrailFeedsCalibration) {
  auto env = workflow::EpEnvironment(0.3);
  ASSERT_TRUE(env.ok());
  SimulationOptions options;
  options.config = Configuration({1, 1, 1});
  options.duration = 30000.0;
  options.warmup = 1000.0;
  options.enable_failures = false;
  options.record_audit_trail = true;
  const SimulationResult result = RunSim(*env, options);
  ASSERT_GT(result.trail.state_visits().size(), 1000u);
  ASSERT_GT(result.trail.services().size(), 1000u);
  ASSERT_GT(result.trail.arrivals().size(), 1000u);

  auto calibrated = workflow::CalibrateEnvironment(*env, result.trail);
  ASSERT_TRUE(calibrated.ok()) << calibrated.status();
  // Re-estimated arrival rate close to the configured one.
  EXPECT_NEAR(calibrated->workflows[0].arrival_rate, 0.3, 0.03);
  // Re-estimated NewOrder residence close to the designed mean of 5.
  const auto* ep = *calibrated->charts.GetChart("EP");
  EXPECT_NEAR(ep->state(*ep->StateIndex("NewOrder")).residence_time, 5.0,
              0.5);
  // Re-estimated branch probability NewOrder -> CreditCardCheck ~ 0.5.
  const auto outgoing = ep->OutgoingTransitions("NewOrder");
  ASSERT_EQ(outgoing.size(), 2u);
  EXPECT_NEAR(outgoing[0]->probability, 0.5, 0.05);
}

TEST(SimulatorTest, PerInstanceBindingWaitsLongerThanRoundRobin) {
  // The paper's per-instance hashed assignment keeps each server's
  // arrival stream bursty (whole instances stick to one server), so waits
  // exceed per-request round-robin, which splits bursts — and sit closer
  // to the analytic per-replica M/G/1 model.
  auto env = workflow::EpEnvironment(1.0);
  ASSERT_TRUE(env.ok());
  double waits[2] = {0.0, 0.0};
  for (int policy = 0; policy < 2; ++policy) {
    SimulationOptions options;
    options.config = Configuration({1, 2, 2});
    options.dispatch = policy == 0 ? DispatchPolicy::kRoundRobin
                                   : DispatchPolicy::kPerInstanceBinding;
    options.duration = 60000.0;
    options.warmup = 8000.0;
    options.enable_failures = false;
    options.seed = 9;
    const SimulationResult result = RunSim(*env, options);
    waits[policy] = result.servers[2].waiting_time.mean();
    // Work completes under both policies.
    EXPECT_GT(result.servers[2].completed_requests, 100000);
  }
  EXPECT_GT(waits[1], waits[0]);
}

TEST(SimulatorTest, BindingSurvivesFailures) {
  auto env = workflow::EpEnvironment(0.5);
  ASSERT_TRUE(env.ok());
  for (size_t x = 0; x < env->servers.size(); ++x) {
    env->servers.mutable_type(x).failure_rate = 1.0 / 300.0;
  }
  SimulationOptions options;
  options.config = Configuration({2, 2, 2});
  options.dispatch = DispatchPolicy::kPerInstanceBinding;
  options.duration = 50000.0;
  options.warmup = 5000.0;
  options.seed = 13;
  const SimulationResult result = RunSim(*env, options);
  // Requests bound to failed servers are probed to survivors; the
  // workflow stream keeps completing.
  EXPECT_GT(result.workflows.at("EP").completed, 20000);
  EXPECT_GT(result.observed_availability, 0.95);
}

TEST(SimulatorTest, DegradedModeRaisesObservedWaiting) {
  // With aggressive engine failures, observed waiting at the engine
  // exceeds the failure-free run.
  auto env = workflow::EpEnvironment(1.0);
  ASSERT_TRUE(env.ok());
  env->servers.mutable_type(1).failure_rate = 1.0 / 100.0;
  env->servers.mutable_type(1).repair_rate = 1.0 / 25.0;

  SimulationOptions no_failures;
  no_failures.config = Configuration({1, 2, 2});
  no_failures.duration = 80000.0;
  no_failures.warmup = 5000.0;
  no_failures.enable_failures = false;
  no_failures.seed = 21;
  SimulationOptions with_failures = no_failures;
  with_failures.enable_failures = true;

  auto base = RunSim(*env, no_failures);
  auto degraded = RunSim(*env, with_failures);
  EXPECT_GT(degraded.servers[1].waiting_time.mean(),
            base.servers[1].waiting_time.mean());
}

}  // namespace
}  // namespace wfms::sim

// E3 — §4.2 load model: expected service requests r_{x,t} per workflow
// instance and server type, computed with the paper's uniformization /
// taboo-probability Markov reward model and cross-checked against the
// exact embedded-chain fundamental-matrix solution. Also reports the
// paper's z_max (steps to 99% absorption) and the truncation sensitivity.

#include <cmath>
#include <cstdio>

#include "markov/transient.h"
#include "perf/workflow_analysis.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;
  auto env = workflow::BenchmarkEnvironment();
  if (!env.ok()) return 1;

  std::printf("E3: expected service requests per workflow instance "
              "(Markov reward model, §4.2)\n\n");
  std::printf("%-8s %-10s %12s %12s %10s\n", "type", "server", "reward",
              "embedded", "rel.diff");
  for (const auto& spec : env->workflows) {
    perf::AnalysisOptions reward_opts;
    reward_opts.method = perf::LoadMethod::kMarkovReward;
    perf::AnalysisOptions exact_opts;
    exact_opts.method = perf::LoadMethod::kEmbeddedChain;
    auto reward = perf::AnalyzeWorkflow(*env, spec, reward_opts);
    auto exact = perf::AnalyzeWorkflow(*env, spec, exact_opts);
    if (!reward.ok() || !exact.ok()) {
      std::fprintf(stderr, "analysis failed\n");
      return 1;
    }
    for (size_t x = 0; x < env->num_server_types(); ++x) {
      const double a = reward->expected_requests[x];
      const double b = exact->expected_requests[x];
      std::printf("%-8s %-10s %12.4f %12.4f %10.2e\n", spec.name.c_str(),
                  env->servers.type(x).name.c_str(), a, b,
                  b > 0 ? std::fabs(a - b) / b : 0.0);
    }
  }

  // z_max (§4.2.1): steps until the chain is absorbed with 99 percent
  // probability, per workflow type.
  std::printf("\nz_max (99%% absorption) and truncation error:\n");
  for (const auto& spec : env->workflows) {
    auto analysis = perf::AnalyzeWorkflow(*env, spec);
    if (!analysis.ok()) return 1;
    auto z99 = markov::AbsorptionStepBound(analysis->chain, 0.99);
    auto z999 = markov::AbsorptionStepBound(analysis->chain, 0.999);
    if (!z99.ok() || !z999.ok()) return 1;
    std::printf("  %-8s z_max(0.99) = %3d, z_max(0.999) = %3d\n",
                spec.name.c_str(), *z99, *z999);
    // Comm-server reward at truncated vs tight residual thresholds (the
    // comm server is loaded by every workflow type).
    linalg::Vector rewards(analysis->chain.num_states(), 0.0);
    for (size_t s = 0; s < analysis->states.size(); ++s) {
      rewards[s] = analysis->state_loads.At(0, s);
    }
    markov::RewardOptions loose;
    loose.residual_mass_threshold = 0.01;  // the paper's 99% suggestion
    auto loose_r =
        markov::ExpectedRewardUntilAbsorption(analysis->chain, rewards, loose);
    markov::RewardOptions tight;
    tight.residual_mass_threshold = 1e-12;
    auto tight_r =
        markov::ExpectedRewardUntilAbsorption(analysis->chain, rewards, tight);
    if (loose_r.ok() && tight_r.ok() && tight_r->expected_reward > 0) {
      std::printf(
          "           truncation at 99%%: %.4f vs exact %.4f "
          "(rel. err. %.2e, steps %d vs %d)\n",
          loose_r->expected_reward, tight_r->expected_reward,
          std::fabs(loose_r->expected_reward - tight_r->expected_reward) /
              tight_r->expected_reward,
          loose_r->steps, tight_r->steps);
    }
  }
  return 0;
}

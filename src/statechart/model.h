// Harel-style state charts as the workflow specification language (§3.1 of
// the paper): finite state machines with ECA-rule transitions, nested
// states (subworkflows), and orthogonal components (parallel subworkflows).
//
// A chart state is either *simple* — it corresponds to one activity with an
// estimated mean residence time — or *composite* — it embeds one or more
// subcharts that run in parallel (orthogonal components). Transitions carry
// an E[C]/A rule plus the designer-estimated branching probability used by
// the CTMC mapping of §3.2.
#ifndef WFMS_STATECHART_MODEL_H_
#define WFMS_STATECHART_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace wfms::statechart {

/// An E[C]/A rule: fire on `event` when `condition` holds, executing
/// `actions`. Any component may be empty. Actions use the paper's notation:
/// st!(activity) starts an activity, fs!(c)/tr!(c) set a condition variable
/// to false/true, ev!(e) raises an event.
struct EcaRule {
  std::string event;
  std::string condition;
  std::vector<std::string> actions;

  bool empty() const {
    return event.empty() && condition.empty() && actions.empty();
  }
  /// Renders as "E [C] / a1; a2".
  std::string ToString() const;
};

enum class StateKind {
  kSimple,     // one activity (or an idle state with no activity)
  kComposite,  // nested subcharts, parallel when more than one
};

struct ChartState {
  std::string name;
  StateKind kind = StateKind::kSimple;
  /// Activity type invoked while in this state; empty for pure control
  /// states and for composite states.
  std::string activity;
  /// Estimated mean residence time (model time units). For composite
  /// states this field is ignored — the CTMC mapping derives the residence
  /// from the subcharts' turnaround times.
  double residence_time = 0.0;
  /// Names of embedded subcharts (composite states only).
  std::vector<std::string> subcharts;
};

struct Transition {
  std::string from;
  std::string to;
  /// Branching probability estimated by the workflow designer or calibrated
  /// from audit trails (§3.2). Outgoing probabilities of a state must sum
  /// to 1.
  double probability = 1.0;
  EcaRule rule;
};

/// A validated state chart. Construct via ChartBuilder (builder.h) or the
/// DSL parser (parser.h).
class StateChart {
 public:
  const std::string& name() const { return name_; }
  const std::vector<ChartState>& states() const { return states_; }
  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::string& initial_state() const { return initial_; }
  const std::string& final_state() const { return final_; }

  size_t num_states() const { return states_.size(); }
  Result<size_t> StateIndex(const std::string& name) const;
  const ChartState& state(size_t i) const { return states_[i]; }

  /// Outgoing transitions of a state, in declaration order.
  std::vector<const Transition*> OutgoingTransitions(
      const std::string& state) const;

  /// Serializes to the textual DSL accepted by the parser (round-trips).
  std::string ToDsl() const;

 private:
  friend class ChartBuilder;
  StateChart() = default;

  std::string name_;
  std::vector<ChartState> states_;
  std::vector<Transition> transitions_;
  std::map<std::string, size_t> index_;
  std::string initial_;
  std::string final_;
};

/// A named collection of charts; composite states reference subcharts by
/// name within a registry.
class ChartRegistry {
 public:
  Status AddChart(StateChart chart);
  Result<const StateChart*> GetChart(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> ChartNames() const;
  size_t size() const { return charts_.size(); }

  /// Checks that every referenced subchart exists and that the nesting
  /// relation is acyclic.
  Status ValidateReferences() const;

  /// Serializes all charts to DSL text.
  std::string ToDsl() const;

 private:
  std::map<std::string, StateChart> charts_;
};

}  // namespace wfms::statechart

#endif  // WFMS_STATECHART_MODEL_H_

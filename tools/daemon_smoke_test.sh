#!/usr/bin/env bash
# End-to-end smoke of the wfmsd daemon surface:
#   1. boot on an ephemeral port (the stdout handshake reports it);
#   2. liveness + remote commands through `wfmsctl --connect`;
#   3. a load-driver burst of hundreds of concurrent pipelined requests —
#      exit 0 requires every request terminated in exactly one protocol
#      disposition and the client tallies matched the server counters;
#   4. hostile input: malformed JSON answers `error` without killing the
#      connection, an oversized line answers `error` and closes it, a
#      mid-stream disconnect leaves the daemon serving others;
#   5. live GET /metrics + /metrics.json scrapes, the JSON one validated
#      against the checked-in metrics schema;
#   6. a GET /debug/requests flight-recorder scrape, validated against
#      tools/schemas/flight_recorder_schema.json, with the smoke traffic
#      accounted for and the ?n= cap honored;
#   7. SIGTERM drain: a request in flight when the signal lands is still
#      answered, the daemon exits 0 and reports a clean drain.
#
# usage: daemon_smoke_test.sh <wfmsd> <wfmsctl> <load_driver> <workdir>
set -u

WFMSD="$1"
WFMSCTL="$2"
LOAD_DRIVER="$3"
WORKDIR="$4/daemon_smoke_test"
TOOLS_DIR="$(cd "$(dirname "$0")" && pwd)"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

if ! command -v python3 > /dev/null; then
  echo "SKIP: python3 not available" >&2
  exit 0
fi

DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2> /dev/null; then
    kill -9 "$DAEMON_PID" 2> /dev/null
  fi
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*"
  echo "--- daemon stderr ---"
  cat "$WORKDIR/wfmsd.err" 2> /dev/null
  exit 1
}

echo "== boot"
"$WFMSD" --port 0 --max-queue 256 \
  > "$WORKDIR/wfmsd.out" 2> "$WORKDIR/wfmsd.err" &
DAEMON_PID=$!
PORT=""
for _ in $(seq 100); do
  PORT=$(sed -n 's/^wfmsd: listening on .*:\([0-9]*\)$/\1/p' \
    "$WORKDIR/wfmsd.out" 2> /dev/null)
  [ -n "$PORT" ] && break
  kill -0 "$DAEMON_PID" 2> /dev/null || fail "daemon died during startup"
  sleep 0.1
done
[ -n "$PORT" ] || fail "no listening handshake on stdout"

echo "== wfmsctl --connect"
"$WFMSCTL" ping --connect "127.0.0.1:$PORT" > /dev/null \
  || fail "ping exited $?"
"$WFMSCTL" assess --connect "127.0.0.1:$PORT" --config 2,2,3 \
  --max-wait 0.05 --min-avail 0.99 > "$WORKDIR/assess.json" \
  || fail "remote assess exited $?"
grep -q '"satisfies":true' "$WORKDIR/assess.json" \
  || fail "remote assess result lacks satisfies:true"

echo "== load burst"
"$LOAD_DRIVER" --port "$PORT" --requests 600 --connections 20 \
  --pipeline 10 --out "$WORKDIR/bench.json" > "$WORKDIR/driver.out" \
  || fail "load driver exited $? (invariant violation or transport loss)"
grep -q '"invariants_ok":true' "$WORKDIR/bench.json" \
  || fail "driver report does not assert invariants_ok"

echo "== hostile input"
python3 - "$PORT" << 'EOF' || exit 1
import json, socket, sys

port = int(sys.argv[1])

def connect():
    s = socket.create_connection(("127.0.0.1", port), timeout=30)
    return s, s.makefile("r")

def fail(msg):
    print("FAIL: " + msg)
    sys.exit(1)

# Malformed JSON answers `error`; the connection survives and still
# serves a well-formed request afterwards.
s, r = connect()
s.sendall(b"this is not json\n")
resp = json.loads(r.readline())
if resp.get("status") != "error":
    fail("malformed line answered %r" % resp.get("status"))
s.sendall(b'{"id":"after","op":"ping"}\n')
resp = json.loads(r.readline())
if resp.get("status") != "completed" or resp.get("id") != "after":
    fail("connection unusable after a malformed line: %r" % resp)
s.close()

# An oversized line (> 1 MiB without a newline) answers `error` once and
# closes the connection (it cannot be resynchronized).
s, r = connect()
s.sendall(b"x" * (1 << 21))
resp = json.loads(r.readline())
if resp.get("status") != "error":
    fail("oversized line answered %r" % resp.get("status"))
if r.readline() != "":
    fail("connection not closed after an oversized line")
s.close()

# A mid-stream disconnect (half a request, then a hard close) must not
# take the daemon down.
s, _ = connect()
s.sendall(b'{"id":"torn","op":"ass')
s.close()

s, r = connect()
s.sendall(b'{"id":"alive","op":"ping"}\n')
resp = json.loads(r.readline())
if resp.get("status") != "completed":
    fail("daemon unhealthy after a mid-stream disconnect: %r" % resp)
s.close()
print("hostile input handled")
EOF
[ $? -eq 0 ] || fail "hostile-input checks failed"

echo "== metrics scrapes"
python3 - "$PORT" "$WORKDIR" << 'EOF' || exit 1
import socket, sys

port, workdir = int(sys.argv[1]), sys.argv[2]

def scrape(path):
    s = socket.create_connection(("127.0.0.1", port), timeout=30)
    s.sendall(("GET %s HTTP/1.0\r\n\r\n" % path).encode())
    data = b""
    while True:
        chunk = s.recv(65536)
        if not chunk:
            break
        data += chunk
    s.close()
    head, _, body = data.partition(b"\r\n\r\n")
    if not head.startswith(b"HTTP/1.1 200"):
        print("FAIL: GET %s answered %s" % (path, head.split(b"\r\n")[0]))
        sys.exit(1)
    return body

body = scrape("/metrics")
if b"wfms_service_requests_total" not in body:
    print("FAIL: /metrics lacks wfms_service_requests_total")
    sys.exit(1)
with open(workdir + "/metrics.json", "wb") as f:
    f.write(scrape("/metrics.json"))
if scrape("/healthz").strip() != b"ok":
    print("FAIL: /healthz not ok")
    sys.exit(1)
EOF
[ $? -eq 0 ] || fail "metrics scrape failed"
python3 "$TOOLS_DIR/check_observability.py" validate \
  --schema "$TOOLS_DIR/schemas/metrics_schema.json" \
  "$WORKDIR/metrics.json" || fail "live /metrics.json fails the schema"

echo "== flight recorder scrape"
python3 - "$PORT" "$WORKDIR" << 'EOF' || exit 1
import json, socket, sys

port, workdir = int(sys.argv[1]), sys.argv[2]

def scrape(path):
    s = socket.create_connection(("127.0.0.1", port), timeout=30)
    s.sendall(("GET %s HTTP/1.0\r\n\r\n" % path).encode())
    data = b""
    while True:
        chunk = s.recv(65536)
        if not chunk:
            break
        data += chunk
    s.close()
    head, _, body = data.partition(b"\r\n\r\n")
    if not head.startswith(b"HTTP/1.1 200"):
        print("FAIL: GET %s answered %s" % (path, head.split(b"\r\n")[0]))
        sys.exit(1)
    return body

body = scrape("/debug/requests")
with open(workdir + "/requests.json", "wb") as f:
    f.write(body)
doc = json.loads(body)
# The smoke traffic above (ping, assess, load burst, hostile lines) must
# all have landed in the recorder.
if doc["total_recorded"] < 600:
    print("FAIL: only %d requests recorded" % doc["total_recorded"])
    sys.exit(1)
ops = {r["op"] for r in doc["records"]}
if "assess" not in ops:
    print("FAIL: no assess record retained: %r" % ops)
    sys.exit(1)
capped = json.loads(scrape("/debug/requests?n=5"))
if len(capped["records"]) != 5:
    print("FAIL: ?n=5 returned %d records" % len(capped["records"]))
    sys.exit(1)
EOF
[ $? -eq 0 ] || fail "flight recorder scrape failed"
python3 "$TOOLS_DIR/check_observability.py" validate \
  --schema "$TOOLS_DIR/schemas/flight_recorder_schema.json" \
  "$WORKDIR/requests.json" || fail "live /debug/requests fails the schema"

echo "== SIGTERM drain with a request in flight"
python3 - "$PORT" "$DAEMON_PID" << 'EOF' || exit 1
import json, os, signal, socket, sys

port, pid = int(sys.argv[1]), int(sys.argv[2])
s = socket.create_connection(("127.0.0.1", port), timeout=60)
r = s.makefile("r")
# An uncached assessment, so the answer is genuinely computed while the
# daemon is draining.
s.sendall(json.dumps({
    "id": "drain", "op": "assess", "scenario": "ep", "config": [3, 1, 3],
    "max_wait": 0.05, "min_avail": 0.99,
}).encode() + b"\n")
os.kill(pid, signal.SIGTERM)
resp = json.loads(r.readline())
if resp.get("id") != "drain" or resp.get("status") not in (
        "completed", "degraded"):
    print("FAIL: in-flight request lost by the drain: %r" % resp)
    sys.exit(1)
print("drained request answered: " + resp["status"])
EOF
[ $? -eq 0 ] || fail "drain lost an in-flight request"

wait "$DAEMON_PID"
rc=$?
DAEMON_PID=""
[ "$rc" -eq 0 ] || fail "daemon exited $rc after SIGTERM (want 0)"
grep -q "drained cleanly" "$WORKDIR/wfmsd.err" \
  || fail "daemon did not report a clean drain"

echo "PASS"

#include "common/status.h"

namespace wfms {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string;
  return *kEmpty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNumericError:
      return "NumericError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  return ok() ? EmptyString() : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(state_->code, context + ": " + state_->msg);
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace wfms

// E10 — §7.1 calibration loop: simulate the EP workflow, feed audit
// trails of growing length into the calibration component, and measure
// how quickly the re-estimated model converges to the ground truth
// (turnaround prediction error and branch-probability error vs trail
// length).

#include <cmath>
#include <cstdio>

#include "perf/performance_model.h"
#include "sim/simulator.h"
#include "workflow/calibration.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;
  auto truth = workflow::EpEnvironment(/*arrival_rate=*/0.5);
  if (!truth.ok()) return 1;

  // The "designed" model starts with wrong guesses: every residence halved
  // and the dunning loop underestimated — calibration must recover.
  auto designed = workflow::EpEnvironment(0.5);
  if (!designed.ok()) return 1;

  auto truth_model = perf::PerformanceModel::Create(*truth);
  if (!truth_model.ok()) return 1;
  const double true_turnaround = truth_model->workflows()[0].turnaround_time;

  std::printf("E10: calibration quality vs audit-trail length "
              "(ground-truth R_EP = %.1f min)\n\n",
              true_turnaround);
  std::printf("%12s %10s %12s %14s %12s\n", "sim minutes", "visits",
              "R_est [min]", "rel.error", "p(loop est)");

  for (double horizon : {500.0, 2000.0, 8000.0, 32000.0, 128000.0}) {
    sim::SimulationOptions options;
    options.config = workflow::Configuration({1, 1, 1});
    options.duration = horizon;
    options.warmup = 0.0;
    options.record_audit_trail = true;
    options.enable_failures = false;
    options.seed = 4242;
    auto simulator = sim::Simulator::Create(*truth, options);
    if (!simulator.ok()) return 1;
    auto observed = simulator->Run();
    if (!observed.ok()) return 1;

    workflow::CalibrationOptions cal_options;
    cal_options.min_observations = 5;
    auto calibrated = workflow::CalibrateEnvironment(*designed,
                                                     observed->trail,
                                                     cal_options);
    if (!calibrated.ok()) {
      std::fprintf(stderr, "%s\n", calibrated.status().ToString().c_str());
      return 1;
    }
    auto model = perf::PerformanceModel::Create(*calibrated);
    if (!model.ok()) return 1;
    const double estimated = model->workflows()[0].turnaround_time;
    const auto* ep = *calibrated->charts.GetChart("EP");
    double loop_p = 0.0;
    for (const auto* t : ep->OutgoingTransitions("CollectPayment")) {
      if (t->to == "SendInvoice") loop_p = t->probability;
    }
    std::printf("%12.0f %10zu %12.1f %13.2f%% %12.3f\n", horizon,
                observed->trail.state_visits().size(), estimated,
                100.0 * std::fabs(estimated - true_turnaround) /
                    true_turnaround,
                loop_p);
  }
  std::printf("\nexpected shape: relative error falls roughly as "
              "1/sqrt(trail length); the loop probability converges to "
              "0.2.\n");
  return 0;
}

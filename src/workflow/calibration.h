// The calibration component of the configuration tool (§7.1): statistics
// from online monitoring (audit trails) turn into updated model inputs —
// transition probabilities and residence times per chart state, service
// time moments per server type, and arrival rates per workflow type.
#ifndef WFMS_WORKFLOW_CALIBRATION_H_
#define WFMS_WORKFLOW_CALIBRATION_H_

#include <map>
#include <string>

#include "common/result.h"
#include "workflow/audit_trail.h"
#include "workflow/environment.h"

namespace wfms::workflow {

struct CalibrationOptions {
  /// A state (or transition source) keeps its designed value when fewer
  /// than this many observations exist — prevents wild estimates from
  /// thin data.
  int min_observations = 10;
};

struct CalibrationReport {
  int states_recalibrated = 0;
  int states_kept = 0;
  int server_types_recalibrated = 0;
  int workflow_types_recalibrated = 0;
};

/// Re-estimates one chart from the trail: every state with enough observed
/// visits gets its mean residence replaced by the sample mean and its
/// outgoing probabilities by observed transition frequencies; structure and
/// ECA annotations are preserved. Transitions never observed keep a zero
/// count and are dropped from renormalization only if some sibling was
/// observed.
Result<statechart::StateChart> CalibrateChart(
    const statechart::StateChart& chart, const AuditTrail& trail,
    const CalibrationOptions& options = {});

/// Applies CalibrateChart to every chart of the environment, replaces
/// service-time moments of server types with observed moments, and
/// re-estimates arrival rates from arrival records (count / observation
/// window). Returns the calibrated environment; the input is untouched.
Result<Environment> CalibrateEnvironment(
    const Environment& env, const AuditTrail& trail,
    const CalibrationOptions& options = {},
    CalibrationReport* report = nullptr);

}  // namespace wfms::workflow

#endif  // WFMS_WORKFLOW_CALIBRATION_H_

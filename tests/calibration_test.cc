#include "workflow/calibration.h"

#include <gtest/gtest.h>

#include "statechart/parser.h"
#include "workflow/audit_trail.h"
#include "workflow/scenarios.h"

namespace wfms::workflow {
namespace {

statechart::StateChart MakeLoopChart() {
  auto chart = statechart::ParseSingleChart(R"(
chart Loop
  state A residence=10
  state B residence=20
  state Done residence=1
  initial A
  final Done
  trans A -> B prob=0.5
  trans A -> Done prob=0.5
  trans B -> A prob=1
end
)");
  EXPECT_TRUE(chart.ok()) << chart.status();
  return *std::move(chart);
}

/// Emits `n` visits of state `state` with the given residence and next
/// state, at distinct instances.
void EmitVisits(AuditTrail* trail, const std::string& chart,
                const std::string& state, double residence,
                const std::string& next, int n) {
  for (int i = 0; i < n; ++i) {
    trail->RecordStateVisit(
        {chart, i, state, 100.0 * i, 100.0 * i + residence, next});
  }
}

TEST(AuditTrailTest, SerializeRoundTrip) {
  AuditTrail trail;
  trail.RecordStateVisit({"EP", 7, "NewOrder", 1.5, 6.25, "Shipment"});
  trail.RecordStateVisit({"EP", 7, "Shipment", 6.25, 100.0, ""});
  trail.RecordService({2, 0.048});
  trail.RecordArrival({"EP", 1.5});
  auto parsed = AuditTrail::Deserialize(trail.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->state_visits().size(), 2u);
  ASSERT_EQ(parsed->services().size(), 1u);
  ASSERT_EQ(parsed->arrivals().size(), 1u);
  EXPECT_EQ(parsed->state_visits()[0].state, "NewOrder");
  EXPECT_DOUBLE_EQ(parsed->state_visits()[0].leave_time, 6.25);
  EXPECT_EQ(parsed->state_visits()[1].next_state, "");
  EXPECT_EQ(parsed->services()[0].server_type, 2u);
  EXPECT_DOUBLE_EQ(parsed->arrivals()[0].arrival_time, 1.5);
}

TEST(AuditTrailTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(AuditTrail::Deserialize("nonsense,1,2\n").ok());
  EXPECT_FALSE(AuditTrail::Deserialize("visit,EP,notanumber,A,0,1,B\n").ok());
  EXPECT_FALSE(AuditTrail::Deserialize("service,1\n").ok());
  EXPECT_TRUE(AuditTrail::Deserialize("").ok());
}

TEST(CalibrateChartTest, UpdatesResidenceWithEnoughSamples) {
  const statechart::StateChart chart = MakeLoopChart();
  AuditTrail trail;
  EmitVisits(&trail, "Loop", "A", 42.0, "Done", 50);
  auto calibrated = CalibrateChart(chart, trail);
  ASSERT_TRUE(calibrated.ok()) << calibrated.status();
  EXPECT_DOUBLE_EQ(calibrated->state(*calibrated->StateIndex("A")).residence_time,
                   42.0);
  // B was never observed: designed value kept.
  EXPECT_DOUBLE_EQ(calibrated->state(*calibrated->StateIndex("B")).residence_time,
                   20.0);
}

TEST(CalibrateChartTest, KeepsDesignValuesBelowMinObservations) {
  const statechart::StateChart chart = MakeLoopChart();
  AuditTrail trail;
  EmitVisits(&trail, "Loop", "A", 42.0, "Done", 3);
  CalibrationOptions options;
  options.min_observations = 10;
  auto calibrated = CalibrateChart(chart, trail, options);
  ASSERT_TRUE(calibrated.ok());
  EXPECT_DOUBLE_EQ(
      calibrated->state(*calibrated->StateIndex("A")).residence_time, 10.0);
}

TEST(CalibrateChartTest, UpdatesTransitionProbabilities) {
  const statechart::StateChart chart = MakeLoopChart();
  AuditTrail trail;
  // Observe A -> B three times as often as A -> Done.
  EmitVisits(&trail, "Loop", "A", 10.0, "B", 75);
  EmitVisits(&trail, "Loop", "A", 10.0, "Done", 25);
  auto calibrated = CalibrateChart(chart, trail);
  ASSERT_TRUE(calibrated.ok());
  const auto outgoing = calibrated->OutgoingTransitions("A");
  ASSERT_EQ(outgoing.size(), 2u);
  // Laplace-smoothed 75.5/101 and 25.5/101.
  EXPECT_NEAR(outgoing[0]->probability, 75.5 / 101.0, 1e-12);
  EXPECT_NEAR(outgoing[1]->probability, 25.5 / 101.0, 1e-12);
}

TEST(CalibrateChartTest, UnobservedBranchStaysPositive) {
  const statechart::StateChart chart = MakeLoopChart();
  AuditTrail trail;
  EmitVisits(&trail, "Loop", "A", 10.0, "Done", 100);  // never A -> B
  auto calibrated = CalibrateChart(chart, trail);
  ASSERT_TRUE(calibrated.ok()) << calibrated.status();
  for (const auto* t : calibrated->OutgoingTransitions("A")) {
    EXPECT_GT(t->probability, 0.0);
  }
}

TEST(CalibrateChartTest, IgnoresOtherCharts) {
  const statechart::StateChart chart = MakeLoopChart();
  AuditTrail trail;
  EmitVisits(&trail, "SomeOtherChart", "A", 999.0, "Done", 100);
  auto calibrated = CalibrateChart(chart, trail);
  ASSERT_TRUE(calibrated.ok());
  EXPECT_DOUBLE_EQ(
      calibrated->state(*calibrated->StateIndex("A")).residence_time, 10.0);
}

TEST(CalibrateChartTest, PreservesEcaAnnotations) {
  auto chart = statechart::ParseSingleChart(R"(
chart C
  state A residence=1
  state B residence=1
  initial A
  final B
  trans A -> B prob=1 event=E cond=Cond action=st!(x)
end
)");
  ASSERT_TRUE(chart.ok());
  AuditTrail trail;
  EmitVisits(&trail, "C", "A", 5.0, "B", 20);
  auto calibrated = CalibrateChart(*chart, trail);
  ASSERT_TRUE(calibrated.ok());
  const auto* t = calibrated->OutgoingTransitions("A")[0];
  EXPECT_EQ(t->rule.event, "E");
  EXPECT_EQ(t->rule.condition, "Cond");
  ASSERT_EQ(t->rule.actions.size(), 1u);
  EXPECT_EQ(t->rule.actions[0], "st!(x)");
}

TEST(CalibrateEnvironmentTest, EndToEnd) {
  auto env = EpEnvironment(0.5);
  ASSERT_TRUE(env.ok());
  AuditTrail trail;
  // Residence of NewOrder observed at 8 instead of designed 5.
  EmitVisits(&trail, "EP", "NewOrder", 8.0, "Shipment", 100);
  // Engine service times observed at 0.04 mean.
  for (int i = 0; i < 100; ++i) trail.RecordService({1, 0.04});
  // 200 arrivals over 100 minutes -> rate 2/min.
  for (int i = 0; i < 200; ++i) {
    trail.RecordArrival({"EP", 0.5 * (i + 1)});
  }
  CalibrationReport report;
  auto calibrated = CalibrateEnvironment(*env, trail, {}, &report);
  ASSERT_TRUE(calibrated.ok()) << calibrated.status();

  const auto* ep = *calibrated->charts.GetChart("EP");
  EXPECT_DOUBLE_EQ(ep->state(*ep->StateIndex("NewOrder")).residence_time,
                   8.0);
  EXPECT_NEAR(calibrated->servers.type(1).service.mean, 0.04, 1e-12);
  EXPECT_NEAR(calibrated->workflows[0].arrival_rate, 2.0, 1e-9);
  EXPECT_GE(report.states_recalibrated, 1);
  EXPECT_EQ(report.server_types_recalibrated, 1);
  EXPECT_EQ(report.workflow_types_recalibrated, 1);
  // The original environment is untouched.
  const auto* orig_ep = *env->charts.GetChart("EP");
  EXPECT_DOUBLE_EQ(
      orig_ep->state(*orig_ep->StateIndex("NewOrder")).residence_time, 5.0);
}

TEST(CalibrateEnvironmentTest, CalibratedChartsStillValidate) {
  auto env = EpEnvironment();
  ASSERT_TRUE(env.ok());
  AuditTrail trail;
  EmitVisits(&trail, "Delivery", "PackItems", 25.0, "ShipItems", 90);
  EmitVisits(&trail, "Delivery", "PackItems", 25.0, "PickItems", 10);
  auto calibrated = CalibrateEnvironment(*env, trail);
  ASSERT_TRUE(calibrated.ok());
  EXPECT_TRUE(calibrated->Validate().ok());
}

}  // namespace
}  // namespace wfms::workflow

// Search checkpoint/resume guarantees (DESIGN.md "Checkpointing and
// recovery"): a search cancelled mid-flight and resumed on a fresh tool
// finishes with a bit-identical recommendation, pays no re-assessment for
// restored cache entries, and stale or mismatched checkpoints are
// rejected before any state is mixed in.
#include "configtool/checkpoint.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "configtool/tool.h"
#include "workflow/scenarios.h"

namespace wfms::configtool {
namespace {

using workflow::Environment;

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("wfms_checkpoint_test_") + name))
      .string();
}

Environment MakeEnv() {
  auto env = workflow::EpEnvironment(1.0);
  EXPECT_TRUE(env.ok());
  return *std::move(env);
}

ConfigurationTool MakeTool(const Environment& env, size_t threads = 1) {
  auto tool = ConfigurationTool::Create(env);
  EXPECT_TRUE(tool.ok()) << tool.status();
  tool->set_num_threads(threads);
  return *std::move(tool);
}

Goals TestGoals() {
  Goals goals;
  goals.max_waiting_time = 0.05;
  goals.min_availability = 0.999999;
  return goals;
}

void ExpectBitIdentical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.satisfied, b.satisfied);
  EXPECT_EQ(a.evaluations, b.evaluations);
  const auto& pa = a.assessment.performability;
  const auto& pb = b.assessment.performability;
  EXPECT_EQ(pa.availability, pb.availability);
  EXPECT_EQ(pa.max_expected_waiting, pb.max_expected_waiting);
  ASSERT_EQ(pa.expected_waiting.size(), pb.expected_waiting.size());
  for (size_t x = 0; x < pa.expected_waiting.size(); ++x) {
    EXPECT_EQ(pa.expected_waiting[x], pb.expected_waiting[x]) << "type " << x;
  }
}

TEST(SearchFingerprintTest, SensitiveToEveryInput) {
  const Environment env = MakeEnv();
  const Goals goals = TestGoals();
  const SearchConstraints constraints;
  const CostModel cost = CostModel::Uniform();
  const uint64_t base =
      SearchFingerprint(env, goals, constraints, cost, "greedy");
  EXPECT_EQ(base, SearchFingerprint(env, goals, constraints, cost, "greedy"));

  Goals other_goals = goals;
  other_goals.max_waiting_time *= 2;
  EXPECT_NE(base,
            SearchFingerprint(env, other_goals, constraints, cost, "greedy"));

  SearchConstraints other_constraints;
  other_constraints.max_replicas.assign(env.num_server_types(), 4);
  EXPECT_NE(base, SearchFingerprint(env, goals, other_constraints, cost,
                                    "greedy"));

  CostModel other_cost;
  other_cost.per_server_cost.assign(env.num_server_types(), 2.0);
  EXPECT_NE(base, SearchFingerprint(env, goals, constraints, other_cost,
                                    "greedy"));

  EXPECT_NE(base, SearchFingerprint(env, goals, constraints, cost, "bnb"));

  AnnealingOptions annealing;
  const uint64_t anneal_base = SearchFingerprint(env, goals, constraints,
                                                 cost, "annealing",
                                                 &annealing);
  annealing.seed ^= 1;
  EXPECT_NE(anneal_base, SearchFingerprint(env, goals, constraints, cost,
                                           "annealing", &annealing));
}

TEST(SearchCheckpointTest, ResumedSearchIsBitIdenticalAndSkipsRework) {
  const Environment env = MakeEnv();
  const Goals goals = TestGoals();

  // Uninterrupted baseline.
  const ConfigurationTool baseline_tool = MakeTool(env);
  auto baseline = baseline_tool.GreedyMinCost(goals);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const size_t baseline_misses = baseline_tool.cache_stats().misses;

  // Interrupted run: cancel after the second checkpoint write.
  const std::string path = TempPath("skips_rework");
  const uint64_t fingerprint = SearchFingerprint(
      env, goals, SearchConstraints{}, CostModel::Uniform(), "greedy");
  const ConfigurationTool crashed_tool = MakeTool(env);
  std::atomic<bool> cancel{false};
  int checkpoints = 0;
  SearchOptions search;
  search.cancel = &cancel;
  search.checkpoint_interval_seconds = 0.0;  // every boundary
  search.on_checkpoint = [&] {
    ASSERT_TRUE(WriteSearchCheckpoint(path, crashed_tool, fingerprint,
                                      "greedy")
                    .ok());
    if (++checkpoints >= 2) cancel.store(true);
  };
  auto interrupted = crashed_tool.GreedyMinCost(goals, {}, {}, search);
  ASSERT_TRUE(interrupted.ok()) << interrupted.status();
  ASSERT_EQ(interrupted->termination.code(), StatusCode::kCancelled);
  ASSERT_LT(interrupted->evaluations, baseline->evaluations)
      << "cancel fired too late to interrupt anything";

  // Resume on a fresh tool (a new process after the crash).
  const ConfigurationTool resumed_tool = MakeTool(env);
  auto meta = ResumeSearchFrom(resumed_tool, path, fingerprint, "greedy");
  ASSERT_TRUE(meta.ok()) << meta.status();
  EXPECT_GT(meta->cached_reports, 0u);
  EXPECT_EQ(meta->cached_reports, resumed_tool.cache_stats().entries);

  auto resumed = resumed_tool.GreedyMinCost(goals);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_TRUE(resumed->termination.ok()) << resumed->termination;
  ExpectBitIdentical(*baseline, *resumed);

  // No re-assessment of restored vectors: every checkpointed entry is a
  // solve the resumed run did not repeat.
  EXPECT_EQ(resumed_tool.cache_stats().misses,
            baseline_misses - meta->cached_reports);
  std::remove(path.c_str());
}

TEST(SearchCheckpointTest, AllFourStrategiesResumeBitIdentically) {
  const Environment env = MakeEnv();
  const Goals goals = TestGoals();
  SearchConstraints constraints;
  constraints.max_replicas.assign(env.num_server_types(), 4);
  AnnealingOptions annealing;
  annealing.iterations = 60;

  struct Strategy {
    const char* name;
    std::function<Result<SearchResult>(const ConfigurationTool&,
                                       const SearchOptions&)>
        run;
  };
  const Strategy strategies[] = {
      {"greedy",
       [&](const ConfigurationTool& t, const SearchOptions& s) {
         return t.GreedyMinCost(goals, constraints, {}, s);
       }},
      {"exhaustive",
       [&](const ConfigurationTool& t, const SearchOptions& s) {
         return t.ExhaustiveMinCost(goals, constraints, {}, s);
       }},
      {"bnb",
       [&](const ConfigurationTool& t, const SearchOptions& s) {
         return t.BranchAndBoundMinCost(goals, constraints, {}, s);
       }},
      {"annealing",
       [&](const ConfigurationTool& t, const SearchOptions& s) {
         return t.AnnealingMinCost(goals, constraints, {}, annealing, s);
       }},
  };

  for (const Strategy& strategy : strategies) {
    SCOPED_TRACE(strategy.name);
    const ConfigurationTool baseline_tool = MakeTool(env);
    auto baseline = strategy.run(baseline_tool, SearchOptions{});
    ASSERT_TRUE(baseline.ok()) << baseline.status();

    const std::string path =
        TempPath((std::string("all_four_") + strategy.name).c_str());
    const uint64_t fingerprint = SearchFingerprint(
        env, goals, constraints, CostModel::Uniform(), strategy.name,
        std::string(strategy.name) == "annealing" ? &annealing : nullptr);
    const ConfigurationTool crashed_tool = MakeTool(env);
    std::atomic<bool> cancel{false};
    SearchOptions search;
    search.cancel = &cancel;
    search.checkpoint_interval_seconds = 0.0;
    search.on_checkpoint = [&] {
      ASSERT_TRUE(WriteSearchCheckpoint(path, crashed_tool, fingerprint,
                                        strategy.name)
                      .ok());
      cancel.store(true);  // "crash" at the first checkpoint
    };
    auto interrupted = strategy.run(crashed_tool, search);
    ASSERT_TRUE(interrupted.ok()) << interrupted.status();
    ASSERT_EQ(interrupted->termination.code(), StatusCode::kCancelled);

    const ConfigurationTool resumed_tool = MakeTool(env);
    auto meta = ResumeSearchFrom(resumed_tool, path, fingerprint,
                                 strategy.name);
    ASSERT_TRUE(meta.ok()) << meta.status();
    auto resumed = strategy.run(resumed_tool, SearchOptions{});
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    ExpectBitIdentical(*baseline, *resumed);
    EXPECT_EQ(baseline->failed_candidates.size(),
              resumed->failed_candidates.size());
    std::remove(path.c_str());
  }
}

TEST(SearchCheckpointTest, StaleFingerprintIsRejected) {
  const Environment env = MakeEnv();
  const Goals goals = TestGoals();
  const ConfigurationTool tool = MakeTool(env);
  const std::string path = TempPath("stale");
  const uint64_t fingerprint = SearchFingerprint(
      env, goals, SearchConstraints{}, CostModel::Uniform(), "greedy");
  ASSERT_TRUE(
      WriteSearchCheckpoint(path, tool, fingerprint, "greedy").ok());

  // Different goals => different fingerprint => rejected.
  Goals other = goals;
  other.min_availability = 0.9;
  const uint64_t other_fingerprint = SearchFingerprint(
      env, other, SearchConstraints{}, CostModel::Uniform(), "greedy");
  ASSERT_NE(fingerprint, other_fingerprint);
  const ConfigurationTool fresh = MakeTool(env);
  auto rejected = ResumeSearchFrom(fresh, path, other_fingerprint, "greedy");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.status().message().find("hash mismatch"),
            std::string::npos)
      << rejected.status();
  // Nothing was mixed into the fresh tool.
  EXPECT_EQ(fresh.cache_stats().entries, 0u);

  // Same fingerprint but a different strategy name is also stale.
  auto wrong_strategy = ResumeSearchFrom(fresh, path, fingerprint, "bnb");
  ASSERT_FALSE(wrong_strategy.ok());
  EXPECT_EQ(wrong_strategy.status().code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SearchCheckpointTest, CheckpointPreservesNegativeFailureEntries) {
  const Environment env = MakeEnv();
  const ConfigurationTool tool = MakeTool(env);
  ConfigurationTool::CacheDump dump;
  dump.failures.push_back(
      {{9, 9, 9},
       {Status::NumericError("synthetic solver failure"), true, true}});
  tool.RestoreAssessmentCache(dump);

  const std::string path = TempPath("negative");
  ASSERT_TRUE(WriteSearchCheckpoint(path, tool, 123, "greedy").ok());
  const ConfigurationTool fresh = MakeTool(env);
  auto meta = ResumeSearchFrom(fresh, path, 123, "greedy");
  ASSERT_TRUE(meta.ok()) << meta.status();
  EXPECT_EQ(meta->cached_failures, 1u);
  const auto restored = fresh.DumpAssessmentCache();
  ASSERT_EQ(restored.failures.size(), 1u);
  EXPECT_EQ(restored.failures[0].first, (std::vector<int>{9, 9, 9}));
  EXPECT_EQ(restored.failures[0].second.error.code(),
            StatusCode::kNumericError);
  EXPECT_TRUE(restored.failures[0].second.numerical);
  EXPECT_TRUE(restored.failures[0].second.retried_exact);
  std::remove(path.c_str());
}

TEST(SearchCheckpointTest, SaveLoadSaveIsByteIdentical) {
  const Environment env = MakeEnv();
  const ConfigurationTool tool = MakeTool(env);
  auto result = tool.GreedyMinCost(TestGoals());
  ASSERT_TRUE(result.ok());

  const std::string path = TempPath("byteident");
  ASSERT_TRUE(
      WriteSearchCheckpoint(path, tool, 7, "greedy", &*result).ok());
  std::ifstream first_in(path, std::ios::binary);
  std::ostringstream first;
  first << first_in.rdbuf();

  const ConfigurationTool loaded = MakeTool(env);
  auto meta = ResumeSearchFrom(loaded, path, 7, "greedy");
  ASSERT_TRUE(meta.ok()) << meta.status();
  EXPECT_TRUE(meta->have_best);
  EXPECT_EQ(meta->best_config, result->config);
  ASSERT_TRUE(
      WriteSearchCheckpoint(path, loaded, 7, "greedy", &*result).ok());
  std::ifstream second_in(path, std::ios::binary);
  std::ostringstream second;
  second << second_in.rdbuf();
  EXPECT_EQ(first.str(), second.str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wfms::configtool

#include <gtest/gtest.h>

#include "statechart/builder.h"
#include "statechart/model.h"

namespace wfms::statechart {
namespace {

StateChart MakeTinyChart() {
  auto chart = ChartBuilder("Tiny")
                   .AddActivityState("A", "act_a", 2.0)
                   .AddSimpleState("B", 1.0)
                   .SetInitial("A")
                   .SetFinal("B")
                   .AddTransition("A", "B", 1.0)
                   .Build();
  EXPECT_TRUE(chart.ok()) << chart.status();
  return *std::move(chart);
}

TEST(EcaRuleTest, ToStringVariants) {
  EcaRule full{"E", "C", {"st!(x)", "fs!(y)"}};
  EXPECT_EQ(full.ToString(), "E [C] / st!(x); fs!(y)");
  EcaRule event_only{"E", "", {}};
  EXPECT_EQ(event_only.ToString(), "E");
  EcaRule cond_only{"", "C", {}};
  EXPECT_EQ(cond_only.ToString(), "[C]");
  EcaRule action_only{"", "", {"st!(a)"}};
  EXPECT_EQ(action_only.ToString(), "/ st!(a)");
  EXPECT_TRUE(EcaRule{}.empty());
  EXPECT_FALSE(full.empty());
}

TEST(ChartBuilderTest, BuildsValidChart) {
  const StateChart chart = MakeTinyChart();
  EXPECT_EQ(chart.name(), "Tiny");
  EXPECT_EQ(chart.num_states(), 2u);
  EXPECT_EQ(chart.initial_state(), "A");
  EXPECT_EQ(chart.final_state(), "B");
  EXPECT_EQ(chart.state(0).activity, "act_a");
  ASSERT_TRUE(chart.StateIndex("B").ok());
  EXPECT_EQ(*chart.StateIndex("B"), 1u);
  EXPECT_FALSE(chart.StateIndex("Z").ok());
}

TEST(ChartBuilderTest, RejectsDuplicateState) {
  auto chart = ChartBuilder("X")
                   .AddSimpleState("A", 1.0)
                   .AddSimpleState("A", 2.0)
                   .AddSimpleState("B", 1.0)
                   .SetInitial("A")
                   .SetFinal("B")
                   .AddTransition("A", "B", 1.0)
                   .Build();
  ASSERT_FALSE(chart.ok());
  EXPECT_EQ(chart.status().code(), StatusCode::kAlreadyExists);
}

TEST(ChartBuilderTest, RejectsDuplicateActivityNamingBothStates) {
  auto chart = ChartBuilder("X")
                   .AddActivityState("A", "shared_act", 1.0)
                   .AddActivityState("B", "shared_act", 2.0)
                   .AddSimpleState("C", 1.0)
                   .SetInitial("A")
                   .SetFinal("C")
                   .AddTransition("A", "B", 1.0)
                   .AddTransition("B", "C", 1.0)
                   .Build();
  ASSERT_FALSE(chart.ok());
  EXPECT_EQ(chart.status().code(), StatusCode::kInvalidArgument);
  const std::string message = chart.status().message();
  EXPECT_NE(message.find("shared_act"), std::string::npos) << message;
  EXPECT_NE(message.find("'A'"), std::string::npos) << message;
  EXPECT_NE(message.find("'B'"), std::string::npos) << message;
}

TEST(ChartBuilderTest, RejectsMissingInitialOrFinal) {
  EXPECT_FALSE(ChartBuilder("X")
                   .AddSimpleState("A", 1.0)
                   .AddSimpleState("B", 1.0)
                   .SetFinal("B")
                   .AddTransition("A", "B", 1.0)
                   .Build()
                   .ok());
  EXPECT_FALSE(ChartBuilder("X")
                   .AddSimpleState("A", 1.0)
                   .AddSimpleState("B", 1.0)
                   .SetInitial("A")
                   .SetInitial("Missing")
                   .SetFinal("B")
                   .AddTransition("A", "B", 1.0)
                   .Build()
                   .ok());
}

TEST(ChartBuilderTest, RejectsInitialEqualsFinal) {
  EXPECT_FALSE(ChartBuilder("X")
                   .AddSimpleState("A", 1.0)
                   .SetInitial("A")
                   .SetFinal("A")
                   .Build()
                   .ok());
}

TEST(ChartBuilderTest, RejectsTransitionFromFinal) {
  EXPECT_FALSE(ChartBuilder("X")
                   .AddSimpleState("A", 1.0)
                   .AddSimpleState("B", 1.0)
                   .SetInitial("A")
                   .SetFinal("B")
                   .AddTransition("A", "B", 1.0)
                   .AddTransition("B", "A", 1.0)
                   .Build()
                   .ok());
}

TEST(ChartBuilderTest, RejectsUnknownEndpoints) {
  EXPECT_FALSE(ChartBuilder("X")
                   .AddSimpleState("A", 1.0)
                   .AddSimpleState("B", 1.0)
                   .SetInitial("A")
                   .SetFinal("B")
                   .AddTransition("A", "Z", 1.0)
                   .Build()
                   .ok());
}

TEST(ChartBuilderTest, RejectsBadProbabilities) {
  EXPECT_FALSE(ChartBuilder("X")
                   .AddSimpleState("A", 1.0)
                   .AddSimpleState("B", 1.0)
                   .SetInitial("A")
                   .SetFinal("B")
                   .AddTransition("A", "B", 0.0)
                   .Build()
                   .ok());
  // Outgoing probabilities not summing to one.
  EXPECT_FALSE(ChartBuilder("X")
                   .AddSimpleState("A", 1.0)
                   .AddSimpleState("B", 1.0)
                   .SetInitial("A")
                   .SetFinal("B")
                   .AddTransition("A", "B", 0.7)
                   .Build()
                   .ok());
}

TEST(ChartBuilderTest, RejectsDanglingState) {
  EXPECT_FALSE(ChartBuilder("X")
                   .AddSimpleState("A", 1.0)
                   .AddSimpleState("B", 1.0)
                   .AddSimpleState("Orphan", 1.0)
                   .SetInitial("A")
                   .SetFinal("B")
                   .AddTransition("A", "B", 1.0)
                   .AddTransition("Orphan", "B", 1.0)
                   .Build()
                   .ok());
}

TEST(ChartBuilderTest, RejectsNonFinalWithoutOutgoing) {
  EXPECT_FALSE(ChartBuilder("X")
                   .AddSimpleState("A", 1.0)
                   .AddSimpleState("Stuck", 1.0)
                   .AddSimpleState("B", 1.0)
                   .SetInitial("A")
                   .SetFinal("B")
                   .AddTransition("A", "Stuck", 0.5)
                   .AddTransition("A", "B", 0.5)
                   .Build()
                   .ok());
}

TEST(ChartBuilderTest, RejectsCompositeWithoutSubcharts) {
  EXPECT_FALSE(ChartBuilder("X")
                   .AddCompositeState("C", {})
                   .AddSimpleState("B", 1.0)
                   .SetInitial("C")
                   .SetFinal("B")
                   .AddTransition("C", "B", 1.0)
                   .Build()
                   .ok());
}

TEST(ChartBuilderTest, NormalizesProbabilitiesExactly) {
  auto chart = ChartBuilder("X")
                   .AddSimpleState("A", 1.0)
                   .AddSimpleState("B", 1.0)
                   .AddSimpleState("C", 1.0)
                   .SetInitial("A")
                   .SetFinal("C")
                   .AddTransition("A", "B", 1.0 / 3.0)
                   .AddTransition("A", "C", 2.0 / 3.0)
                   .AddTransition("B", "C", 1.0)
                   .Build();
  ASSERT_TRUE(chart.ok());
  double sum = 0.0;
  for (const Transition* t : chart->OutgoingTransitions("A")) {
    sum += t->probability;
  }
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(ChartRegistryTest, AddAndLookup) {
  ChartRegistry registry;
  ASSERT_TRUE(registry.AddChart(MakeTinyChart()).ok());
  EXPECT_TRUE(registry.Contains("Tiny"));
  EXPECT_FALSE(registry.Contains("Other"));
  ASSERT_TRUE(registry.GetChart("Tiny").ok());
  EXPECT_FALSE(registry.GetChart("Other").ok());
  EXPECT_EQ(registry.AddChart(MakeTinyChart()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.ChartNames().size(), 1u);
}

TEST(ChartRegistryTest, DetectsMissingSubchart) {
  ChartRegistry registry;
  auto parent = ChartBuilder("Parent")
                    .AddCompositeState("C", {"Missing"})
                    .AddSimpleState("B", 1.0)
                    .SetInitial("C")
                    .SetFinal("B")
                    .AddTransition("C", "B", 1.0)
                    .Build();
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(registry.AddChart(*std::move(parent)).ok());
  EXPECT_EQ(registry.ValidateReferences().code(), StatusCode::kNotFound);
}

TEST(ChartRegistryTest, DetectsNestingCycle) {
  ChartRegistry registry;
  auto a = ChartBuilder("A")
               .AddCompositeState("CB", {"B"})
               .AddSimpleState("Done", 1.0)
               .SetInitial("CB")
               .SetFinal("Done")
               .AddTransition("CB", "Done", 1.0)
               .Build();
  auto b = ChartBuilder("B")
               .AddCompositeState("CA", {"A"})
               .AddSimpleState("Done", 1.0)
               .SetInitial("CA")
               .SetFinal("Done")
               .AddTransition("CA", "Done", 1.0)
               .Build();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(registry.AddChart(*std::move(a)).ok());
  ASSERT_TRUE(registry.AddChart(*std::move(b)).ok());
  EXPECT_EQ(registry.ValidateReferences().code(),
            StatusCode::kInvalidArgument);
}

TEST(ChartRegistryTest, SelfNestingCycleDetected) {
  ChartRegistry registry;
  auto a = ChartBuilder("A")
               .AddCompositeState("Self", {"A"})
               .AddSimpleState("Done", 1.0)
               .SetInitial("Self")
               .SetFinal("Done")
               .AddTransition("Self", "Done", 1.0)
               .Build();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(registry.AddChart(*std::move(a)).ok());
  EXPECT_FALSE(registry.ValidateReferences().ok());
}

}  // namespace
}  // namespace wfms::statechart

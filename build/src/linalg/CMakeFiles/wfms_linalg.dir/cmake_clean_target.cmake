file(REMOVE_RECURSE
  "libwfms_linalg.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bench_degraded_mode.dir/bench_degraded_mode.cpp.o"
  "CMakeFiles/bench_degraded_mode.dir/bench_degraded_mode.cpp.o.d"
  "bench_degraded_mode"
  "bench_degraded_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degraded_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

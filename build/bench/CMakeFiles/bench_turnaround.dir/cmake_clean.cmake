file(REMOVE_RECURSE
  "CMakeFiles/bench_turnaround.dir/bench_turnaround.cpp.o"
  "CMakeFiles/bench_turnaround.dir/bench_turnaround.cpp.o.d"
  "bench_turnaround"
  "bench_turnaround.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_turnaround.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

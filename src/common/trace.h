// Scoped trace spans emitting Chrome trace_event JSON ("complete" events,
// ph:"X") that Perfetto and chrome://tracing open directly.
//
// Recording is off by default: every span checks a process-wide atomic flag
// and is a no-op (no clock read, no buffer touch) when disabled. When
// enabled, each thread appends finished spans to its own buffer under its
// own mutex — uncontended except while an export is copying it — so spans
// from the parallel search lanes never serialize against each other.
// Buffers of exited threads are folded into an orphan list so their spans
// survive until export.
//
// Span naming convention (DESIGN.md §8): `<module>/<operation>`, e.g.
// "configtool/greedy_search", "markov/steady_state". The category string
// must be a string literal (it is stored by pointer).
#ifndef WFMS_COMMON_TRACE_H_
#define WFMS_COMMON_TRACE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

namespace wfms::trace {

/// Turns recording on/off process-wide. Spans already open keep the state
/// they saw at construction.
void SetEnabled(bool enabled);
bool IsEnabled();

/// RAII scoped timer: records one complete event from construction to
/// destruction on the current thread's buffer. No-op while disabled.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, const char* category = "wfms");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  const char* category_ = nullptr;
  double start_us_ = -1.0;  // < 0 marks a disabled (no-op) span
};

/// Records a zero-duration instant event (ph:"i"). No-op while disabled.
void Instant(std::string_view name, const char* category = "wfms");

/// All events recorded so far as a trace_event JSON document:
/// {"traceEvents": [...], "displayTimeUnit": "ms"}. Events are sorted by
/// timestamp. Does not clear the buffers.
std::string ExportJson();

/// Writes ExportJson() to `path`.
Status WriteJson(const std::string& path);

/// Drops every recorded event (tests).
void Clear();

/// Number of events currently buffered.
size_t event_count();

}  // namespace wfms::trace

#endif  // WFMS_COMMON_TRACE_H_

#include "queueing/mg1.h"

#include <cmath>
#include <string>

#include "common/metrics.h"

namespace wfms::queueing {

Result<QueueMetrics> Mg1Metrics(double arrival_rate,
                                const ServiceMoments& service) {
  static metrics::Counter& evaluations =
      metrics::MetricsRegistry::Global().GetCounter(
          "wfms_queueing_mg1_evaluations_total");
  evaluations.Increment();
  if (arrival_rate < 0.0) {
    return Status::InvalidArgument("arrival rate must be non-negative");
  }
  WFMS_RETURN_NOT_OK(ValidateMoments(service));
  QueueMetrics m;
  m.utilization = arrival_rate * service.mean;
  if (m.utilization >= 1.0) {
    return Status::FailedPrecondition(
        "server saturated: utilization " + std::to_string(m.utilization) +
        " >= 1");
  }
  // Pollaczek-Khinchine mean waiting time.
  m.mean_waiting_time =
      arrival_rate * service.second_moment / (2.0 * (1.0 - m.utilization));
  m.mean_response_time = m.mean_waiting_time + service.mean;
  m.mean_queue_length = arrival_rate * m.mean_waiting_time;
  m.mean_jobs_in_system = arrival_rate * m.mean_response_time;
  return m;
}

Result<QueueMetrics> Mm1Metrics(double arrival_rate, double service_mean) {
  return Mg1Metrics(arrival_rate, ExponentialService(service_mean));
}

Result<double> ErlangC(double offered_load, int servers) {
  if (servers < 1) return Status::InvalidArgument("servers must be >= 1");
  if (offered_load < 0.0) {
    return Status::InvalidArgument("offered load must be non-negative");
  }
  if (offered_load >= servers) {
    return Status::FailedPrecondition("offered load >= server count");
  }
  // Stable recursive evaluation of the Erlang-B formula, then convert:
  // B(0) = 1; B(k) = a B(k-1) / (k + a B(k-1)).
  double erlang_b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    erlang_b = offered_load * erlang_b / (k + offered_load * erlang_b);
  }
  const double rho = offered_load / servers;
  return erlang_b / (1.0 - rho + rho * erlang_b);
}

Result<QueueMetrics> MmcMetrics(double arrival_rate, double service_mean,
                                int servers) {
  static metrics::Counter& evaluations =
      metrics::MetricsRegistry::Global().GetCounter(
          "wfms_queueing_mmc_evaluations_total");
  evaluations.Increment();
  if (!(service_mean > 0.0)) {
    return Status::InvalidArgument("service mean must be positive");
  }
  if (arrival_rate < 0.0) {
    return Status::InvalidArgument("arrival rate must be non-negative");
  }
  const double offered = arrival_rate * service_mean;
  if (offered >= servers) {
    return Status::FailedPrecondition("M/M/c saturated");
  }
  WFMS_ASSIGN_OR_RETURN(double p_wait, ErlangC(offered, servers));
  QueueMetrics m;
  m.utilization = offered / servers;
  m.mean_waiting_time =
      p_wait * service_mean / (servers * (1.0 - m.utilization));
  m.mean_response_time = m.mean_waiting_time + service_mean;
  m.mean_queue_length = arrival_rate * m.mean_waiting_time;
  m.mean_jobs_in_system = arrival_rate * m.mean_response_time;
  return m;
}

}  // namespace wfms::queueing

# Empty dependencies file for birth_death_test.
# This may be replaced when dependencies are built.

#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace wfms {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  WFMS_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextUint64(uint64_t n) {
  WFMS_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextExponential(double rate) {
  WFMS_DCHECK(rate > 0.0);
  // -log(1 - U) avoids log(0) since NextDouble() < 1.
  return -std::log1p(-NextDouble()) / rate;
}

double Rng::NextErlang(int k, double rate) {
  WFMS_DCHECK(k >= 1);
  double sum = 0.0;
  for (int i = 0; i < k; ++i) sum += NextExponential(rate);
  return sum;
}

double Rng::NextNormal() {
  // Box–Muller; one value per call keeps the generator stateless w.r.t.
  // cached spare values, which keeps Split() semantics simple.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextLognormalByMoments(double mean, double scv) {
  WFMS_DCHECK(mean > 0.0);
  WFMS_DCHECK(scv > 0.0);
  // For lognormal, SCV = exp(sigma^2) - 1 and mean = exp(mu + sigma^2/2).
  const double sigma2 = std::log1p(scv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(mu + std::sqrt(sigma2) * NextNormal());
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

int Rng::NextDiscrete(const double* weights, int n) {
  WFMS_DCHECK(n > 0);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    WFMS_DCHECK(weights[i] >= 0.0);
    total += weights[i];
  }
  WFMS_DCHECK(total > 0.0);
  double u = NextDouble() * total;
  for (int i = 0; i < n; ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return n - 1;  // guard against floating-point underflow of u
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace wfms

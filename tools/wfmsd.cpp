// wfmsd — the always-on assessment daemon (see DESIGN.md "Service
// architecture"): serves the newline-delimited-JSON protocol and
// GET /metrics scrapes on one TCP port, with admission control, a
// degradation ladder, per-request deadlines, and a crash-safe shared
// assessment cache.
//
//   wfmsd --port 7414
//   wfmsd --port 0 --snapshot cache.wfsn --snapshot-interval 0
//   wfmsd --tenant-rate 50 --tenant-burst 100 --default-deadline 10
//
// Prints exactly one line `wfmsd: listening on HOST:PORT` to stdout once
// the socket is live (scripts parse it — the ephemeral-port handshake).
// SIGTERM/SIGINT drain gracefully: every admitted request completes and
// is answered, a final cache snapshot is written, exit code 0. SIGKILL is
// survivable with --snapshot: the next start restores the cache and
// answers warm (byte-identically, see tools/daemon_chaos_test.sh).

#include <csignal>
#include <cstdio>
#include <string>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "service/server.h"

namespace wfms {
namespace {

service::Server* g_server = nullptr;

void HandleTerminationSignal(int) {
  // Async-signal-safe: one write to the server's wake pipe.
  if (g_server != nullptr) g_server->RequestStop();
}

int Usage() {
  std::fprintf(stderr, R"(usage: wfmsd [--flag value]...

  --host HOST            listen address            (default 127.0.0.1)
  --port PORT            listen port; 0 = ephemeral (default 7414)
  --workers N            request worker lanes      (default 4, min 2)
  --max-queue N          worker queue bound; also the base of the
                         degradation ladder        (default 64)
  --tenant-rate R        per-tenant admission rate, req/s (0 = off)
  --tenant-burst B       per-tenant burst          (default 2*rate)
  --default-deadline S   deadline for requests that carry none (0 = none)
  --snapshot PATH        persist the shared assessment cache here;
                         restored on start (warm restart)
  --snapshot-interval S  seconds between cache snapshots; 0 = after every
                         cache-changing request    (default 5)
  --cache-entries N      per-scenario LRU entry bound (default 4096)
  --cache-bytes N        per-scenario LRU byte bound  (default 64 MiB)
  --lumping MODE         off | auto | on for the availability solve
                         (default off)
  --flight-recorder PATH dump the /debug/requests ring here on graceful
                         drain and after each cache snapshot (defaults to
                         SNAPSHOT.requests.json when --snapshot is set)
  --flight-capacity N    per-request records retained (default 1024)
  --slow-request-ms MS   log any request slower than MS to stderr with its
                         full phase breakdown (0 = off)
  --trace-out PATH       record spans for every request and write a
                         Chrome-trace JSON here on drain (load it in
                         Perfetto; merge with a client's --trace-out to
                         see one request tree end to end)

The protocol and GET /metrics share the port; see DESIGN.md "Service
architecture" for the request/response format and the disposition
semantics. Exit codes: 0 clean drain after SIGTERM/SIGINT, 1 startup or
shutdown failure, 2 usage error.
)");
  return 2;
}

int Main(int argc, char** argv) {
  service::ServerOptions options;
  options.port = 7414;
  double snapshot_interval = 5.0;
  bool snapshot_configured = false;
  bool flight_recorder_configured = false;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--host" && (value = next())) {
      options.host = value;
    } else if (arg == "--port" && (value = next())) {
      int port = 0;
      if (!ParseInt(value, &port) || port < 0 || port > 65535) {
        std::fprintf(stderr, "wfmsd: bad --port '%s'\n", value);
        return 2;
      }
      options.port = port;
    } else if (arg == "--workers" && (value = next())) {
      int n = 0;
      if (!ParseInt(value, &n) || n < 1) return Usage();
      options.num_workers = static_cast<size_t>(n);
    } else if (arg == "--max-queue" && (value = next())) {
      int n = 0;
      if (!ParseInt(value, &n) || n < 1) return Usage();
      options.max_queue = static_cast<size_t>(n);
    } else if (arg == "--tenant-rate" && (value = next())) {
      if (!ParseDouble(value, &options.admission.tenant_rate)) return Usage();
    } else if (arg == "--tenant-burst" && (value = next())) {
      if (!ParseDouble(value, &options.admission.tenant_burst)) {
        return Usage();
      }
    } else if (arg == "--default-deadline" && (value = next())) {
      if (!ParseDouble(value, &options.backend.default_deadline_seconds)) {
        return Usage();
      }
    } else if (arg == "--snapshot" && (value = next())) {
      options.backend.snapshot_path = value;
      snapshot_configured = true;
    } else if (arg == "--snapshot-interval" && (value = next())) {
      if (!ParseDouble(value, &snapshot_interval)) return Usage();
    } else if (arg == "--cache-entries" && (value = next())) {
      int n = 0;
      if (!ParseInt(value, &n) || n < 0) return Usage();
      options.backend.cache_limits.max_entries = static_cast<size_t>(n);
    } else if (arg == "--cache-bytes" && (value = next())) {
      double bytes = 0.0;
      if (!ParseDouble(value, &bytes) || bytes < 0.0) return Usage();
      options.backend.cache_limits.max_bytes = static_cast<size_t>(bytes);
    } else if (arg == "--flight-recorder" && (value = next())) {
      options.flight_recorder_path = value;
      flight_recorder_configured = true;
    } else if (arg == "--flight-capacity" && (value = next())) {
      int n = 0;
      if (!ParseInt(value, &n) || n < 1) return Usage();
      options.flight_recorder_capacity = static_cast<size_t>(n);
    } else if (arg == "--slow-request-ms" && (value = next())) {
      if (!ParseDouble(value, &options.slow_request_ms) ||
          options.slow_request_ms < 0.0) {
        return Usage();
      }
    } else if (arg == "--trace-out" && (value = next())) {
      trace_out = value;
    } else if (arg == "--lumping" && (value = next())) {
      const std::string mode = value;
      auto& solver = options.backend.tool_options.availability.solver;
      if (mode == "off") {
        solver.lumping = markov::LumpingMode::kOff;
      } else if (mode == "auto") {
        solver.lumping = markov::LumpingMode::kAuto;
      } else if (mode == "on") {
        solver.lumping = markov::LumpingMode::kOn;
      } else {
        std::fprintf(stderr, "wfmsd: bad --lumping '%s' (off|auto|on)\n",
                     value);
        return 2;
      }
    } else {
      std::fprintf(stderr, "wfmsd: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }
  options.snapshot_interval_seconds =
      snapshot_configured ? snapshot_interval : -1.0;
  if (!flight_recorder_configured && snapshot_configured) {
    // The forensics dump rides next to the cache snapshot by default.
    options.flight_recorder_path =
        options.backend.snapshot_path + ".requests.json";
  }
  if (options.admission.tenant_rate > 0.0 &&
      options.admission.tenant_burst <= 0.0) {
    options.admission.tenant_burst = 2.0 * options.admission.tenant_rate;
  }

  // A daemon's lifecycle events (warm start, snapshot rejections, drain)
  // belong on stderr by default; WFMS_LOG_LEVEL still overrides.
  SetLogLevel(LogLevel::kInfo);
  InitLogLevelFromEnv();
  if (!trace_out.empty()) trace::SetEnabled(true);

  service::Server server(options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "wfmsd: %s\n", started.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, HandleTerminationSignal);
  std::signal(SIGINT, HandleTerminationSignal);

  std::printf("wfmsd: listening on %s:%d\n", options.host.c_str(),
              server.port());
  std::fflush(stdout);

  const Status drained = server.Wait();
  g_server = nullptr;
  if (!trace_out.empty()) {
    const Status traced = trace::WriteJson(trace_out);
    if (!traced.ok()) {
      std::fprintf(stderr, "wfmsd: trace export failed: %s\n",
                   traced.ToString().c_str());
    }
  }
  if (!drained.ok()) {
    std::fprintf(stderr, "wfmsd: drain failed: %s\n",
                 drained.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wfmsd: drained cleanly\n");
  return 0;
}

}  // namespace
}  // namespace wfms

int main(int argc, char** argv) { return wfms::Main(argc, argv); }

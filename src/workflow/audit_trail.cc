#include "workflow/audit_trail.h"

#include <sstream>

#include "common/string_util.h"

namespace wfms::workflow {

void AuditTrail::RecordStateVisit(StateVisitRecord record) {
  state_visits_.push_back(std::move(record));
}

void AuditTrail::RecordService(ServiceRecord record) {
  services_.push_back(record);
}

void AuditTrail::RecordArrival(ArrivalRecord record) {
  arrivals_.push_back(std::move(record));
}

void AuditTrail::Clear() {
  state_visits_.clear();
  services_.clear();
  arrivals_.clear();
}

std::string AuditTrail::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  for (const StateVisitRecord& r : state_visits_) {
    os << "visit," << r.chart << "," << r.instance_id << "," << r.state << ","
       << r.enter_time << "," << r.leave_time << "," << r.next_state << "\n";
  }
  for (const ServiceRecord& r : services_) {
    os << "service," << r.server_type << "," << r.service_time << ","
       << r.time << "\n";
  }
  for (const ArrivalRecord& r : arrivals_) {
    os << "arrival," << r.workflow_type << "," << r.arrival_time << "\n";
  }
  return os.str();
}

Result<AuditTrail> AuditTrail::Deserialize(const std::string& text) {
  AuditTrail trail;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    const std::vector<std::string> fields = SplitString(line, ',');
    const std::string context = "audit trail line " + std::to_string(line_no);
    if (fields[0] == "visit") {
      if (fields.size() != 7) {
        return Status::ParseError(context + ": visit needs 7 fields");
      }
      StateVisitRecord r;
      r.chart = fields[1];
      int id = 0;
      if (!ParseInt(fields[2], &id)) {
        return Status::ParseError(context + ": bad instance id");
      }
      r.instance_id = id;
      r.state = fields[3];
      if (!ParseDouble(fields[4], &r.enter_time) ||
          !ParseDouble(fields[5], &r.leave_time)) {
        return Status::ParseError(context + ": bad timestamps");
      }
      r.next_state = fields[6];
      trail.RecordStateVisit(std::move(r));
    } else if (fields[0] == "service") {
      // 3 fields is the pre-timestamp format; trails recorded before the
      // service start time was added still parse (time stays 0).
      if (fields.size() != 3 && fields.size() != 4) {
        return Status::ParseError(context + ": service needs 3 or 4 fields");
      }
      ServiceRecord r;
      int type = 0;
      if (!ParseInt(fields[1], &type) || type < 0) {
        return Status::ParseError(context + ": bad server type");
      }
      r.server_type = static_cast<size_t>(type);
      if (!ParseDouble(fields[2], &r.service_time)) {
        return Status::ParseError(context + ": bad service time");
      }
      if (fields.size() == 4 && !ParseDouble(fields[3], &r.time)) {
        return Status::ParseError(context + ": bad service start time");
      }
      trail.RecordService(r);
    } else if (fields[0] == "arrival") {
      if (fields.size() != 3) {
        return Status::ParseError(context + ": arrival needs 3 fields");
      }
      ArrivalRecord r;
      r.workflow_type = fields[1];
      if (!ParseDouble(fields[2], &r.arrival_time)) {
        return Status::ParseError(context + ": bad arrival time");
      }
      trail.RecordArrival(std::move(r));
    } else {
      return Status::ParseError(context + ": unknown record kind '" +
                                fields[0] + "'");
    }
  }
  return trail;
}

}  // namespace wfms::workflow

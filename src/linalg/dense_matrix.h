// Row-major dense matrix. Used for small Markov chains (workflow control
// flow CTMCs typically have tens of states) and as the reference path for
// validating the sparse solvers.
#ifndef WFMS_LINALG_DENSE_MATRIX_H_
#define WFMS_LINALG_DENSE_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/vector.h"

namespace wfms::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0);
  /// Builds from nested initializer lists; all rows must have equal length.
  DenseMatrix(std::initializer_list<std::initializer_list<double>> rows);

  static DenseMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  /// y = A x.
  Vector Multiply(const Vector& x) const;
  /// y = A^T x.
  Vector MultiplyTransposed(const Vector& x) const;
  /// C = A B.
  DenseMatrix Multiply(const DenseMatrix& other) const;
  DenseMatrix Transposed() const;

  /// this += alpha * other (same shape required).
  void Add(const DenseMatrix& other, double alpha = 1.0);
  void Scale(double alpha);

  /// max_ij |a_ij - b_ij| (same shape required).
  double MaxAbsDiff(const DenseMatrix& other) const;

  std::string ToString(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace wfms::linalg

#endif  // WFMS_LINALG_DENSE_MATRIX_H_

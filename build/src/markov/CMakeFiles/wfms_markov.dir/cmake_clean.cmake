file(REMOVE_RECURSE
  "CMakeFiles/wfms_markov.dir/absorbing_ctmc.cc.o"
  "CMakeFiles/wfms_markov.dir/absorbing_ctmc.cc.o.d"
  "CMakeFiles/wfms_markov.dir/birth_death.cc.o"
  "CMakeFiles/wfms_markov.dir/birth_death.cc.o.d"
  "CMakeFiles/wfms_markov.dir/ctmc.cc.o"
  "CMakeFiles/wfms_markov.dir/ctmc.cc.o.d"
  "CMakeFiles/wfms_markov.dir/ctmc_transient.cc.o"
  "CMakeFiles/wfms_markov.dir/ctmc_transient.cc.o.d"
  "CMakeFiles/wfms_markov.dir/dtmc.cc.o"
  "CMakeFiles/wfms_markov.dir/dtmc.cc.o.d"
  "CMakeFiles/wfms_markov.dir/first_passage.cc.o"
  "CMakeFiles/wfms_markov.dir/first_passage.cc.o.d"
  "CMakeFiles/wfms_markov.dir/first_passage_moments.cc.o"
  "CMakeFiles/wfms_markov.dir/first_passage_moments.cc.o.d"
  "CMakeFiles/wfms_markov.dir/phase_type.cc.o"
  "CMakeFiles/wfms_markov.dir/phase_type.cc.o.d"
  "CMakeFiles/wfms_markov.dir/state_space.cc.o"
  "CMakeFiles/wfms_markov.dir/state_space.cc.o.d"
  "CMakeFiles/wfms_markov.dir/steady_state.cc.o"
  "CMakeFiles/wfms_markov.dir/steady_state.cc.o.d"
  "CMakeFiles/wfms_markov.dir/transient.cc.o"
  "CMakeFiles/wfms_markov.dir/transient.cc.o.d"
  "CMakeFiles/wfms_markov.dir/transient_distribution.cc.o"
  "CMakeFiles/wfms_markov.dir/transient_distribution.cc.o.d"
  "libwfms_markov.a"
  "libwfms_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

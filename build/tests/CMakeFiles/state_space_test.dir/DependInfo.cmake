
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/state_space_test.cc" "tests/CMakeFiles/state_space_test.dir/state_space_test.cc.o" "gcc" "tests/CMakeFiles/state_space_test.dir/state_space_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/markov/CMakeFiles/wfms_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/wfms_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wfms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

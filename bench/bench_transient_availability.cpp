// E13 — transient (point) availability A(t): probability the WFMS is up
// t minutes after starting fully operational, per configuration, via
// uniformization over the §5 availability CTMC. Complements the paper's
// steady-state metric for mission-window reasoning ("will the system stay
// up through the trading day?").

#include <cstdio>

#include "avail/availability_model.h"
#include "common/time_units.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;
  auto env = workflow::EpEnvironment();
  if (!env.ok()) return 1;
  auto model = avail::AvailabilityModel::Create(env->servers);
  if (!model.ok()) return 1;

  const workflow::Configuration configs[] = {
      workflow::Configuration({1, 1, 1}), workflow::Configuration({2, 2, 2}),
      workflow::Configuration({2, 2, 3})};
  const double times[] = {60.0, 480.0, 1440.0, 10080.0, 43200.0};

  std::printf("E13: point availability A(t), starting from all servers "
              "up\n\n%-10s", "config");
  for (double t : times) std::printf(" %12s", FormatMinutes(t).c_str());
  std::printf(" %12s\n", "steady");
  for (const auto& config : configs) {
    std::printf("%-10s", config.ToString().c_str());
    for (double t : times) {
      auto at = model->PointAvailability(config, t);
      if (!at.ok()) {
        std::fprintf(stderr, "%s\n", at.status().ToString().c_str());
        return 1;
      }
      std::printf(" %12.8f", *at);
    }
    auto steady = model->Evaluate(config);
    if (!steady.ok()) return 1;
    std::printf(" %12.8f\n", steady->availability);
  }
  std::printf("\nexpected shape: A(0)=1, decaying within ~1/mu (tens of "
              "minutes) to the steady-state availability; replication "
              "lifts the whole curve.\n");
  return 0;
}

// Higher moments of the first-passage (turnaround) time. The paper's
// performance model reports the mean R_t; the second moment supports
// variance/SCV reporting and Chebyshev-style tail bounds that complement
// the exact transient quantiles of transient_distribution.h.
//
// For exponential residence times the conditional decomposition
//   T_i = S_i + T_J,  S_i ~ Exp(v_i),  J ~ p_i.
// yields linear systems for both moments:
//   m_i  = 1/v_i + sum_j p_ij m_j
//   s_i  = 2/v_i^2 + (2/v_i) sum_j p_ij m_j + sum_j p_ij s_j
// where m is the mean vector and s the second-moment vector (both zero at
// the absorbing state).
#ifndef WFMS_MARKOV_FIRST_PASSAGE_MOMENTS_H_
#define WFMS_MARKOV_FIRST_PASSAGE_MOMENTS_H_

#include "common/result.h"
#include "linalg/vector.h"
#include "markov/absorbing_ctmc.h"

namespace wfms::markov {

struct TurnaroundMoments {
  double mean = 0.0;
  double second_moment = 0.0;

  double variance() const { return second_moment - mean * mean; }
  double stddev() const;
  /// Squared coefficient of variation of the turnaround time.
  double scv() const;
  /// Chebyshev upper bound on P(T >= t) for t > mean.
  double TailBound(double t) const;
};

/// Mean and second moment of the time to absorption from every state
/// (entries at the absorbing state are 0).
struct FirstPassageMomentVectors {
  linalg::Vector mean;
  linalg::Vector second_moment;
};

Result<FirstPassageMomentVectors> FirstPassageMoments(
    const AbsorbingCtmc& chain);

/// Moments of the turnaround time from the initial state.
Result<TurnaroundMoments> TurnaroundTimeMoments(const AbsorbingCtmc& chain);

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_FIRST_PASSAGE_MOMENTS_H_

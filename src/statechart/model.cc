#include "statechart/model.h"

#include <set>
#include <sstream>

#include "common/string_util.h"

namespace wfms::statechart {

std::string EcaRule::ToString() const {
  std::string out = event;
  if (!condition.empty()) {
    out += out.empty() ? "[" : " [";
    out += condition;
    out += "]";
  }
  if (!actions.empty()) {
    if (!out.empty()) out += " ";
    out += "/ " + JoinStrings(actions, "; ");
  }
  return out;
}

Result<size_t> StateChart::StateIndex(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("chart '" + name_ + "' has no state '" + name +
                            "'");
  }
  return it->second;
}

std::vector<const Transition*> StateChart::OutgoingTransitions(
    const std::string& state) const {
  std::vector<const Transition*> out;
  for (const Transition& t : transitions_) {
    if (t.from == state) out.push_back(&t);
  }
  return out;
}

namespace {

std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

std::string StateChart::ToDsl() const {
  std::ostringstream os;
  os << "chart " << name_ << "\n";
  for (const ChartState& s : states_) {
    if (s.kind == StateKind::kComposite) {
      os << "  compound " << s.name << " subcharts="
         << JoinStrings(s.subcharts, ",") << "\n";
    } else {
      os << "  state " << s.name;
      if (!s.activity.empty()) os << " activity=" << s.activity;
      os << " residence=" << FormatDouble(s.residence_time) << "\n";
    }
  }
  os << "  initial " << initial_ << "\n";
  os << "  final " << final_ << "\n";
  for (const Transition& t : transitions_) {
    os << "  trans " << t.from << " -> " << t.to
       << " prob=" << FormatDouble(t.probability);
    if (!t.rule.event.empty()) os << " event=" << t.rule.event;
    if (!t.rule.condition.empty()) os << " cond=" << t.rule.condition;
    for (const std::string& a : t.rule.actions) os << " action=" << a;
    os << "\n";
  }
  os << "end\n";
  return os.str();
}

Status ChartRegistry::AddChart(StateChart chart) {
  const std::string name = chart.name();
  if (charts_.count(name) > 0) {
    return Status::AlreadyExists("chart '" + name + "' already registered");
  }
  charts_.emplace(name, std::move(chart));
  return Status::OK();
}

Result<const StateChart*> ChartRegistry::GetChart(
    const std::string& name) const {
  const auto it = charts_.find(name);
  if (it == charts_.end()) {
    return Status::NotFound("no chart named '" + name + "'");
  }
  return &it->second;
}

bool ChartRegistry::Contains(const std::string& name) const {
  return charts_.count(name) > 0;
}

std::vector<std::string> ChartRegistry::ChartNames() const {
  std::vector<std::string> names;
  names.reserve(charts_.size());
  for (const auto& [name, chart] : charts_) names.push_back(name);
  return names;
}

namespace {

enum class VisitState { kUnvisited, kInProgress, kDone };

Status DfsCheckCycles(const ChartRegistry& registry, const std::string& name,
                      std::map<std::string, VisitState>* visit) {
  auto& state = (*visit)[name];
  if (state == VisitState::kDone) return Status::OK();
  if (state == VisitState::kInProgress) {
    return Status::InvalidArgument("chart nesting cycle through '" + name +
                                   "'");
  }
  state = VisitState::kInProgress;
  WFMS_ASSIGN_OR_RETURN(const StateChart* chart, registry.GetChart(name));
  for (const ChartState& s : chart->states()) {
    for (const std::string& sub : s.subcharts) {
      if (!registry.Contains(sub)) {
        return Status::NotFound("chart '" + name + "' state '" + s.name +
                                "' references unknown subchart '" + sub +
                                "'");
      }
      WFMS_RETURN_NOT_OK(DfsCheckCycles(registry, sub, visit));
    }
  }
  (*visit)[name] = VisitState::kDone;
  return Status::OK();
}

}  // namespace

Status ChartRegistry::ValidateReferences() const {
  std::map<std::string, VisitState> visit;
  for (const auto& [name, chart] : charts_) {
    WFMS_RETURN_NOT_OK(DfsCheckCycles(*this, name, &visit));
  }
  return Status::OK();
}

std::string ChartRegistry::ToDsl() const {
  std::string out;
  for (const auto& [name, chart] : charts_) {
    out += chart.ToDsl();
    out += "\n";
  }
  return out;
}

}  // namespace wfms::statechart

# Empty compiler generated dependencies file for lu_solver_test.
# This may be replaced when dependencies are built.

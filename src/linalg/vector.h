// Dense vector operations used by the Markov solvers. A Vector is a thin
// wrapper over std::vector<double> with the handful of BLAS-1 operations the
// solvers need; we keep it minimal on purpose (no expression templates).
#ifndef WFMS_LINALG_VECTOR_H_
#define WFMS_LINALG_VECTOR_H_

#include <cstddef>
#include <vector>

namespace wfms::linalg {

using Vector = std::vector<double>;

/// Returns the dot product of a and b (sizes must match).
double Dot(const Vector& a, const Vector& b);

/// y += alpha * x (sizes must match).
void Axpy(double alpha, const Vector& x, Vector* y);

/// x *= alpha.
void Scale(double alpha, Vector* x);

/// Euclidean norm.
double Norm2(const Vector& x);

/// Maximum absolute entry.
double NormInf(const Vector& x);

/// Sum of entries (used to renormalize probability vectors).
double Sum(const Vector& x);

/// max_i |a_i - b_i| (sizes must match).
double MaxAbsDiff(const Vector& a, const Vector& b);

/// Divides x by Sum(x); requires a nonzero sum. Used for probability
/// vectors where the normalization constraint replaces one equation.
void NormalizeL1(Vector* x);

}  // namespace wfms::linalg

#endif  // WFMS_LINALG_VECTOR_H_

#include "markov/transient_distribution.h"

#include <cmath>

#include "linalg/dense_matrix.h"

namespace wfms::markov {

using linalg::DenseMatrix;
using linalg::Vector;

Result<Vector> TransientDistribution(const AbsorbingCtmc& chain, double t,
                                     const TransientOptions& options) {
  if (t < 0.0 || !std::isfinite(t)) {
    return Status::InvalidArgument("time must be finite and non-negative");
  }
  const size_t n = chain.num_states();
  Vector p(n, 0.0);
  p[chain.initial_state()] = 1.0;
  if (t == 0.0) return p;

  const double v = chain.UniformizationRate();
  const double vt = v * t;
  const DenseMatrix u_matrix = chain.UniformizedTransitionMatrix();

  // Poisson(vt) weights computed iteratively; for large vt start the
  // recursion in log space to avoid underflow of the z=0 term.
  Vector result(n, 0.0);
  double log_weight = -vt;  // log Poisson(vt; 0)
  double accumulated = 0.0;
  for (int z = 0; z < options.max_terms; ++z) {
    const double weight = std::exp(log_weight);
    if (weight > 0.0) {
      for (size_t i = 0; i < n; ++i) result[i] += weight * p[i];
      accumulated += weight;
    }
    // Terminate when the remaining Poisson mass is negligible. The second
    // disjunct handles rounding: for large vt the accumulated weights sum
    // to 1 only up to ~1e-12 of floating-point error, so once past the
    // Poisson mode with underflowing weights the series is done.
    const bool tail_reached = 1.0 - accumulated < options.tail_tolerance;
    const bool past_mode_underflow =
        static_cast<double>(z) > vt && weight < 1e-17;
    if (tail_reached || past_mode_underflow) {
      // Assign the (negligible) remaining mass to the current iterate so
      // the result stays a proper distribution.
      const double tail = std::max(0.0, 1.0 - accumulated);
      for (size_t i = 0; i < n; ++i) result[i] += tail * p[i];
      return result;
    }
    p = u_matrix.MultiplyTransposed(p);  // p <- p P~
    log_weight += std::log(vt) - std::log(static_cast<double>(z) + 1.0);
  }
  return Status::NumericError(
      "uniformization series did not converge within max_terms");
}

Result<double> CompletionProbabilityByTime(const AbsorbingCtmc& chain,
                                           double t,
                                           const TransientOptions& options) {
  WFMS_ASSIGN_OR_RETURN(Vector p, TransientDistribution(chain, t, options));
  return p[chain.absorbing_state()];
}

Result<double> TurnaroundQuantile(const AbsorbingCtmc& chain, double quantile,
                                  double tolerance,
                                  const TransientOptions& options) {
  if (quantile <= 0.0 || quantile >= 1.0) {
    return Status::InvalidArgument("quantile must be in (0, 1)");
  }
  if (!(tolerance > 0.0)) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  // Exponential search for an upper bound, then bisection.
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    WFMS_ASSIGN_OR_RETURN(double prob,
                          CompletionProbabilityByTime(chain, hi, options));
    if (prob >= quantile) break;
    lo = hi;
    hi *= 2.0;
    if (i == 199) {
      return Status::NumericError("quantile upper-bound search diverged");
    }
  }
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    WFMS_ASSIGN_OR_RETURN(double prob,
                          CompletionProbabilityByTime(chain, mid, options));
    if (prob >= quantile) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace wfms::markov

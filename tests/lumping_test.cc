// Property sweep for the lumping-based model reduction: on randomly
// generated exactly-lumpable CTMCs, the lumped solve must agree with the
// unlumped solve on every aggregated (per-block) measure to within 1e-10,
// and the expanded full-length vector must satisfy the full chain's
// balance equations. Plus unit coverage of the partition refinement, the
// quotient construction, and the exchangeable-dimension seed labels.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "markov/ctmc.h"
#include "markov/lumping.h"
#include "markov/state_space.h"
#include "markov/steady_state.h"

namespace wfms::markov {
namespace {

using linalg::Vector;

struct LumpableChain {
  Ctmc chain;
  /// The partition the chain was constructed around; the refinement may
  /// legitimately find a *coarser* stable partition, never a finer valid
  /// one that disagrees on aggregates.
  std::vector<uint32_t> built_block_of;
  size_t built_blocks = 0;
};

/// Random exactly-lumpable chain: draw a random irreducible quotient on m
/// blocks, give every block a size, and blow each quotient arc B -> C of
/// rate r up into |B| * |C| arcs of rate r / |C|. Every state in B then
/// sends exactly r into C (ordinary lumpability) and every state in C
/// receives exactly |B| r / |C| from B (exact lumpability) — both
/// bit-for-bit, since all the expanded arcs share one double value.
LumpableChain MakeLumpableChain(uint64_t seed) {
  Rng rng(seed);
  const size_t m = 3 + rng.NextUint64(6);  // quotient blocks
  std::vector<size_t> block_size(m), block_start(m);
  size_t n = 0;
  for (size_t b = 0; b < m; ++b) {
    block_start[b] = n;
    block_size[b] = 1 + rng.NextUint64(4);
    n += block_size[b];
  }

  // Quotient rates: a cycle guarantees irreducibility, extra arcs add
  // structure.
  std::vector<std::vector<double>> q(m, std::vector<double>(m, 0.0));
  for (size_t b = 0; b < m; ++b) {
    q[b][(b + 1) % m] = rng.NextDouble(0.2, 4.0);
    for (size_t c = 0; c < m; ++c) {
      if (c == b || q[b][c] != 0.0) continue;
      if (rng.NextBernoulli(0.4)) q[b][c] = rng.NextDouble(0.1, 2.0);
    }
  }

  std::vector<uint32_t> built_block_of(n);
  CtmcBuilder builder(n);
  for (size_t b = 0; b < m; ++b) {
    for (size_t i = 0; i < block_size[b]; ++i) {
      built_block_of[block_start[b] + i] = static_cast<uint32_t>(b);
    }
    for (size_t c = 0; c < m; ++c) {
      if (q[b][c] == 0.0) continue;
      const double per_target = q[b][c] / static_cast<double>(block_size[c]);
      for (size_t i = 0; i < block_size[b]; ++i) {
        for (size_t j = 0; j < block_size[c]; ++j) {
          EXPECT_TRUE(builder
                          .AddTransition(block_start[b] + i,
                                         block_start[c] + j, per_target)
                          .ok());
        }
      }
    }
  }
  auto chain = builder.Build();
  EXPECT_TRUE(chain.ok()) << chain.status();
  return LumpableChain{*std::move(chain), std::move(built_block_of), m};
}

TEST(LumpingTest, LumpedSteadyStateMatchesUnlumpedOnAggregates) {
  for (uint64_t trial = 0; trial < 100; ++trial) {
    const LumpableChain problem = MakeLumpableChain(100 + trial);
    const size_t n = problem.chain.num_states();

    SteadyStateOptions direct;
    direct.lumping = LumpingMode::kOff;
    auto unlumped = SolveSteadyState(problem.chain, direct);
    ASSERT_TRUE(unlumped.ok()) << unlumped.status();
    ASSERT_FALSE(unlumped->lumping_applied);

    SteadyStateOptions lumped_options;
    lumped_options.lumping = LumpingMode::kOn;
    auto lumped = SolveSteadyState(problem.chain, lumped_options);
    ASSERT_TRUE(lumped.ok()) << lumped.status();
    ASSERT_EQ(lumped->pi.size(), n);

    // The construction leaves at least one genuinely mergeable block in
    // almost every trial; when states did merge, the solver must say so.
    if (lumped->lumping_applied) {
      EXPECT_LT(lumped->lumped_states, n);
      EXPECT_GT(lumped->lumped_states, 0u);
    }

    // Aggregated measures (block probabilities) must agree to 1e-10.
    std::vector<double> agg_unlumped(problem.built_blocks, 0.0);
    std::vector<double> agg_lumped(problem.built_blocks, 0.0);
    for (size_t i = 0; i < n; ++i) {
      agg_unlumped[problem.built_block_of[i]] += unlumped->pi[i];
      agg_lumped[problem.built_block_of[i]] += lumped->pi[i];
    }
    for (size_t b = 0; b < problem.built_blocks; ++b) {
      ASSERT_NEAR(agg_lumped[b], agg_unlumped[b], 1e-10)
          << "trial " << trial << " block " << b << " (lumping_applied="
          << lumped->lumping_applied << ")";
    }
  }
}

TEST(LumpingTest, PartitionRefinementFindsConstructedBlocks) {
  for (uint64_t trial = 0; trial < 20; ++trial) {
    const LumpableChain problem = MakeLumpableChain(900 + trial);
    const auto incoming = problem.chain.rates().Transposed();
    auto partition = FindLumpablePartition(problem.chain, incoming);
    ASSERT_TRUE(partition.ok()) << partition.status();
    // The refinement converges to a *stable* partition at least as coarse
    // as singletons; it must never produce more blocks than states, and
    // expanding + restricting through it must round-trip block masses.
    ASSERT_EQ(partition->num_states(), problem.chain.num_states());
    ASSERT_LE(partition->num_blocks(), problem.chain.num_states());
    size_t member_total = 0;
    for (uint32_t s : partition->block_size) member_total += s;
    EXPECT_EQ(member_total, partition->num_states());

    Vector quotient_pi(partition->num_blocks());
    Rng rng(40 + trial);
    double sum = 0.0;
    for (double& v : quotient_pi) {
      v = rng.NextDouble(0.1, 1.0);
      sum += v;
    }
    for (double& v : quotient_pi) v /= sum;
    const Vector full = ExpandUniform(*partition, quotient_pi);
    const Vector back = RestrictToQuotient(*partition, full);
    for (size_t b = 0; b < quotient_pi.size(); ++b) {
      EXPECT_NEAR(back[b], quotient_pi[b], 1e-14);
    }
  }
}

TEST(LumpingTest, QuotientPreservesTotalRatesOfRepresentatives) {
  const LumpableChain problem = MakeLumpableChain(4242);
  const auto incoming = problem.chain.rates().Transposed();
  auto partition = FindLumpablePartition(problem.chain, incoming);
  ASSERT_TRUE(partition.ok());
  auto quotient = BuildQuotient(problem.chain, *partition);
  ASSERT_TRUE(quotient.ok()) << quotient.status();
  ASSERT_EQ(quotient->num_states(), partition->num_blocks());
  // Each quotient state's exit rate equals its representative's rate out
  // of its own block (within-block arcs vanish).
  for (size_t i = 0; i < problem.chain.num_states(); ++i) {
    const uint32_t b = partition->block_of[i];
    double cross_block = 0.0;
    const auto& offsets = problem.chain.rates().row_offsets();
    const auto& cols = problem.chain.rates().col_indices();
    const auto& values = problem.chain.rates().values();
    for (size_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      if (partition->block_of[cols[k]] != b) cross_block += values[k];
    }
    EXPECT_NEAR(quotient->exit_rates()[b], cross_block, 1e-12)
        << "state " << i;
  }
}

TEST(LumpingTest, SeedLabelsSplitStatesTheSeedDistinguishes) {
  // Two states with identical dynamics but different seed labels must not
  // merge: the seed is a hard constraint, not a hint.
  CtmcBuilder builder(2);
  ASSERT_TRUE(builder.AddTransition(0, 1, 1.0).ok());
  ASSERT_TRUE(builder.AddTransition(1, 0, 1.0).ok());
  auto chain = builder.Build();
  ASSERT_TRUE(chain.ok());
  const auto incoming = chain->rates().Transposed();

  auto unseeded = FindLumpablePartition(*chain, incoming);
  ASSERT_TRUE(unseeded.ok());
  EXPECT_EQ(unseeded->num_blocks(), 1u);

  const std::vector<uint32_t> seed = {0, 1};
  LumpingOptions options;
  options.seed_labels = &seed;
  auto seeded = FindLumpablePartition(*chain, incoming, options);
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(seeded->num_blocks(), 2u);
}

TEST(LumpingTest, ExchangeableStateLabelsCanonicalizeOrbits) {
  // Two exchangeable dimensions (same signature, same bound): states
  // (a, b) and (b, a) share a label; a third, distinct dimension breaks
  // the symmetry.
  auto space = MixedRadixSpace::Create({2, 2, 1});
  ASSERT_TRUE(space.ok());
  auto labels = ExchangeableStateLabels(*space, {7, 7, 9});
  ASSERT_TRUE(labels.ok()) << labels.status();
  ASSERT_EQ(labels->size(), space->size());
  const size_t ab = space->EncodeUnchecked({1, 2, 0});
  const size_t ba = space->EncodeUnchecked({2, 1, 0});
  const size_t other = space->EncodeUnchecked({2, 1, 1});
  EXPECT_EQ((*labels)[ab], (*labels)[ba]);
  EXPECT_NE((*labels)[ab], (*labels)[other]);

  // Mismatched bounds within a signature class are an error.
  auto bad = ExchangeableStateLabels(*space, {7, 9, 7});
  EXPECT_FALSE(bad.ok());
}

TEST(LumpingTest, AutoModeSkipsSmallChains) {
  const LumpableChain problem = MakeLumpableChain(55);
  SteadyStateOptions options;
  options.lumping = LumpingMode::kAuto;  // default threshold is 32768 states
  auto solved = SolveSteadyState(problem.chain, options);
  ASSERT_TRUE(solved.ok());
  EXPECT_FALSE(solved->lumping_applied);
}

TEST(LumpingTest, ModeNamesRoundTrip) {
  EXPECT_STREQ(LumpingModeName(LumpingMode::kOff), "off");
  EXPECT_STREQ(LumpingModeName(LumpingMode::kAuto), "auto");
  EXPECT_STREQ(LumpingModeName(LumpingMode::kOn), "on");
}

}  // namespace
}  // namespace wfms::markov

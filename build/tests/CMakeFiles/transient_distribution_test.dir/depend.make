# Empty dependencies file for transient_distribution_test.
# This may be replaced when dependencies are built.

#include "markov/dtmc.h"

#include <cmath>

#include "linalg/lu_solver.h"

namespace wfms::markov {

using linalg::DenseMatrix;
using linalg::Vector;

Result<Dtmc> Dtmc::Create(DenseMatrix p, std::vector<std::string> state_names,
                          double tolerance) {
  if (p.rows() != p.cols()) {
    return Status::InvalidArgument("transition matrix must be square");
  }
  if (state_names.size() != p.rows()) {
    return Status::InvalidArgument("state name count does not match matrix");
  }
  for (size_t r = 0; r < p.rows(); ++r) {
    double row_sum = 0.0;
    for (size_t c = 0; c < p.cols(); ++c) {
      if (p.At(r, c) < 0.0) {
        return Status::InvalidArgument(
            "negative transition probability in row '" + state_names[r] + "'");
      }
      row_sum += p.At(r, c);
    }
    if (std::fabs(row_sum - 1.0) > tolerance) {
      return Status::InvalidArgument("row '" + state_names[r] +
                                     "' sums to " + std::to_string(row_sum) +
                                     ", expected 1");
    }
    // Renormalize exactly so later analyses see clean rows.
    for (size_t c = 0; c < p.cols(); ++c) p.At(r, c) /= row_sum;
  }
  return Dtmc(std::move(p), std::move(state_names));
}

Result<size_t> Dtmc::StateIndex(const std::string& name) const {
  for (size_t i = 0; i < state_names_.size(); ++i) {
    if (state_names_[i] == name) return i;
  }
  return Status::NotFound("no state named '" + name + "'");
}

bool Dtmc::IsAbsorbing(size_t i) const { return p_.At(i, i) == 1.0; }

std::vector<size_t> Dtmc::AbsorbingStates() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < num_states(); ++i) {
    if (IsAbsorbing(i)) out.push_back(i);
  }
  return out;
}

namespace {

/// Builds (I - P_T) over the transient states; `transient` maps the
/// compacted index back to the full state index.
DenseMatrix BuildIMinusPt(const DenseMatrix& p,
                          const std::vector<size_t>& transient) {
  const size_t m = transient.size();
  DenseMatrix a(m, m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      a.At(i, j) = (i == j ? 1.0 : 0.0) - p.At(transient[i], transient[j]);
    }
  }
  return a;
}

}  // namespace

Result<Vector> Dtmc::ExpectedVisitsUntilAbsorption(size_t start) const {
  if (start >= num_states()) {
    return Status::OutOfRange("start state out of range");
  }
  std::vector<size_t> transient;
  std::vector<size_t> compact(num_states(), SIZE_MAX);
  for (size_t i = 0; i < num_states(); ++i) {
    if (!IsAbsorbing(i)) {
      compact[i] = transient.size();
      transient.push_back(i);
    }
  }
  Vector visits(num_states(), 0.0);
  if (compact[start] == SIZE_MAX) return visits;  // started absorbed

  // Row `start` of N = (I - P_T)^{-1}: solve (I - P_T)^T y = e_start, since
  // N_{start,b} = e_start^T N e_b and we want the whole row at once.
  const DenseMatrix a = BuildIMinusPt(p_, transient).Transposed();
  Vector e(transient.size(), 0.0);
  e[compact[start]] = 1.0;
  auto solved = linalg::LuSolve(a, e);
  if (!solved.ok()) {
    return solved.status().WithContext(
        "chain has transient states with no path to absorption");
  }
  for (size_t j = 0; j < transient.size(); ++j) {
    visits[transient[j]] = (*solved)[j];
  }
  return visits;
}

Result<Vector> Dtmc::AbsorptionProbabilities(size_t start) const {
  if (start >= num_states()) {
    return Status::OutOfRange("start state out of range");
  }
  WFMS_ASSIGN_OR_RETURN(Vector visits, ExpectedVisitsUntilAbsorption(start));
  Vector probs(num_states(), 0.0);
  const auto absorbing = AbsorbingStates();
  if (IsAbsorbing(start)) {
    probs[start] = 1.0;
    return probs;
  }
  // B = N R with R the transient-to-absorbing block.
  for (size_t a : absorbing) {
    double prob = 0.0;
    for (size_t t = 0; t < num_states(); ++t) {
      if (!IsAbsorbing(t)) prob += visits[t] * p_.At(t, a);
    }
    probs[a] = prob;
  }
  return probs;
}

Vector Dtmc::DistributionAfter(size_t start, int steps) const {
  Vector dist(num_states(), 0.0);
  dist[start] = 1.0;
  for (int s = 0; s < steps; ++s) {
    dist = p_.MultiplyTransposed(dist);
  }
  return dist;
}

}  // namespace wfms::markov

// E5 — §4.4 waiting times: M/G/1 mean waiting time per server type as the
// EP arrival rate grows, for 1-3 replicas, with a discrete-event
// simulation column validating the analytic curve. The M/G/1 prediction
// assumes Poisson request arrivals; the simulator issues Fig.-1-style
// bursts (2-3 requests per activity), so the observed waits sit somewhat
// above the analytic curve — same shape, same saturation point.

#include <cmath>
#include <cstdio>

#include "perf/performance_model.h"
#include "sim/simulator.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;
  std::printf("E5: app-server mean waiting time [s] vs arrival rate "
              "(analytic M/G/1 vs simulation)\n\n");
  std::printf("%-10s", "rate/min");
  for (int y = 1; y <= 3; ++y) {
    std::printf(" | Y=%d analytic  sim", y);
  }
  std::printf("\n");

  for (double rate : {0.25, 0.5, 0.75, 1.0, 1.25}) {
    auto env = workflow::EpEnvironment(rate);
    if (!env.ok()) return 1;
    auto model = perf::PerformanceModel::Create(*env);
    if (!model.ok()) return 1;
    std::printf("%-10.2f", rate);
    for (int y = 1; y <= 3; ++y) {
      const workflow::Configuration config({1, y, y});
      auto analytic = model->EvaluateWaitingTimes(config);
      double predicted = std::nan("");
      if (analytic.ok() && !analytic->servers[2].saturated) {
        predicted = analytic->servers[2].mean_waiting_time * 60.0;
      }
      sim::SimulationOptions options;
      options.config = config;
      options.duration = 30000.0;
      options.warmup = 5000.0;
      options.enable_failures = false;
      options.seed = 42 + y;
      double observed = std::nan("");
      auto simulator = sim::Simulator::Create(*env, options);
      if (simulator.ok()) {
        auto result = simulator->Run();
        if (result.ok() && result->servers[2].waiting_time.count() > 0) {
          observed = result->servers[2].waiting_time.mean() * 60.0;
        }
      }
      if (std::isnan(predicted)) {
        std::printf(" |   saturated %5.1f", observed);
      } else {
        std::printf(" |  %6.2f    %6.2f", predicted, observed);
      }
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: hockey-stick growth toward the "
              "saturation rate; each added replica pushes the knee right "
              "and divides the per-server load by Y.\n");
  return 0;
}

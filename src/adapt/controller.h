// The decision core of the adaptive reconfiguration loop (§7's feedback
// vision): at every control-period boundary the controller
//
//   1. feeds the drift detectors from the online estimates and checks the
//      observed turnaround / availability directly against the goals,
//   2. applies hysteresis (consecutive triggered evaluations) and a
//      cooldown window so one noisy period cannot flap the system,
//   3. rebuilds the Environment from the online estimators and re-invokes
//      the §7 configuration search — reusing the assessment memoization
//      cache across control periods (and optionally the on-disk search
//      checkpoint) so repeated searches under an unchanged regime cost
//      almost nothing,
//   4. emits a ReconfigurationPlan (replication delta, migration cost,
//      predicted goal margins) and applies it only when the predicted
//      improvement clears the minimum-improvement threshold.
//
// Everything the controller decides is mirrored into the metrics registry
// (wfms_adapt_*) and wrapped in trace spans, so a --metrics-out /
// --trace-out run shows each evaluation, trigger, search, and
// reconfiguration.
#ifndef WFMS_ADAPT_CONTROLLER_H_
#define WFMS_ADAPT_CONTROLLER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adapt/drift.h"
#include "adapt/online_estimator.h"
#include "common/result.h"
#include "configtool/tool.h"
#include "workflow/configuration.h"
#include "workflow/environment.h"

namespace wfms::adapt {

enum class SearchMethod { kGreedy, kExhaustive, kAnnealing, kBranchAndBound };

const char* SearchMethodName(SearchMethod method);
Result<SearchMethod> ParseSearchMethod(const std::string& name);

struct ControllerOptions {
  configtool::Goals goals;
  configtool::SearchConstraints constraints;
  configtool::CostModel cost = configtool::CostModel::Uniform();
  SearchMethod method = SearchMethod::kGreedy;
  configtool::AnnealingOptions annealing;

  /// Direct SLO on the *observed* mean turnaround (model time units);
  /// <= 0 disables the check. This is the goal the operator actually
  /// feels — it catches load shifts even before the drift detectors do.
  double max_turnaround = 0.0;

  /// Drift detection on normalized estimates (estimate / designed value).
  PageHinkleyOptions drift;

  /// Evaluations that must trigger back-to-back before a search runs.
  int hysteresis = 2;
  /// Minimum model time between reconfigurations.
  double cooldown = 0.0;
  /// A grow plan is applied only when the current configuration misses
  /// the goals or its predicted margin falls below this; a shrink plan
  /// only when it nets at least this much cost saving after migration.
  double min_margin_gain = 0.05;
  /// Migration cost charged per replica added or removed (same unit as
  /// the cost model).
  double migration_cost_per_server = 0.5;

  /// Estimates backed by fewer observations than this neither feed the
  /// drift detectors nor count as goal violations.
  int min_observations = 10;

  /// Request-trace context the controller runs under (DESIGN.md §13):
  /// parents the evaluate/search spans, and re-parents into the
  /// reconfiguration searches' SearchOptions. Invalid (default) outside a
  /// traced request.
  trace::TraceContext trace;

  /// Non-empty: the search persists/reuses its assessment cache on disk
  /// via configtool/checkpoint.h, surviving a crash of the whole loop.
  std::string checkpoint_path;

  /// Wall-clock cap for each reconfiguration search (seconds); <= 0 means
  /// unlimited. Propagated into SearchOptions::deadline_seconds, so it
  /// also bounds each candidate's steady-state solve — a slow period
  /// yields a best-so-far plan instead of stalling the control loop.
  double search_deadline_seconds = 0.0;
};

/// Predicted safety margins of a configuration, normalized so 0 is "at
/// the goal boundary" and negative is "violating".
struct GoalMargins {
  /// min over server types of (threshold_x - W_x) / threshold_x.
  double waiting = 0.0;
  /// (availability - min_availability) / (1 - min_availability).
  double availability = 0.0;

  double Min() const { return waiting < availability ? waiting : availability; }
};

/// What a reconfiguration would do — the §7.1 "recommendation", extended
/// with the delta and the predicted effect the closed loop needs.
struct ReconfigurationPlan {
  workflow::Configuration from;
  workflow::Configuration to;
  /// to - from, per server type.
  std::vector<int> delta;
  int replicas_added = 0;
  int replicas_removed = 0;
  double migration_cost = 0.0;
  /// Steady-state cost of `to` under the cost model.
  double new_cost = 0.0;
  double old_cost = 0.0;
  /// Margins of `to` as predicted by the analytic models on the rebuilt
  /// environment.
  GoalMargins predicted;
  bool predicted_satisfied = false;
  int search_evaluations = 0;
  int search_cache_hits = 0;

  std::string ToString() const;
};

/// Outcome of one control-period evaluation.
struct ControllerDecision {
  double time = 0.0;
  /// Parameters whose drift detector is triggered ("arrival:<wf>",
  /// "service:<server type>").
  std::vector<std::string> drifted;
  bool goal_violation = false;
  /// Human-readable violation/trigger summary.
  std::string trigger_reason;
  /// Consecutive triggered evaluations including this one (0 when calm).
  int consecutive_triggers = 0;
  bool searched = false;
  bool reconfigured = false;
  /// Why the decision came out the way it did.
  std::string reason;
  /// Valid iff `searched`.
  ReconfigurationPlan plan;
};

class ReconfigurationController {
 public:
  /// `designed` is the designed model (baseline for drift detection and
  /// calibration prior); must outlive the controller. `initial` is the
  /// configuration the system currently runs.
  ReconfigurationController(const workflow::Environment* designed,
                            workflow::Configuration initial,
                            ControllerOptions options,
                            OnlineCalibratorOptions calibrator_options = {});

  /// Feeds one monitored event (call in stream order, single-threaded).
  void Observe(const AuditEvent& event);

  /// Control-period boundary: runs the detect → (maybe) search → (maybe)
  /// reconfigure pipeline at model time `now`.
  Result<ControllerDecision> Evaluate(double now);

  const workflow::Configuration& current_config() const { return current_; }
  const OnlineCalibrator& calibrator() const { return calibrator_; }
  const std::vector<ControllerDecision>& decisions() const {
    return decisions_;
  }
  /// Plans actually applied, in application order.
  std::vector<ReconfigurationPlan> applied_plans() const;

 private:
  /// Margins of an assessment under the controller's goals.
  GoalMargins MarginsOf(const configtool::Assessment& assessment) const;
  /// Feeds detectors, checks observed SLOs; fills decision.drifted /
  /// goal_violation / trigger_reason. Returns whether anything triggered.
  bool DetectTriggers(double now, ControllerDecision* decision);
  /// Rebuild + search + gate. Fills decision.searched/plan/reason and
  /// flips decision.reconfigured when the plan is applied.
  Status RunSearch(double now, ControllerDecision* decision);
  void Rebaseline(const workflow::Environment& regime);

  const workflow::Environment* designed_;
  ControllerOptions options_;
  workflow::Configuration current_;
  OnlineCalibrator calibrator_;

  std::vector<DriftMonitor> monitors_;  // arrival per wf, service per type
  int consecutive_triggers_ = 0;
  bool have_reconfigured_ = false;
  double last_reconfig_time_ = 0.0;

  /// Assessment-cache carryover between control periods: valid while the
  /// rebuilt environment hashes to `cache_fingerprint_`.
  std::optional<configtool::ConfigurationTool::CacheDump> cache_;
  uint64_t cache_fingerprint_ = 0;

  std::vector<ControllerDecision> decisions_;
};

}  // namespace wfms::adapt

#endif  // WFMS_ADAPT_CONTROLLER_H_

# Determinism gate for the geo example programs: run the binary twice and
# fail unless both runs exit 0 with byte-identical stdout (fixed seeds and
# single-lane searches make the outputs reproducible by construction).
# Usage: cmake -DEXE=<path> -P run_twice_compare.cmake
if(NOT DEFINED EXE)
  message(FATAL_ERROR "pass -DEXE=<path-to-example-binary>")
endif()
execute_process(COMMAND "${EXE}" OUTPUT_VARIABLE first_out
                RESULT_VARIABLE first_code)
if(NOT first_code EQUAL 0)
  message(FATAL_ERROR "${EXE} exited ${first_code} on the first run")
endif()
execute_process(COMMAND "${EXE}" OUTPUT_VARIABLE second_out
                RESULT_VARIABLE second_code)
if(NOT second_code EQUAL 0)
  message(FATAL_ERROR "${EXE} exited ${second_code} on the second run")
endif()
if(NOT first_out STREQUAL second_out)
  message(FATAL_ERROR "${EXE} output differs between runs:\n"
                      "--- first ---\n${first_out}\n"
                      "--- second ---\n${second_out}")
endif()

file(REMOVE_RECURSE
  "CMakeFiles/wfms_linalg.dir/dense_matrix.cc.o"
  "CMakeFiles/wfms_linalg.dir/dense_matrix.cc.o.d"
  "CMakeFiles/wfms_linalg.dir/iterative_solver.cc.o"
  "CMakeFiles/wfms_linalg.dir/iterative_solver.cc.o.d"
  "CMakeFiles/wfms_linalg.dir/lu_solver.cc.o"
  "CMakeFiles/wfms_linalg.dir/lu_solver.cc.o.d"
  "CMakeFiles/wfms_linalg.dir/sparse_matrix.cc.o"
  "CMakeFiles/wfms_linalg.dir/sparse_matrix.cc.o.d"
  "CMakeFiles/wfms_linalg.dir/vector.cc.o"
  "CMakeFiles/wfms_linalg.dir/vector.cc.o.d"
  "libwfms_linalg.a"
  "libwfms_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

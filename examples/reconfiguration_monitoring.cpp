// The dynamic reconfiguration loop of §7.1: an operational WFMS is
// monitored (here: simulated), the audit trail re-calibrates the models,
// and the tool decides whether the current configuration still meets the
// goals — recommending a new one when the real workload has drifted from
// the designed assumptions.
//
// Scenario: the EP workflow was *designed* assuming 0.5 arrivals/min and
// a 20% dunning loop, but in production customers pay late twice as often
// (40% loop) and load has grown to 1.5/min.
//
// Build & run:  ./build/examples/reconfiguration_monitoring

#include <cstdio>

#include "common/time_units.h"
#include "configtool/tool.h"
#include "sim/simulator.h"
#include "statechart/builder.h"
#include "statechart/parser.h"
#include "workflow/calibration.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;

  // The environment the system was designed with.
  auto designed = workflow::EpEnvironment(/*arrival_rate=*/0.5);
  if (!designed.ok()) return 1;

  // The production reality: heavier load, more dunning iterations.
  auto production = workflow::EpEnvironment(/*arrival_rate=*/1.5);
  if (!production.ok()) return 1;
  {
    auto charts = statechart::ParseCharts(workflow::EpChartsDsl());
    // Rebuild the EP chart with a 40% loop back to SendInvoice.
    const statechart::StateChart* ep = *charts->GetChart("EP");
    statechart::ChartBuilder patched("EP");
    for (const auto& s : ep->states()) {
      if (s.kind == statechart::StateKind::kComposite) {
        patched.AddCompositeState(s.name, s.subcharts);
      } else {
        patched.AddActivityState(s.name, s.activity, s.residence_time);
      }
    }
    patched.SetInitial(ep->initial_state()).SetFinal(ep->final_state());
    for (const auto& t : ep->transitions()) {
      double p = t.probability;
      if (t.from == "CollectPayment") p = (t.to == "SendInvoice") ? 0.4 : 0.6;
      patched.AddTransition(t.from, t.to, p, t.rule);
    }
    statechart::ChartRegistry registry;
    (void)registry.AddChart(*patched.Build());
    (void)registry.AddChart(**charts->GetChart("Notify"));
    (void)registry.AddChart(**charts->GetChart("Delivery"));
    production->charts = std::move(registry);
  }

  configtool::Goals goals;
  goals.max_waiting_time = 0.05;
  goals.min_availability = 0.99999;

  // The configuration recommended at design time.
  auto design_tool = configtool::ConfigurationTool::Create(*designed);
  if (!design_tool.ok()) return 1;
  auto initial = design_tool->GreedyMinCost(goals);
  if (!initial.ok()) return 1;
  std::printf("design-time recommendation: %s (cost %.0f)\n",
              initial->config.ToString().c_str(), initial->cost);

  // Run "production" for a month of simulated time, recording the audit
  // trail the monitoring component would collect.
  sim::SimulationOptions sim_options;
  sim_options.config = initial->config;
  sim_options.duration = 43200.0;  // one month in minutes
  sim_options.warmup = 2000.0;
  sim_options.record_audit_trail = true;
  sim_options.seed = 2026;
  auto simulator = sim::Simulator::Create(*production, sim_options);
  if (!simulator.ok()) return 1;
  auto observed = simulator->Run();
  if (!observed.ok()) return 1;
  std::printf("observed month: %lld EP instances, engine W = %s, "
              "availability %.6f\n",
              static_cast<long long>(observed->workflows.at("EP").completed),
              FormatMinutes(observed->servers[1].waiting_time.mean()).c_str(),
              observed->observed_availability);

  // Calibrate the *designed* model from the observed trail (§7.1).
  workflow::CalibrationReport report;
  auto calibrated =
      workflow::CalibrateEnvironment(*designed, observed->trail, {}, &report);
  if (!calibrated.ok()) {
    std::fprintf(stderr, "%s\n", calibrated.status().ToString().c_str());
    return 1;
  }
  std::printf("calibration: %d states re-estimated, arrival rate now "
              "%.3f/min\n",
              report.states_recalibrated,
              calibrated->workflows[0].arrival_rate);
  const auto* ep = *calibrated->charts.GetChart("EP");
  for (const auto* t : ep->OutgoingTransitions("CollectPayment")) {
    std::printf("  CollectPayment -> %-12s p = %.3f\n", t->to.c_str(),
                t->probability);
  }

  // Re-assess and re-recommend on the calibrated model.
  auto prod_tool = configtool::ConfigurationTool::Create(*calibrated);
  if (!prod_tool.ok()) return 1;
  auto current = prod_tool->Assess(initial->config, goals);
  if (!current.ok()) return 1;
  std::printf("\ncurrent configuration %s now %s\n",
              initial->config.ToString().c_str(),
              current->Satisfies() ? "still meets the goals"
                                   : "VIOLATES the goals");
  if (!current->Satisfies()) {
    auto reconfigured = prod_tool->GreedyMinCost(goals);
    if (reconfigured.ok()) {
      std::printf("\n%s\n",
                  prod_tool->RenderRecommendation(*reconfigured).c_str());
    }
  }
  return 0;
}

#include "common/statistics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/time_units.h"

namespace wfms {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.second_moment(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.second_moment(), 25.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance 4 -> sample variance 4 * 8/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.second_moment(), 29.0, 1e-12);  // E[X^2] = Var_pop + mean^2
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    all.Add(x);
    (i < 37 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  const double mean = a.mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.Merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStatsTest, ConfidenceIntervalShrinks) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.Add(i % 3);
  for (int i = 0; i < 1000; ++i) large.Add(i % 3);
  EXPECT_GT(small.ConfidenceHalfWidth(0.95), large.ConfidenceHalfWidth(0.95));
  EXPECT_GT(large.ConfidenceHalfWidth(0.99), large.ConfidenceHalfWidth(0.95));
  EXPECT_GT(large.ConfidenceHalfWidth(0.95), large.ConfidenceHalfWidth(0.90));
}

TEST(RunningStatsTest, ScvOfConstantIsZero) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.Add(4.0);
  EXPECT_DOUBLE_EQ(s.scv(), 0.0);
}

TEST(TimeWeightedStatsTest, PiecewiseConstantAverage) {
  TimeWeightedStats tw;
  tw.Update(0.0, 2.0);   // value 2 on [0, 4)
  tw.Update(4.0, 6.0);   // value 6 on [4, 6)
  tw.Finish(6.0);
  // (2*4 + 6*2) / 6 = 20/6
  EXPECT_NEAR(tw.time_average(), 20.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(tw.total_time(), 6.0);
}

TEST(TimeWeightedStatsTest, NoObservationIsZero) {
  TimeWeightedStats tw;
  EXPECT_DOUBLE_EQ(tw.time_average(), 0.0);
}

TEST(TimeWeightedStatsTest, ZeroWidthUpdatesIgnored) {
  TimeWeightedStats tw;
  tw.Update(1.0, 5.0);
  tw.Update(1.0, 7.0);  // same instant; no weight for value 5
  tw.Finish(3.0);
  EXPECT_NEAR(tw.time_average(), 7.0, 1e-12);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-1.0);
  h.Add(0.0);
  h.Add(5.5);
  h.Add(9.999);
  h.Add(10.0);
  h.Add(42.0);
  EXPECT_EQ(h.total_count(), 6);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(5), 1);
  EXPECT_EQ(h.bucket_count(9), 1);
}

TEST(HistogramTest, QuantileApproximatesUniform) {
  Histogram h(0.0, 1.0, 100);
  for (int i = 0; i < 10000; ++i) h.Add((i + 0.5) / 10000.0);
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.Quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.Quantile(0.99), 0.99, 0.02);
}

TEST(TimeUnitsTest, PaperRateConstants) {
  // The paper quotes one failure per month = (43200 min)^-1 etc.
  EXPECT_DOUBLE_EQ(kMinutesPerMonth, 43200.0);
  EXPECT_DOUBLE_EQ(kMinutesPerWeek, 10080.0);
  EXPECT_DOUBLE_EQ(kMinutesPerDay, 1440.0);
}

TEST(TimeUnitsTest, DowntimeConversion) {
  // Unavailability of 1 means the whole year is downtime.
  EXPECT_DOUBLE_EQ(UnavailabilityToDowntimeMinutesPerYear(1.0),
                   kMinutesPerYear);
  // 71 hours/year corresponds to unavailability ~ 8.1e-3.
  const double u = HoursToMinutes(71.0) / kMinutesPerYear;
  EXPECT_NEAR(UnavailabilityToDowntimeMinutesPerYear(u) / 60.0, 71.0, 1e-9);
}

TEST(TimeUnitsTest, FormatPicksUnits) {
  EXPECT_EQ(FormatMinutes(120.0), "2 h");
  EXPECT_EQ(FormatMinutes(0.5), "30 s");
  EXPECT_EQ(FormatMinutes(2880.0), "2 d");
  EXPECT_EQ(FormatMinutes(30.0), "30 min");
}

}  // namespace
}  // namespace wfms

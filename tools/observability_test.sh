#!/usr/bin/env bash
# End-to-end check of the observability surface:
#   1. `recommend --verbose --metrics-out --trace-out` produces exports
#      that parse, validate against tools/schemas/, and agree exactly
#      with the stderr cache accounting (cross-check);
#   2. `--metrics-format=prometheus` emits parseable exposition text;
#   3. `simulate --metrics-out` records the simulator counters;
#   4. stdout without export flags is byte-identical to a plain run (the
#      run report must never leak into default output).
#
# usage: observability_test.sh <wfmsctl> <workdir>
set -eu

WFMSCTL="$1"
WORKDIR="$2/observability_test"
TOOLS_DIR="$(cd "$(dirname "$0")" && pwd)"
CHECKER="$TOOLS_DIR/check_observability.py"
SCHEMAS="$TOOLS_DIR/schemas"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

if ! command -v python3 > /dev/null; then
  echo "SKIP: python3 not available" >&2
  exit 0
fi

echo "== recommend with json metrics + trace"
"$WFMSCTL" recommend --scenario benchmark --method greedy \
    --max-wait 0.1 --min-avail 0.9999 --verbose \
    --metrics-out "$WORKDIR/metrics.json" \
    --trace-out "$WORKDIR/trace.json" \
    > "$WORKDIR/stdout.txt" 2> "$WORKDIR/stderr.txt"

python3 -m json.tool "$WORKDIR/metrics.json" > /dev/null
python3 -m json.tool "$WORKDIR/trace.json" > /dev/null
python3 "$CHECKER" validate --schema "$SCHEMAS/metrics_schema.json" \
    "$WORKDIR/metrics.json"
python3 "$CHECKER" validate --schema "$SCHEMAS/trace_schema.json" \
    "$WORKDIR/trace.json"
python3 "$CHECKER" cross-check --stderr "$WORKDIR/stderr.txt" \
    --metrics "$WORKDIR/metrics.json"
grep -q "run report:" "$WORKDIR/stdout.txt" || {
  echo "FAIL: no run report on stdout" >&2
  exit 1
}
grep -q '"configtool/greedy_search"' "$WORKDIR/trace.json" || {
  echo "FAIL: trace has no greedy search span" >&2
  exit 1
}

echo "== recommend with prometheus metrics"
"$WFMSCTL" recommend --scenario benchmark --method greedy \
    --max-wait 0.1 --min-avail 0.9999 \
    --metrics-out "$WORKDIR/metrics.prom" --metrics-format prometheus \
    > /dev/null
grep -q "^# TYPE wfms_configtool_candidates_assessed_total counter" \
    "$WORKDIR/metrics.prom"
grep -q "^wfms_configtool_assessment_seconds_bucket{le=\"+Inf\"}" \
    "$WORKDIR/metrics.prom"

echo "== simulate with metrics"
"$WFMSCTL" simulate --scenario ep --config 1,2,2 --duration 2000 \
    --no-failures --metrics-out "$WORKDIR/sim_metrics.json" > /dev/null
python3 "$CHECKER" validate --schema "$SCHEMAS/metrics_schema.json" \
    "$WORKDIR/sim_metrics.json"
python3 - "$WORKDIR/sim_metrics.json" << 'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["counters"]["wfms_sim_runs_total"] == 1, doc["counters"]
assert doc["counters"]["wfms_sim_events_total"] > 0, doc["counters"]
assert doc["gauges"]["wfms_sim_event_queue_peak"] > 0, doc["gauges"]
PYEOF

echo "== default stdout is unchanged by the observability layer"
"$WFMSCTL" recommend --scenario benchmark --method greedy \
    --max-wait 0.1 --min-avail 0.9999 > "$WORKDIR/plain.txt"
"$WFMSCTL" recommend --scenario benchmark --method greedy \
    --max-wait 0.1 --min-avail 0.9999 --verbose \
    > "$WORKDIR/verbose_stdout.txt" 2> /dev/null
diff "$WORKDIR/plain.txt" "$WORKDIR/verbose_stdout.txt"

echo "== export failure fails a successful command"
if "$WFMSCTL" analyze --scenario ep \
    --metrics-out /nonexistent_dir_zzz/metrics.json > /dev/null 2>&1; then
  echo "FAIL: unwritable --metrics-out did not fail the run" >&2
  exit 1
fi

echo "observability_test: OK"

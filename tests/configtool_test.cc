#include "configtool/tool.h"

#include <gtest/gtest.h>

#include <cmath>

#include "workflow/scenarios.h"

namespace wfms::configtool {
namespace {

using workflow::Configuration;
using workflow::Environment;

Environment MakeEnv(double rate = 1.0) {
  auto env = workflow::EpEnvironment(rate);
  EXPECT_TRUE(env.ok());
  return *std::move(env);
}

ConfigurationTool MakeTool(const Environment& env) {
  auto tool = ConfigurationTool::Create(env);
  EXPECT_TRUE(tool.ok()) << tool.status();
  return *std::move(tool);
}

Goals EasyGoals() {
  Goals goals;
  goals.max_waiting_time = 5.0;       // 5 minutes: very lax
  goals.min_availability = 0.99;      // ~3.7 days/year: very lax
  return goals;
}

Goals StrictGoals() {
  Goals goals;
  goals.max_waiting_time = 0.05;        // 3 seconds
  goals.min_availability = 0.999999;    // ~32 s/year
  return goals;
}

TEST(GoalsTest, Validation) {
  Goals goals;
  EXPECT_TRUE(goals.Validate(3).ok());
  goals.max_waiting_time = 0.0;
  EXPECT_FALSE(goals.Validate(3).ok());
  goals = Goals{};
  goals.min_availability = 1.0;
  EXPECT_FALSE(goals.Validate(3).ok());
  goals = Goals{};
  goals.per_type_max_waiting = {1.0, 2.0};
  EXPECT_FALSE(goals.Validate(3).ok());
  goals.per_type_max_waiting = {1.0, 2.0, 0.0};
  EXPECT_TRUE(goals.Validate(3).ok());
  EXPECT_DOUBLE_EQ(goals.WaitingThreshold(1), 2.0);
  // Entry 0.0 falls back to the global threshold.
  EXPECT_DOUBLE_EQ(goals.WaitingThreshold(2), goals.max_waiting_time);
}

TEST(CostModelTest, UniformAndWeighted) {
  CostModel uniform = CostModel::Uniform();
  EXPECT_DOUBLE_EQ(uniform.Cost({2, 1, 3}), 6.0);
  CostModel weighted;
  weighted.per_server_cost = {10.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(weighted.Cost({2, 1, 3}), 36.0);
  EXPECT_TRUE(weighted.Validate(3).ok());
  EXPECT_FALSE(weighted.Validate(2).ok());
  weighted.per_server_cost = {0.0, 1.0, 1.0};
  EXPECT_FALSE(weighted.Validate(3).ok());
}

TEST(SearchConstraintsTest, Validation) {
  SearchConstraints c;
  EXPECT_TRUE(c.Validate(3).ok());
  EXPECT_EQ(c.MinFor(0), 1);
  EXPECT_EQ(c.MaxFor(0), 8);
  c.min_replicas = {2, 2, 2};
  c.max_replicas = {4, 4, 1};
  EXPECT_FALSE(c.Validate(3).ok());  // max < min for type 2
  c.max_replicas = {4, 4, 4};
  EXPECT_TRUE(c.Validate(3).ok());
  c.min_replicas = {0, 1, 1};
  EXPECT_FALSE(c.Validate(3).ok());
}

TEST(AssessTest, VerdictsReflectGoals) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env);
  auto lax = tool.Assess(Configuration({2, 2, 3}), EasyGoals());
  ASSERT_TRUE(lax.ok()) << lax.status();
  EXPECT_TRUE(lax->Satisfies());
  EXPECT_DOUBLE_EQ(lax->cost, 7.0);

  Goals impossible;
  impossible.max_waiting_time = 1e-9;
  impossible.min_availability = 0.99;
  auto strict = tool.Assess(Configuration({2, 2, 3}), impossible);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(strict->meets_waiting_goal);
  EXPECT_TRUE(strict->meets_availability_goal);
  EXPECT_FALSE(strict->Satisfies());
}

TEST(GreedyTest, FindsSatisfyingConfiguration) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env);
  auto result = tool.GreedyMinCost(StrictGoals());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->satisfied);
  EXPECT_TRUE(result->assessment.Satisfies());
  EXPECT_GT(result->evaluations, 1);
  // It must replicate something beyond the minimum.
  EXPECT_GT(result->config.total_servers(), 3);
}

TEST(GreedyTest, LaxGoalsKeepMinimalConfiguration) {
  const Environment env = MakeEnv(0.3);
  const ConfigurationTool tool = MakeTool(env);
  Goals lax;
  lax.max_waiting_time = 60.0;
  lax.min_availability = 0.5;
  auto result = tool.GreedyMinCost(lax);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
  EXPECT_EQ(result->config, Configuration({1, 1, 1}));
  EXPECT_EQ(result->evaluations, 1);
}

TEST(GreedyTest, RespectsConstraints) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env);
  SearchConstraints constraints;
  constraints.min_replicas = {2, 1, 1};
  constraints.max_replicas = {2, 2, 2};  // comm fixed at 2
  auto result = tool.GreedyMinCost(StrictGoals(), constraints);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->config.replicas[0], 2);
  for (size_t x = 0; x < 3; ++x) {
    EXPECT_GE(result->config.replicas[x], constraints.MinFor(x));
    EXPECT_LE(result->config.replicas[x], constraints.MaxFor(x));
  }
}

TEST(GreedyTest, ReportsFailureWhenGoalsUnreachable) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env);
  SearchConstraints tight;
  tight.max_replicas = {1, 1, 1};  // no replication allowed
  auto result = tool.GreedyMinCost(StrictGoals(), tight);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
  EXPECT_EQ(result->config, Configuration({1, 1, 1}));
}

TEST(ExhaustiveTest, FindsMinimumCost) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env);
  SearchConstraints constraints;
  constraints.max_replicas = {3, 3, 4};
  auto result = tool.ExhaustiveMinCost(StrictGoals(), constraints);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->satisfied);
  // Nothing cheaper satisfies: check all configurations one server
  // smaller.
  for (size_t x = 0; x < 3; ++x) {
    Configuration smaller = result->config;
    if (--smaller.replicas[x] < 1) continue;
    auto assessment = tool.Assess(smaller, StrictGoals());
    ASSERT_TRUE(assessment.ok());
    EXPECT_FALSE(assessment->Satisfies())
        << smaller.ToString() << " would be cheaper and satisfying";
  }
}

TEST(ExhaustiveTest, GreedyIsNearOptimal) {
  // The headline §7.2 claim: greedy avoids oversizing. Verify its cost is
  // within one server of the exhaustive optimum on the EP scenario.
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env);
  SearchConstraints constraints;
  constraints.max_replicas = {3, 3, 4};
  auto greedy = tool.GreedyMinCost(StrictGoals(), constraints);
  auto optimal = tool.ExhaustiveMinCost(StrictGoals(), constraints);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(optimal.ok());
  ASSERT_TRUE(greedy->satisfied);
  ASSERT_TRUE(optimal->satisfied);
  EXPECT_LE(greedy->cost, optimal->cost + 1.0);
  // ...at far fewer model evaluations.
  EXPECT_LT(greedy->evaluations, optimal->evaluations);
}

TEST(ExhaustiveTest, UnsatisfiableReportsFailure) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env);
  SearchConstraints tight;
  tight.max_replicas = {1, 1, 1};
  auto result = tool.ExhaustiveMinCost(StrictGoals(), tight);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
}

TEST(AnnealingTest, FindsSatisfyingConfiguration) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env);
  SearchConstraints constraints;
  constraints.max_replicas = {3, 3, 4};
  AnnealingOptions annealing;
  annealing.iterations = 400;
  auto result =
      tool.AnnealingMinCost(StrictGoals(), constraints, CostModel::Uniform(),
                            annealing);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->satisfied);
  // Annealing should land within one server of the optimum too.
  auto optimal = tool.ExhaustiveMinCost(StrictGoals(), constraints);
  ASSERT_TRUE(optimal.ok());
  EXPECT_LE(result->cost, optimal->cost + 1.0);
}

TEST(AnnealingTest, DeterministicForSeed) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env);
  AnnealingOptions annealing;
  annealing.iterations = 150;
  auto a = tool.AnnealingMinCost(StrictGoals(), {}, CostModel::Uniform(),
                                 annealing);
  auto b = tool.AnnealingMinCost(StrictGoals(), {}, CostModel::Uniform(),
                                 annealing);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->config, b->config);
  EXPECT_EQ(a->evaluations, b->evaluations);
}

TEST(CostModelTest, WeightedCostChangesRecommendation) {
  // Making app servers very expensive should steer the search toward
  // configurations with fewer app servers whenever possible.
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env);
  SearchConstraints constraints;
  constraints.max_replicas = {3, 3, 4};
  CostModel pricey;
  pricey.per_server_cost = {1.0, 1.0, 100.0};
  auto cheap = tool.ExhaustiveMinCost(StrictGoals(), constraints);
  auto expensive =
      tool.ExhaustiveMinCost(StrictGoals(), constraints, pricey);
  ASSERT_TRUE(cheap.ok());
  ASSERT_TRUE(expensive.ok());
  ASSERT_TRUE(expensive->satisfied);
  EXPECT_LE(expensive->config.replicas[2], cheap->config.replicas[2]);
}

TEST(RecommendationTest, RendersReadableText) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env);
  auto result = tool.GreedyMinCost(EasyGoals());
  ASSERT_TRUE(result.ok());
  const std::string text = tool.RenderRecommendation(*result);
  EXPECT_NE(text.find("Recommended configuration"), std::string::npos);
  EXPECT_NE(text.find("availability"), std::string::npos);
  EXPECT_NE(text.find("engine"), std::string::npos);
}

TEST(ToolTest, PerTypeGoalsApplied) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env);
  Goals goals = EasyGoals();
  // Demand an impossibly snappy app server only.
  goals.per_type_max_waiting = {0.0, 0.0, 1e-9};
  auto assessment = tool.Assess(Configuration({1, 1, 1}), goals);
  ASSERT_TRUE(assessment.ok());
  EXPECT_FALSE(assessment->meets_waiting_goal);
}

}  // namespace
}  // namespace wfms::configtool

// The availability model of §5: a CTMC over WFMS system states
// (X_1, ..., X_k), X_x = number of currently-up servers of type x, with
// failure transitions at rate X_x * lambda_x and repair transitions at
// rate (Y_x - X_x) * mu_x (independent repair; a single-repair-crew
// variant with constant rate mu_x is provided as an option). The entire
// WFMS is available iff every server type has at least one server up.
//
// Because failures and repairs are independent across server types, the
// steady state also has a product form (per-type birth-death chains);
// ProductFormStateProbabilities exposes it as an exact cross-check of the
// full CTMC solve — and as the fast path for large configurations.
#ifndef WFMS_AVAIL_AVAILABILITY_MODEL_H_
#define WFMS_AVAIL_AVAILABILITY_MODEL_H_

#include <vector>

#include "common/result.h"
#include "linalg/vector.h"
#include "markov/ctmc.h"
#include "markov/state_space.h"
#include "markov/steady_state.h"
#include "workflow/configuration.h"
#include "workflow/environment.h"

namespace wfms::avail {

enum class RepairPolicy {
  /// Every failed server is repaired in parallel: repair rate
  /// (Y_x - X_x) * mu_x. Reproduces the paper's §5.2 numbers.
  kIndependent,
  /// One repair crew per server type: constant repair rate mu_x while any
  /// server of the type is down.
  kSingleCrewPerType,
};

struct AvailabilityOptions {
  RepairPolicy repair_policy = RepairPolicy::kIndependent;
  markov::SteadyStateOptions solver;
  /// Use the product-form closed solution instead of solving pi Q = 0
  /// (exact for both repair policies; dramatically faster for large state
  /// spaces). The CTMC path remains the reference implementation.
  bool use_product_form = false;
};

struct AvailabilityReport {
  /// Steady-state probability that every server type has >= 1 server up.
  double availability = 0.0;
  double unavailability = 1.0;
  double downtime_minutes_per_year = 0.0;
  /// Steady-state probability of every system state, indexed by the
  /// mixed-radix encoding of §5.2.
  linalg::Vector state_probabilities;
  markov::MixedRadixSpace space;
  /// Expected number of up servers per type.
  linalg::Vector expected_up_servers;
  int solver_iterations = 0;
  /// How the pi Q = 0 system was solved. kAuto means no CTMC solve ran
  /// (product-form path); otherwise the method that actually produced pi.
  markov::SteadyStateMethod solver_method = markov::SteadyStateMethod::kAuto;
  /// Diagnostics of the successful solve (empty for product form).
  SolveDiagnostics solver_diagnostics;
  /// When the degradation cascade ran: every rung attempted, in order.
  std::vector<markov::CascadeAttempt> solver_attempts;
  /// True when the solve ran on the lumped quotient chain (see
  /// markov/lumping.h); `lumped_states` is then the quotient size.
  bool lumping_applied = false;
  size_t lumped_states = 0;
};

class AvailabilityModel {
 public:
  /// Captures per-type failure/repair rates from the registry.
  static Result<AvailabilityModel> Create(
      const workflow::ServerTypeRegistry& servers,
      const AvailabilityOptions& options = {});

  /// Evaluates a configuration (replication vector Y). `steady_state_guess`
  /// optionally warm-starts the iterative pi Q = 0 solve: it must be a
  /// distribution over *this configuration's* state space (use
  /// markov::ProjectDistribution to carry a neighbor configuration's
  /// stationary vector over). Ignored by the product-form path; never
  /// changes the result beyond solver round-off. `solver_override`, when
  /// non-null, replaces the model's configured steady-state solver options
  /// for this evaluation only — the fault-isolated search uses it to retry
  /// a numerically failed candidate with the exact LU rung.
  Result<AvailabilityReport> Evaluate(
      const workflow::Configuration& config,
      const linalg::Vector* steady_state_guess = nullptr,
      const markov::SteadyStateOptions* solver_override = nullptr) const;

  /// Per-type distribution of up servers via the birth-death closed form.
  Result<linalg::Vector> PerTypeDistribution(size_t type_index,
                                             int replicas) const;

  /// Joint state probabilities as the product of per-type distributions.
  Result<linalg::Vector> ProductFormStateProbabilities(
      const workflow::Configuration& config,
      const markov::MixedRadixSpace& space) const;

  /// Builds the availability CTMC for a configuration over the given
  /// state space; exposed for transient analyses.
  Result<markov::Ctmc> BuildCtmc(const workflow::Configuration& config,
                                 const markov::MixedRadixSpace& space) const;

  /// Point availability A(t): the probability that every server type has
  /// at least one server up at time t, starting from the full
  /// configuration at t = 0. A(0) = 1 and A(t) decreases toward the
  /// steady-state availability.
  Result<double> PointAvailability(const workflow::Configuration& config,
                                   double t) const;

  size_t num_types() const { return failure_rates_.size(); }

 private:
  AvailabilityModel(linalg::Vector failures, linalg::Vector repairs,
                    AvailabilityOptions options)
      : failure_rates_(std::move(failures)),
        repair_rates_(std::move(repairs)),
        options_(options) {}

  linalg::Vector failure_rates_;
  linalg::Vector repair_rates_;
  AvailabilityOptions options_;
};

}  // namespace wfms::avail

#endif  // WFMS_AVAIL_AVAILABILITY_MODEL_H_

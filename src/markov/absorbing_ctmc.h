// The workflow control-flow CTMC of §3.2 of the paper: a continuous-time
// Markov chain given by the embedded jump-chain transition probabilities
// p_ij and the mean state residence times H_i, with a single initial state
// and a single absorbing state (infinite residence).
//
// The analyses the performance model needs live in transient.h
// (uniformization / Markov reward) and first_passage.h (turnaround time).
#ifndef WFMS_MARKOV_ABSORBING_CTMC_H_
#define WFMS_MARKOV_ABSORBING_CTMC_H_

#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector.h"

namespace wfms::markov {

/// Residence time assigned to the absorbing state.
inline constexpr double kInfiniteResidence =
    std::numeric_limits<double>::infinity();

class AbsorbingCtmc {
 public:
  /// Validates and constructs a chain.
  ///  - `p`: embedded transition probabilities. Row of the absorbing state
  ///    must be all zero except p_AA == 1 (or all zero; it is normalized to
  ///    a self-loop). Other rows must sum to 1 and have p_ii == 0 (the jump
  ///    chain never jumps in place).
  ///  - `residence_times`: mean residence time H_i > 0 for transient states;
  ///    the absorbing state may carry kInfiniteResidence (enforced).
  ///  - `initial_state`, `absorbing_state`: distinct indices.
  /// Also verifies that the absorbing state is reachable from every state
  /// that is reachable from the initial state.
  static Result<AbsorbingCtmc> Create(linalg::DenseMatrix p,
                                      linalg::Vector residence_times,
                                      std::vector<std::string> state_names,
                                      size_t initial_state,
                                      size_t absorbing_state);

  size_t num_states() const { return p_.rows(); }
  size_t initial_state() const { return initial_state_; }
  size_t absorbing_state() const { return absorbing_state_; }
  const linalg::DenseMatrix& transition_probabilities() const { return p_; }
  const linalg::Vector& residence_times() const { return h_; }
  const std::string& state_name(size_t i) const { return state_names_[i]; }
  Result<size_t> StateIndex(const std::string& name) const;

  /// Departure rate v_i = 1/H_i (0 for the absorbing state).
  double DepartureRate(size_t i) const;
  /// Maximum departure rate v = max_i v_i — the uniformization rate.
  double UniformizationRate() const;
  /// Transition rate q_ij = v_i p_ij.
  double TransitionRate(size_t i, size_t j) const;

  /// Full infinitesimal generator (q_ii = -v_i); the absorbing row is zero.
  linalg::DenseMatrix Generator() const;

  /// One-step transition matrix of the uniformized DTMC:
  ///   p~_ij = (v_i/v) p_ij for j != i,   p~_ii = 1 - v_i/v,
  /// with the absorbing state keeping a self-loop of 1.
  linalg::DenseMatrix UniformizedTransitionMatrix() const;

  /// The embedded jump chain as a DTMC (absorbing state keeps a self-loop).
  Result<class Dtmc> EmbeddedChain() const;

 private:
  AbsorbingCtmc(linalg::DenseMatrix p, linalg::Vector h,
                std::vector<std::string> names, size_t initial,
                size_t absorbing)
      : p_(std::move(p)),
        h_(std::move(h)),
        state_names_(std::move(names)),
        initial_state_(initial),
        absorbing_state_(absorbing) {}

  linalg::DenseMatrix p_;
  linalg::Vector h_;
  std::vector<std::string> state_names_;
  size_t initial_state_;
  size_t absorbing_state_;
};

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_ABSORBING_CTMC_H_

#include "statechart/interpreter.h"

#include "common/string_util.h"

namespace wfms::statechart {

Result<ParsedAction> ParseAction(const std::string& text) {
  const std::string_view s = StripWhitespace(text);
  if (s.size() < 5 || s.substr(2, 2) != "!(" || s.back() != ')') {
    return Status::ParseError("malformed action '" + text +
                              "'; expected kind!(arg)");
  }
  const std::string_view kind = s.substr(0, 2);
  const std::string argument(
      StripWhitespace(s.substr(4, s.size() - 5)));
  if (argument.empty()) {
    return Status::ParseError("action '" + text + "' has an empty argument");
  }
  ParsedAction action;
  action.argument = argument;
  if (kind == "st") {
    action.kind = ParsedAction::Kind::kStartActivity;
  } else if (kind == "tr") {
    action.kind = ParsedAction::Kind::kSetTrue;
  } else if (kind == "fs") {
    action.kind = ParsedAction::Kind::kSetFalse;
  } else if (kind == "ev") {
    action.kind = ParsedAction::Kind::kRaiseEvent;
  } else {
    return Status::ParseError("unknown action kind '" + std::string(kind) +
                              "' in '" + text + "'");
  }
  return action;
}

bool ConditionContext::Get(const std::string& name) const {
  const auto it = values_.find(name);
  return it != values_.end() && it->second;
}

void ConditionContext::Set(const std::string& name, bool value) {
  values_[name] = value;
}

Result<bool> EvaluateCondition(const std::string& expression,
                               const ConditionContext& context) {
  const std::string_view stripped = StripWhitespace(expression);
  if (stripped.empty()) return true;
  for (const std::string& term :
       SplitString(stripped, '&', /*skip_empty=*/false)) {
    std::string_view t = StripWhitespace(term);
    bool negated = false;
    while (!t.empty() && t.front() == '!') {
      negated = !negated;
      t = StripWhitespace(t.substr(1));
    }
    if (t.empty()) {
      return Status::ParseError("empty term in condition '" + expression +
                                "'");
    }
    const bool value = context.Get(std::string(t));
    if (value == negated) return false;  // term is false
  }
  return true;
}

ChartInterpreter::ChartInterpreter(const ChartRegistry* registry,
                                   const StateChart* chart)
    : ChartInterpreter(registry, chart,
                       std::make_shared<ConditionContext>(),
                       std::make_shared<std::deque<std::string>>(),
                       std::make_shared<std::vector<std::string>>()) {}

ChartInterpreter::ChartInterpreter(
    const ChartRegistry* registry, const StateChart* chart,
    std::shared_ptr<ConditionContext> context,
    std::shared_ptr<std::deque<std::string>> event_queue,
    std::shared_ptr<std::vector<std::string>> activities)
    : registry_(registry),
      chart_(chart),
      context_(std::move(context)),
      event_queue_(std::move(event_queue)),
      started_activities_(std::move(activities)) {}

Status ChartInterpreter::Start() {
  if (started_) {
    return Status::FailedPrecondition("interpreter already started");
  }
  started_ = true;
  return EnterState(chart_->initial_state());
}

bool ChartInterpreter::finished() const {
  if (current_ != chart_->final_state()) return false;
  return ChildrenFinished();
}

bool ChartInterpreter::ChildrenFinished() const {
  for (const auto& child : children_) {
    if (!child->finished()) return false;
  }
  return true;
}

Status ChartInterpreter::EnterState(const std::string& name) {
  WFMS_ASSIGN_OR_RETURN(size_t index, chart_->StateIndex(name));
  current_ = name;
  trace_.push_back(name);
  children_.clear();
  const ChartState& state = chart_->state(index);
  if (state.kind == StateKind::kComposite) {
    if (registry_ == nullptr) {
      return Status::FailedPrecondition(
          "composite state '" + name + "' needs a chart registry");
    }
    for (const std::string& sub : state.subcharts) {
      WFMS_ASSIGN_OR_RETURN(const StateChart* subchart,
                            registry_->GetChart(sub));
      auto child = std::unique_ptr<ChartInterpreter>(new ChartInterpreter(
          registry_, subchart, context_, event_queue_, started_activities_));
      WFMS_RETURN_NOT_OK(child->Start());
      children_.push_back(std::move(child));
    }
  }
  return Status::OK();
}

Status ChartInterpreter::ExecuteActions(const EcaRule& rule) {
  for (const std::string& text : rule.actions) {
    WFMS_ASSIGN_OR_RETURN(ParsedAction action, ParseAction(text));
    switch (action.kind) {
      case ParsedAction::Kind::kStartActivity:
        started_activities_->push_back(action.argument);
        break;
      case ParsedAction::Kind::kSetTrue:
        context_->Set(action.argument, true);
        break;
      case ParsedAction::Kind::kSetFalse:
        context_->Set(action.argument, false);
        break;
      case ParsedAction::Kind::kRaiseEvent:
        event_queue_->push_back(action.argument);
        break;
    }
  }
  return Status::OK();
}

Result<bool> ChartInterpreter::Dispatch(const std::string& event) {
  // Broadcast to active children first (orthogonal components).
  bool fired = false;
  for (const auto& child : children_) {
    if (child->finished()) continue;
    WFMS_ASSIGN_OR_RETURN(bool child_fired, child->Dispatch(event));
    fired = fired || child_fired;
  }
  // The composite state itself may only leave once all children joined.
  if (!children_.empty() && !ChildrenFinished()) return fired;
  if (current_ == chart_->final_state()) return fired;

  for (const Transition* t : chart_->OutgoingTransitions(current_)) {
    if (!t->rule.event.empty() && t->rule.event != event) continue;
    WFMS_ASSIGN_OR_RETURN(bool enabled,
                          EvaluateCondition(t->rule.condition, *context_));
    if (!enabled) continue;
    WFMS_RETURN_NOT_OK(ExecuteActions(t->rule));
    WFMS_RETURN_NOT_OK(EnterState(t->to));
    return true;
  }
  return fired;
}

Result<int> ChartInterpreter::DeliverEvent(const std::string& event) {
  if (!started_) {
    return Status::FailedPrecondition("interpreter not started");
  }
  event_queue_->push_back(event);
  int fired = 0;
  // Guard against ev!-loops: a workflow instance with n states cannot
  // meaningfully fire more than a generous multiple of n transitions per
  // external event.
  const int budget = 64 + 16 * static_cast<int>(chart_->num_states());
  while (!event_queue_->empty()) {
    const std::string next = event_queue_->front();
    event_queue_->pop_front();
    WFMS_ASSIGN_OR_RETURN(bool any, Dispatch(next));
    if (any) ++fired;
    if (fired > budget) {
      return Status::NumericError(
          "event cascade exceeded budget; ev! loop in chart '" +
          chart_->name() + "'?");
    }
  }
  return fired;
}

}  // namespace wfms::statechart

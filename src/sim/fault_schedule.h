// Scripted fault injection for the simulator: a deterministic schedule of
// timed crash/repair/whole-type-outage events that *overrides* the
// exponential failure/repair processes (when a schedule is non-empty the
// random processes are disabled entirely, so the same schedule + seed is
// bit-identical across runs). The schedule doubles as an analytic object:
// PrescribedAvailability replays it symbolically, giving the exact
// availability the simulator must observe — the cross-validation hook
// between the simulator and the availability model's bookkeeping.
//
// Text DSL (one event per line; blank lines and '#' comments ignored):
//
//   at <time> crash   <server-type> [replica-index]
//   at <time> repair  <server-type> [replica-index]
//   at <time> outage  <server-type>     # whole type down
//   at <time> restore <server-type>     # whole type back up
//
// Multi-site environments (DESIGN.md §12) add site-level directives
// (site names resolve against the environment's site topology):
//
//   at <time> site-crash  <site>        # every replica at the site down
//   at <time> site-repair <site>
//   at <time> partition   <A>|<B>       # cross-site traffic A<->B severed
//   at <time> heal        <A>|<B>
//   mode overlay                        # see FaultSchedule::overlay
//
// Times are simulation minutes; replica-index defaults to 0. Events firing
// at the same instant apply in schedule order. The parser enforces
// chronological order, known names, and non-overlapping crash windows —
// every violation carries its 1-based line number.
#ifndef WFMS_SIM_FAULT_SCHEDULE_H_
#define WFMS_SIM_FAULT_SCHEDULE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "workflow/configuration.h"
#include "workflow/environment.h"
#include "workflow/sites.h"

namespace wfms::sim {

enum class FaultAction {
  kCrash,        // one replica down (no-op if already down)
  kRepair,       // one replica up (no-op if already up)
  kTypeOutage,   // every replica of the type down
  kTypeRestore,  // every replica of the type up
  kSiteCrash,    // every replica at the site down (common-shock site loss)
  kSiteRepair,   // every replica at the site back up
  kPartition,    // network partition between two sites
  kHeal          // partition healed
};

const char* FaultActionName(FaultAction action);

/// True for the site-level actions that carry site indices instead of a
/// server type.
bool IsSiteAction(FaultAction action);

struct FaultEvent {
  double time = 0.0;
  FaultAction action = FaultAction::kCrash;
  /// Index into the environment's server-type registry (replica/type
  /// actions only).
  size_t server_type = 0;
  /// Replica within the type; ignored by the whole-type and site actions.
  int server_index = 0;
  /// Site indices for the site-level actions: site_a is the crashed /
  /// repaired site, or the first endpoint of a partition pair (site_b the
  /// second).
  size_t site_a = 0;
  size_t site_b = 0;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;
  /// Overlay mode ("mode overlay" in the DSL): the schedule *coexists*
  /// with the random per-replica failure/repair processes instead of
  /// replacing them, and its events are restricted to the site level
  /// (site-crash/site-repair/partition/heal), applied as coverage-mask
  /// flips only — no replica is force-failed. This is the configuration
  /// for cross-checking the analytic partition/site contingencies against
  /// simulated replay: the replica processes stay stochastic while the
  /// site trajectory is prescribed.
  bool overlay = false;

  bool empty() const { return events.empty(); }

  /// Checks every event against the configuration: finite non-negative
  /// times, known server types, replica indices within the replication
  /// degree. Site-level events additionally need a non-empty `topology`
  /// with the site indices in range; overlay mode permits only site-level
  /// events.
  Status Validate(const workflow::Configuration& config, size_t num_types,
                  const workflow::SiteTopology* topology = nullptr) const;

  /// Events sorted by time (stable: same-instant events keep schedule
  /// order) — the order the simulator applies them in.
  std::vector<FaultEvent> Sorted() const;

  /// Exact availability a failure-free simulator run under this schedule
  /// must observe: the fraction of [warmup, duration) in which the system
  /// is available, obtained by replaying the schedule symbolically. In the
  /// classic (single-site) case "available" means every server type has
  /// >= 1 replica up — the same structure function the §5 availability
  /// CTMC aggregates. When `topology` is non-empty and the configuration
  /// is site-placed, "available" means a serving connected component
  /// exists (workflow::ServingComponent over the prescribed site/partition
  /// trajectory); replicas map to sites in site-major blocks (site a of
  /// type x owns global replica indices [sum of counts before a, ...)).
  Result<double> PrescribedAvailability(
      const workflow::Configuration& config, size_t num_types, double warmup,
      double duration,
      const workflow::SiteTopology* topology = nullptr) const;
};

/// Parses the text DSL above, resolving server types by name against the
/// registry and site names against `topology` (site directives without a
/// topology are errors). Errors carry the 1-based line number. Beyond
/// per-line syntax, the parser rejects out-of-order timestamps,
/// unknown server/site names, and overlapping crash windows (a replica or
/// site crashed again before its scripted repair).
Result<FaultSchedule> ParseFaultSchedule(
    const std::string& text, const workflow::ServerTypeRegistry& servers,
    const workflow::SiteTopology* topology = nullptr);

}  // namespace wfms::sim

#endif  // WFMS_SIM_FAULT_SCHEDULE_H_


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/configtool/goals.cc" "src/configtool/CMakeFiles/wfms_configtool.dir/goals.cc.o" "gcc" "src/configtool/CMakeFiles/wfms_configtool.dir/goals.cc.o.d"
  "/root/repo/src/configtool/tool.cc" "src/configtool/CMakeFiles/wfms_configtool.dir/tool.cc.o" "gcc" "src/configtool/CMakeFiles/wfms_configtool.dir/tool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/performability/CMakeFiles/wfms_performability.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wfms_common.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/wfms_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/avail/CMakeFiles/wfms_avail.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/wfms_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/wfms_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/statechart/CMakeFiles/wfms_statechart.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/wfms_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/wfms_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/deadline_analysis.dir/deadline_analysis.cpp.o"
  "CMakeFiles/deadline_analysis.dir/deadline_analysis.cpp.o.d"
  "deadline_analysis"
  "deadline_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Process-wide metrics: named counters, gauges, and log-linear histograms
// behind a lock-sharded registry. Designed for solver inner loops:
//  - recording is wait-free after registration (relaxed atomic fetch-add for
//    counters and histogram buckets, a CAS loop for double accumulators);
//  - no allocation after registration: handles returned by the registry are
//    stable for the life of the process and histograms use a fixed bucket
//    array, so Observe() never allocates;
//  - registration is a sharded map lookup under a mutex — cache the handle
//    (typically in a function-local static) rather than re-looking it up.
//
// Naming scheme (DESIGN.md §8): `wfms_<module>_<name>` with the unit as a
// suffix — `_total` for counters, `_seconds` for latency histograms, bare
// nouns for gauges (`wfms_configtool_frontier_depth`). Names are sanitized
// to Prometheus' charset at registration.
//
// These types live in wfms::metrics (not wfms) because the statistics
// helpers already define an unrelated wfms::Histogram.
#ifndef WFMS_COMMON_METRICS_H_
#define WFMS_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wfms::metrics {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, utilization, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  /// Keeps the running maximum of everything Set/Update'd through it.
  void UpdateMax(double value);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// One exported histogram bucket: observations in [lower, upper_bound).
/// Bucket counts are per-bucket (non-cumulative); the overflow bucket has
/// upper_bound = +infinity. The Prometheus export labels buckets with
/// le=upper_bound, inclusive-vs-exclusive at the exact boundary being
/// well inside the bucketing error.
struct HistogramBucket {
  double upper_bound = 0.0;
  uint64_t count = 0;
};

/// Log-linear (HDR-style) histogram over positive doubles. Buckets are 16
/// linear sub-buckets per power of two across 2^-40 .. 2^40, giving a
/// worst-case relative quantile error of 1/16 (~6.25%) from bucketing
/// alone (less in practice, since quantiles interpolate within a bucket).
/// Non-positive and NaN observations land in a dedicated zero bucket.
/// Observe() is a handful of relaxed atomic adds; quantiles are computed
/// only at snapshot time by interpolating within the covering bucket.
class Histogram {
 public:
  static constexpr int kSubBucketsPerOctave = 16;
  static constexpr int kMinExponent = -40;  // frexp exponent, value >= 2^-41
  static constexpr int kMaxExponent = 40;   // values >= 2^40 overflow
  // zero bucket + log-linear range + overflow bucket.
  static constexpr int kNumBuckets =
      2 + (kMaxExponent - kMinExponent) * kSubBucketsPerOctave;

  void Observe(double value);
  /// Observe with an exemplar: when `value` sets a new maximum, the trace
  /// id is remembered alongside it, so a tail spike in the export links
  /// directly to the flight-recorder record / trace of the request that
  /// caused it. The exemplar slot is mutex-guarded, but the lock is taken
  /// only when `value` is at or above the running maximum — the common
  /// case stays wait-free.
  void Observe(double value, std::string_view exemplar_trace_id);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty

  /// Interpolated quantile estimate, q in [0, 1]. Returns 0 when empty.
  double Quantile(double q) const;

  /// Non-empty buckets in ascending order (the zero bucket reports
  /// upper_bound = 0). Allocates; snapshot/export path only.
  std::vector<HistogramBucket> NonEmptyBuckets() const;

  /// Trace id attached to the largest observation so far ("" when no
  /// observation carried one) and that observation's value.
  std::string exemplar_trace_id() const;
  double exemplar_value() const;

  void Reset();

  /// Bucket index covering `value`; exposed for tests.
  static int BucketIndex(double value);
  /// Exclusive upper bound of bucket `index` (+inf for the overflow bucket).
  static double BucketUpperBound(int index);
  /// Inclusive lower bound of bucket `index` (0 for the zero bucket).
  static double BucketLowerBound(int index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // min/max are tracked exactly so snapshot quantiles can be clamped to the
  // observed range (tightens p99 inside the top occupied bucket).
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> any_{false};
  // Max-latency exemplar. Guarded by its own mutex, taken only on
  // observations that reach the running maximum (rare by construction).
  mutable std::mutex exemplar_mutex_;
  std::string exemplar_trace_id_;
  double exemplar_value_ = 0.0;
};

/// Point-in-time copy of one histogram, precomputed for export.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  std::vector<HistogramBucket> buckets;  // non-empty, ascending
  /// Max-latency exemplar; empty trace id when no observation carried one.
  std::string exemplar_trace_id;
  double exemplar_value = 0.0;
};

/// Point-in-time copy of every registered metric, in sorted name order (the
/// export is deterministic for a deterministic run).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Optional help strings (registered via MetricsRegistry::SetHelp),
  /// keyed by sanitized metric name; exported as `# HELP` lines.
  std::map<std::string, std::string> help;

  /// Counter value by name; `fallback` when absent.
  uint64_t counter(std::string_view name, uint64_t fallback = 0) const;
  /// Gauge value by name; `fallback` when absent.
  double gauge(std::string_view name, double fallback = 0.0) const;
  /// Histogram by name; nullptr when absent.
  const HistogramSnapshot* histogram(std::string_view name) const;

  /// JSON document: {"schema_version": 2, "counters": {...}, "gauges":
  /// {...}, "histograms": {...}}. Histograms carry min/max/p50/p90/p99/
  /// p999 and, when present, a max-latency "exemplar". Validated by
  /// tools/schemas/metrics_schema.json (which still accepts version 1 so
  /// archived BENCH artifacts keep validating).
  std::string ToJson() const;
  /// Prometheus text exposition format: `# HELP` + `# TYPE` per metric,
  /// then the samples (cumulative histogram series with `le` labels,
  /// `_sum`, `_count`). Label values and help text are escaped per the
  /// exposition format.
  std::string ToPrometheusText() const;
};

/// Escapes a label value for the Prometheus text format: backslash,
/// double-quote, and newline become \\, \", and \n.
std::string PromEscapeLabelValue(std::string_view value);
/// Escapes `# HELP` text: backslash and newline become \\ and \n.
std::string PromEscapeHelp(std::string_view text);

/// Owner of every metric. Handles returned by Get* are valid for the
/// registry's lifetime; Global() is a leaked singleton, so handles obtained
/// from it never dangle (safe to use from static destructors).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by the instrumented pipeline.
  static MetricsRegistry& Global();

  /// Finds or creates the metric. The name is sanitized (characters outside
  /// [a-zA-Z0-9_:] become '_'; a leading digit gains a '_' prefix). Looking
  /// up an existing name with a different metric kind aborts — a name maps
  /// to exactly one kind for the life of the process.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Attaches a `# HELP` string to a (sanitized) metric name. Idempotent;
  /// the last writer wins. Metrics without help get a generic line.
  void SetHelp(std::string_view name, std::string_view help);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric, keeping registrations (handles stay valid).
  void ResetAll();

  static std::string SanitizeName(std::string_view name);

 private:
  struct Entry {
    // Exactly one is non-null; which one defines the metric's kind.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, Entry, std::less<>> metrics;
    std::map<std::string, std::string, std::less<>> help;
  };
  static constexpr size_t kNumShards = 8;

  Shard& ShardFor(std::string_view name);
  /// Finds or creates the `member` slot of the named entry under the shard
  /// lock; aborts if the name is already registered as another kind.
  template <typename T>
  T& GetMetric(std::string_view name, std::unique_ptr<T> Entry::* member,
               const char* kind);

  std::array<Shard, kNumShards> shards_;
};

}  // namespace wfms::metrics

#endif  // WFMS_COMMON_METRICS_H_

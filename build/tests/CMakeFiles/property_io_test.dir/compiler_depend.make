# Empty compiler generated dependencies file for property_io_test.
# This may be replaced when dependencies are built.

// E1 — §5.2 availability study. Regenerates the paper's numeric example:
// expected downtime per year as a function of the replication vector,
// including the three quoted data points: (1,1,1) ~ 71 hours/year,
// (3,3,3) ~ 10 seconds/year, (2,2,3) < 1 minute/year. Also cross-checks
// the CTMC solve against the product-form closed solution and reports the
// state-space sizes.

#include <cstdio>

#include "avail/availability_model.h"
#include "common/time_units.h"
#include "workflow/scenarios.h"

int main() {
  using namespace wfms;
  auto env = workflow::EpEnvironment();
  if (!env.ok()) return 1;
  auto model = avail::AvailabilityModel::Create(env->servers);
  if (!model.ok()) return 1;

  std::printf("E1: availability vs replication (failure rates: comm "
              "1/month, engine 1/week, app 1/day; MTTR 10 min)\n\n");
  std::printf("%-10s %7s %14s %16s %12s %10s\n", "config", "servers",
              "availability", "downtime/year", "productform", "states");

  const workflow::Configuration configs[] = {
      workflow::Configuration({1, 1, 1}), workflow::Configuration({2, 1, 1}),
      workflow::Configuration({1, 1, 2}), workflow::Configuration({2, 2, 2}),
      workflow::Configuration({2, 2, 3}), workflow::Configuration({1, 2, 3}),
      workflow::Configuration({3, 3, 3}), workflow::Configuration({4, 4, 4}),
  };
  for (const auto& config : configs) {
    auto report = model->Evaluate(config);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    auto product =
        model->ProductFormStateProbabilities(config, report->space);
    double product_unavail = 0.0;
    if (product.ok()) {
      for (size_t i = 0; i < product->size(); ++i) {
        for (size_t x = 0; x < 3; ++x) {
          if (report->space.Component(i, x) == 0) {
            product_unavail += (*product)[i];
            break;
          }
        }
      }
    }
    std::printf("%-10s %7d %14.9f %16s %12s %10zu\n",
                config.ToString().c_str(), config.total_servers(),
                report->availability,
                FormatMinutes(report->downtime_minutes_per_year).c_str(),
                FormatMinutes(UnavailabilityToDowntimeMinutesPerYear(
                                  product_unavail))
                    .c_str(),
                report->space.size());
  }
  std::printf("\npaper §5.2 reference points: (1,1,1) = 71 h/yr, "
              "(3,3,3) = 10 s/yr, (2,2,3) < 1 min/yr\n");
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/property_io_test.dir/property_io_test.cc.o"
  "CMakeFiles/property_io_test.dir/property_io_test.cc.o.d"
  "property_io_test"
  "property_io_test.pdb"
  "property_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Erlang (phase-type) expansion of CTMC states. The paper (§5.1) notes
// that non-exponential residence or repair times "can be accommodated ...
// by refining the corresponding state into a (reasonably small) set of
// exponential states"; this module performs that refinement for workflow
// chains: a state with Erlang-k residence becomes k sequential stages,
// each exponential with rate k/H, preserving the mean residence time while
// reducing its variance by a factor of k.
#ifndef WFMS_MARKOV_PHASE_TYPE_H_
#define WFMS_MARKOV_PHASE_TYPE_H_

#include <vector>

#include "common/result.h"
#include "markov/absorbing_ctmc.h"

namespace wfms::markov {

struct ErlangExpansion {
  AbsorbingCtmc chain;
  /// For each state of the expanded chain, the originating state in the
  /// source chain.
  std::vector<size_t> origin;
  /// For each state of the expanded chain, true iff it is the first stage
  /// of its originating state (rewards earned on state entry must be
  /// attached to first stages only).
  std::vector<bool> is_first_stage;

  /// Lifts a per-entry reward vector of the original chain onto the
  /// expanded chain (reward on first stages, zero elsewhere).
  linalg::Vector LiftEntryRewards(const linalg::Vector& rewards) const;
};

/// Expands each state i into `stages[i]` sequential exponential stages.
/// stages[i] must be >= 1; the absorbing state must have stages == 1.
Result<ErlangExpansion> ExpandErlangStages(const AbsorbingCtmc& chain,
                                           const std::vector<int>& stages);

/// Erlang stage count matching a target squared coefficient of variation:
/// an Erlang-k has SCV = 1/k, so the closest match is k = round(1/scv),
/// clamped to [1, max_stages]. SCV >= 1 (hyperexponential territory) and
/// non-finite/non-positive SCVs yield 1 stage — a plain exponential, which
/// still matches the mean. This is the moment-matching half of the
/// hierarchical composite-state decomposition (statechart/to_ctmc.h): the
/// subchart's turnaround moments are computed once, and the composite
/// macro-state is refined into this many phases.
int ErlangStagesForScv(double scv, int max_stages);

}  // namespace wfms::markov

#endif  // WFMS_MARKOV_PHASE_TYPE_H_

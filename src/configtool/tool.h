// The configuration tool of §7: assessment of candidate configurations
// against performability goals and search for a (near-)minimum-cost
// configuration. Three search strategies:
//  - Greedy (§7.2): interleaves the availability and performability
//    criteria, adding one replica of the most critical server type at a
//    time — the paper's first-version heuristic.
//  - Exhaustive: enumerates the constrained configuration space and
//    returns the cheapest satisfying configuration — the optimality
//    baseline the greedy result is benchmarked against.
//  - Simulated annealing: the "full-fledged mathematical optimization"
//    the paper names as the eventual successor of the greedy heuristic.
#ifndef WFMS_CONFIGTOOL_TOOL_H_
#define WFMS_CONFIGTOOL_TOOL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "configtool/goals.h"
#include "performability/performability_model.h"
#include "workflow/configuration.h"
#include "workflow/environment.h"

namespace wfms::configtool {

/// Bounds on the search space; also expresses the paper's "specific
/// constraints such as limiting or fixing the degree of replication of
/// particular server types" (fix type x by setting min == max).
struct SearchConstraints {
  std::vector<int> min_replicas;  // empty: all 1
  std::vector<int> max_replicas;  // empty: all 8

  int MinFor(size_t x) const {
    return x < min_replicas.size() ? min_replicas[x] : 1;
  }
  int MaxFor(size_t x) const {
    return x < max_replicas.size() ? max_replicas[x] : 8;
  }
  Status Validate(size_t num_types) const;
};

/// Verdict of one configuration against the goals.
struct Assessment {
  workflow::Configuration config;
  performability::PerformabilityReport performability;
  double cost = 0.0;
  bool meets_waiting_goal = false;
  bool meets_availability_goal = false;
  bool meets_saturation_goal = false;
  bool meets_instance_delay_goal = true;
  /// Expected queueing delay per workflow-type instance under W^Y
  /// (aligned with the environment's workflow list).
  linalg::Vector instance_delays;

  bool Satisfies() const {
    return meets_waiting_goal && meets_availability_goal &&
           meets_saturation_goal && meets_instance_delay_goal;
  }
};

struct SearchResult {
  /// The recommended configuration (the cheapest satisfying one found; if
  /// `satisfied` is false, the best-effort final candidate).
  workflow::Configuration config;
  double cost = 0.0;
  bool satisfied = false;
  /// Number of candidate configurations evaluated.
  int evaluations = 0;
  Assessment assessment;
};

struct AnnealingOptions {
  uint64_t seed = 42;
  int iterations = 2000;
  double initial_temperature = 4.0;
  double cooling = 0.995;
  /// Penalty weight for goal violations (makes infeasible configurations
  /// strictly worse than any feasible one in the sampled space).
  double infeasibility_penalty = 1000.0;
};

class ConfigurationTool {
 public:
  /// The environment must outlive the tool.
  static Result<ConfigurationTool> Create(
      const workflow::Environment& env,
      const performability::PerformabilityOptions& options = {});

  /// Evaluates one candidate configuration against the goals (§7.1: "for
  /// a given system configuration").
  Result<Assessment> Assess(const workflow::Configuration& config,
                            const Goals& goals,
                            const CostModel& cost = CostModel::Uniform()) const;

  /// §7.2 greedy heuristic.
  Result<SearchResult> GreedyMinCost(
      const Goals& goals, const SearchConstraints& constraints = {},
      const CostModel& cost = CostModel::Uniform()) const;

  /// Exhaustive minimum-cost search over the constrained space.
  Result<SearchResult> ExhaustiveMinCost(
      const Goals& goals, const SearchConstraints& constraints = {},
      const CostModel& cost = CostModel::Uniform()) const;

  /// Simulated-annealing search.
  Result<SearchResult> AnnealingMinCost(
      const Goals& goals, const SearchConstraints& constraints = {},
      const CostModel& cost = CostModel::Uniform(),
      const AnnealingOptions& annealing = {}) const;

  /// Branch-and-bound search (the other "full-fledged" optimizer the
  /// paper names): best-first expansion in cost order with monotonicity
  /// pruning — adding a replica never hurts either goal, so (a) the first
  /// satisfying configuration dequeued is cost-optimal, and (b) if even
  /// the all-max configuration fails, the search aborts immediately.
  /// Exact like ExhaustiveMinCost but typically evaluates far fewer
  /// candidates.
  Result<SearchResult> BranchAndBoundMinCost(
      const Goals& goals, const SearchConstraints& constraints = {},
      const CostModel& cost = CostModel::Uniform()) const;

  /// Human-readable recommendation (§7.1's "recommendations" component).
  std::string RenderRecommendation(const SearchResult& result) const;

  const performability::PerformabilityModel& model() const { return model_; }

 private:
  ConfigurationTool(const workflow::Environment* env,
                    performability::PerformabilityModel model)
      : env_(env), model_(std::move(model)) {}

  /// Degree of goal violation for annealing (0 when satisfied).
  double ViolationMeasure(const Assessment& assessment,
                          const Goals& goals) const;

  const workflow::Environment* env_;
  performability::PerformabilityModel model_;
};

}  // namespace wfms::configtool

#endif  // WFMS_CONFIGTOOL_TOOL_H_

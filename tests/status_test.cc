#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace wfms {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rate");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rate");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rate");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NumericError("diverged");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kNumericError);
  EXPECT_EQ(t.message(), "diverged");
  EXPECT_EQ(s, t);
}

TEST(StatusTest, AssignmentOverwrites) {
  Status s = Status::NotFound("x");
  s = Status::OK();
  EXPECT_TRUE(s.ok());
  s = Status::ParseError("line 3");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status s = Status::Internal("oops");
  Status t = std::move(s);
  EXPECT_FALSE(t.ok());
  EXPECT_TRUE(s.ok());  // NOLINT(bugprone-use-after-move): documented behavior
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::ParseError("unexpected token");
  Status t = s.WithContext("statechart.dsl:7");
  EXPECT_EQ(t.message(), "statechart.dsl:7: unexpected token");
  EXPECT_EQ(t.code(), StatusCode::kParseError);
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNumericError), "NumericError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

Status FailIfNegative(double x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UseReturnNotOk(double x) {
  WFMS_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(UseReturnNotOk(1.0).ok());
  EXPECT_EQ(UseReturnNotOk(-1.0).code(), StatusCode::kOutOfRange);
}

Result<double> Reciprocal(double x) {
  if (x == 0.0) return Status::InvalidArgument("division by zero");
  return 1.0 / x;
}

Result<double> TwiceReciprocal(double x) {
  WFMS_ASSIGN_OR_RETURN(double r, Reciprocal(x));
  return 2.0 * r;
}

TEST(ResultTest, HoldsValue) {
  Result<double> r = Reciprocal(4.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.25);
}

TEST(ResultTest, HoldsError) {
  Result<double> r = Reciprocal(0.0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<double> ok = TwiceReciprocal(4.0);
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(*ok, 0.5);
  EXPECT_FALSE(TwiceReciprocal(0.0).ok());
}

TEST(ResultTest, ValueOrFallback) {
  EXPECT_DOUBLE_EQ(Reciprocal(2.0).ValueOr(-1.0), 0.5);
  EXPECT_DOUBLE_EQ(Reciprocal(0.0).ValueOr(-1.0), -1.0);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

}  // namespace
}  // namespace wfms

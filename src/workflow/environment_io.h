// Scenario files: a textual format for a complete workflow Environment —
// server types, per-activity load vectors, workflow types, and the state
// charts (embedded in the statechart DSL) — so the configuration tool can
// be driven from the command line against user-authored scenarios.
//
//   servers
//     server comm kind=communication service_mean=0.005 service_scv=1
//            mttf=43200 mttr=10                      (one line)
//   end
//   loads
//     load new_order comm=2 engine=3 app=0
//   end
//   workflows
//     workflow EP chart=EP rate=1.0
//   end
//   sites                                              (optional, §12)
//     site EU mttf=20000 mttr=20     # omit mttf/mttr: site never crashes
//     site US mttf=20000 mttr=20
//     latency EU 0 6                 # symmetric s x s matrix, one row
//     latency US 6 0                 # per site (defaults to all-zero)
//     partition rate=0.00005 heal=0.05
//   end
//   chart EP
//     ... statechart DSL (parser.h) ...
//   end
//
// Order of sections is free; `#` starts a comment. Serialize() emits this
// format; Parse(Serialize(env)) reproduces the environment.
#ifndef WFMS_WORKFLOW_ENVIRONMENT_IO_H_
#define WFMS_WORKFLOW_ENVIRONMENT_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "workflow/environment.h"

namespace wfms::workflow {

/// Parses a scenario document into a validated Environment.
Result<Environment> ParseEnvironment(std::string_view text);

/// Serializes an environment to the scenario format.
std::string SerializeEnvironment(const Environment& env);

}  // namespace wfms::workflow

#endif  // WFMS_WORKFLOW_ENVIRONMENT_IO_H_

// End-to-end integration: the configuration tool recommends a minimum-
// cost configuration from the analytic models, and an *independent*
// discrete-event simulation of that configuration must actually meet the
// goals — the closed loop the paper's tool promises (§7).

#include <gtest/gtest.h>

#include <cmath>

#include "configtool/tool.h"
#include "sim/simulator.h"
#include "workflow/calibration.h"
#include "workflow/scenarios.h"

namespace wfms {
namespace {

using workflow::Configuration;

TEST(IntegrationTest, RecommendedConfigurationSurvivesSimulation) {
  auto env = workflow::EpEnvironment(/*arrival_rate=*/1.0);
  ASSERT_TRUE(env.ok());
  auto tool = configtool::ConfigurationTool::Create(*env);
  ASSERT_TRUE(tool.ok());

  configtool::Goals goals;
  goals.max_waiting_time = 0.05;     // 3 s
  goals.min_availability = 0.99999;
  auto recommendation = tool->GreedyMinCost(goals);
  ASSERT_TRUE(recommendation.ok());
  ASSERT_TRUE(recommendation->satisfied);

  // Simulate the recommended configuration with failures enabled.
  sim::SimulationOptions options;
  options.config = recommendation->config;
  options.duration = 120000.0;
  options.warmup = 10000.0;
  options.seed = 314;
  auto simulator = sim::Simulator::Create(*env, options);
  ASSERT_TRUE(simulator.ok());
  auto observed = simulator->Run();
  ASSERT_TRUE(observed.ok());

  // Observed per-type mean waiting must respect the goal with margin for
  // the documented burstiness gap (factor <= 2.5 of the analytic value,
  // which itself is below 3 s with slack in the recommended config).
  for (size_t x = 0; x < 3; ++x) {
    EXPECT_LT(observed->servers[x].waiting_time.mean(),
              goals.max_waiting_time * 2.5)
        << env->servers.type(x).name;
  }
  // Observed availability consistent with the goal (the run is too short
  // to resolve 1e-5 unavailability exactly; it must simply stay high).
  EXPECT_GT(observed->observed_availability, 0.999);
  // The workflow actually completes at the offered rate.
  const auto& wf = observed->workflows.at("EP");
  EXPECT_GT(wf.completed, 0.9 * (options.duration - options.warmup) * 1.0);
}

TEST(IntegrationTest, CheaperThanRecommendedFailsSimulation) {
  // The flip side: the minimal configuration (1,1,1) at this load is
  // saturated analytically AND observably in simulation — the tool's
  // rejection is justified.
  auto env = workflow::EpEnvironment(/*arrival_rate=*/2.5);
  ASSERT_TRUE(env.ok());
  auto tool = configtool::ConfigurationTool::Create(*env);
  ASSERT_TRUE(tool.ok());
  configtool::Goals goals;
  goals.max_waiting_time = 0.05;
  goals.min_availability = 0.999;
  auto assessment = tool->Assess(Configuration({1, 1, 1}), goals);
  ASSERT_TRUE(assessment.ok());
  EXPECT_FALSE(assessment->Satisfies());

  sim::SimulationOptions options;
  options.config = Configuration({1, 1, 1});
  options.duration = 20000.0;
  options.warmup = 2000.0;
  options.enable_failures = false;
  options.seed = 5;
  auto simulator = sim::Simulator::Create(*env, options);
  ASSERT_TRUE(simulator.ok());
  auto observed = simulator->Run();
  ASSERT_TRUE(observed.ok());
  // The app server (analytic bottleneck at this load) visibly violates
  // the 3 s goal in simulation.
  EXPECT_GT(observed->servers[2].waiting_time.mean(),
            goals.max_waiting_time * 3);
}

TEST(IntegrationTest, CalibrateThenRecommendLoop) {
  // Design-time model at 0.5/min; production runs at 1.2/min. The loop:
  // simulate -> calibrate -> the tool detects the violation and the new
  // recommendation differs (more capacity).
  auto designed = workflow::EpEnvironment(0.5);
  ASSERT_TRUE(designed.ok());
  auto production = workflow::EpEnvironment(1.2);
  ASSERT_TRUE(production.ok());

  configtool::Goals goals;
  goals.max_waiting_time = 0.05;
  goals.min_availability = 0.9999;

  auto design_tool = configtool::ConfigurationTool::Create(*designed);
  ASSERT_TRUE(design_tool.ok());
  auto initial = design_tool->GreedyMinCost(goals);
  ASSERT_TRUE(initial.ok());
  ASSERT_TRUE(initial->satisfied);

  sim::SimulationOptions options;
  options.config = initial->config;
  options.duration = 30000.0;
  options.warmup = 1000.0;
  options.record_audit_trail = true;
  options.seed = 77;
  auto simulator = sim::Simulator::Create(*production, options);
  ASSERT_TRUE(simulator.ok());
  auto observed = simulator->Run();
  ASSERT_TRUE(observed.ok());

  auto calibrated = workflow::CalibrateEnvironment(*designed,
                                                   observed->trail);
  ASSERT_TRUE(calibrated.ok());
  EXPECT_NEAR(calibrated->workflows[0].arrival_rate, 1.2, 0.1);

  auto prod_tool = configtool::ConfigurationTool::Create(*calibrated);
  ASSERT_TRUE(prod_tool.ok());
  auto updated = prod_tool->GreedyMinCost(goals);
  ASSERT_TRUE(updated.ok());
  ASSERT_TRUE(updated->satisfied);
  // More load => at least as much capacity everywhere, more somewhere.
  int total_initial = initial->config.total_servers();
  int total_updated = updated->config.total_servers();
  EXPECT_GE(total_updated, total_initial);
}

TEST(IntegrationTest, BenchmarkMixFullPipeline) {
  auto env = workflow::BenchmarkEnvironment(0.4, 0.15, 0.08);
  ASSERT_TRUE(env.ok());
  auto tool = configtool::ConfigurationTool::Create(*env);
  ASSERT_TRUE(tool.ok());
  configtool::Goals goals;
  goals.max_waiting_time = 0.1;
  goals.min_availability = 0.9999;
  configtool::SearchConstraints constraints;
  constraints.max_replicas.assign(5, 6);
  auto recommendation = tool->GreedyMinCost(goals, constraints);
  ASSERT_TRUE(recommendation.ok());
  ASSERT_TRUE(recommendation->satisfied);

  sim::SimulationOptions options;
  options.config = recommendation->config;
  options.duration = 40000.0;
  options.warmup = 5000.0;
  options.seed = 123;
  auto simulator = sim::Simulator::Create(*env, options);
  ASSERT_TRUE(simulator.ok());
  auto observed = simulator->Run();
  ASSERT_TRUE(observed.ok());
  // All three workflow types complete and no pool melts down.
  EXPECT_GT(observed->workflows.at("EP").completed, 1000);
  EXPECT_GT(observed->workflows.at("Loan").completed, 300);
  EXPECT_GT(observed->workflows.at("Claim").completed, 100);
  for (size_t x = 0; x < 5; ++x) {
    EXPECT_LT(observed->utilization[x], 0.95) << "type " << x;
  }
}

}  // namespace
}  // namespace wfms

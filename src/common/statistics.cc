#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace wfms {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::second_moment() const {
  if (count_ == 0) return 0.0;
  // E[X^2] = Var_pop + mean^2, with population variance m2_/n.
  return m2_ / static_cast<double>(count_) + mean_ * mean_;
}

double RunningStats::scv() const {
  if (count_ == 0 || mean_ == 0.0) return 0.0;
  return variance() / (mean_ * mean_);
}

double RunningStats::ConfidenceHalfWidth(double level) const {
  if (count_ < 2) return 0.0;
  double z = 1.959963984540054;  // 95%
  if (level >= 0.989) {
    z = 2.5758293035489004;
  } else if (level <= 0.901) {
    z = 1.6448536269514722;
  }
  return z * stddev() / std::sqrt(static_cast<double>(count_));
}

void TimeWeightedStats::Update(double now, double value) {
  if (started_) {
    WFMS_DCHECK(now >= last_time_);
    weighted_sum_ += last_value_ * (now - last_time_);
    total_time_ += now - last_time_;
  }
  started_ = true;
  last_time_ = now;
  last_value_ = value;
}

void TimeWeightedStats::Finish(double now) { Update(now, last_value_); }

double TimeWeightedStats::time_average() const {
  return total_time_ > 0.0 ? weighted_sum_ / total_time_ : 0.0;
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / buckets),
      counts_(static_cast<size_t>(buckets), 0) {
  WFMS_CHECK_GT(buckets, 0);
  WFMS_CHECK_LT(lo, hi);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    const auto idx = static_cast<size_t>((x - lo_) / width_);
    ++counts_[std::min(idx, counts_.size() - 1)];
  }
}

double Histogram::Quantile(double q) const {
  WFMS_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToString(int max_width) const {
  std::ostringstream os;
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double bucket_lo = lo_ + static_cast<double>(i) * width_;
    const int bar = static_cast<int>(static_cast<double>(counts_[i]) /
                                     static_cast<double>(peak) * max_width);
    os << "[" << bucket_lo << ", " << bucket_lo + width_ << ") "
       << std::string(static_cast<size_t>(bar), '#') << " " << counts_[i]
       << "\n";
  }
  return os.str();
}

}  // namespace wfms

file(REMOVE_RECURSE
  "CMakeFiles/bench_transient_availability.dir/bench_transient_availability.cpp.o"
  "CMakeFiles/bench_transient_availability.dir/bench_transient_availability.cpp.o.d"
  "bench_transient_availability"
  "bench_transient_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transient_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "markov/first_passage.h"

#include <vector>

#include "linalg/iterative_solver.h"
#include "linalg/lu_solver.h"
#include "linalg/sparse_matrix.h"

namespace wfms::markov {

using linalg::DenseMatrix;
using linalg::Vector;

Result<Vector> MeanFirstPassageTimes(const AbsorbingCtmc& chain,
                                     FirstPassageMethod method) {
  const size_t n = chain.num_states();
  const size_t a = chain.absorbing_state();

  // Compact the transient states; the system matrix is the generator
  // restricted to them (diagonal -v_i, off-diagonal q_ij), RHS -1.
  std::vector<size_t> transient;
  std::vector<size_t> compact(n, SIZE_MAX);
  for (size_t i = 0; i < n; ++i) {
    if (i == a) continue;
    compact[i] = transient.size();
    transient.push_back(i);
  }
  const size_t m = transient.size();
  Vector rhs(m, -1.0);

  Vector solution(m, 0.0);
  if (method == FirstPassageMethod::kLu) {
    DenseMatrix sys(m, m);
    for (size_t i = 0; i < m; ++i) {
      const size_t si = transient[i];
      sys.At(i, i) = -chain.DepartureRate(si);
      for (size_t j = 0; j < m; ++j) {
        if (j == i) continue;
        sys.At(i, j) = chain.TransitionRate(si, transient[j]);
      }
    }
    auto solved = linalg::LuSolve(sys, rhs);
    if (!solved.ok()) {
      return solved.status().WithContext("first-passage system");
    }
    solution = *std::move(solved);
  } else {
    linalg::SparseMatrixBuilder builder(m, m);
    for (size_t i = 0; i < m; ++i) {
      const size_t si = transient[i];
      builder.Add(i, i, -chain.DepartureRate(si));
      for (size_t j = 0; j < m; ++j) {
        if (j == i) continue;
        const double rate = chain.TransitionRate(si, transient[j]);
        if (rate != 0.0) builder.Add(i, j, rate);
      }
    }
    const linalg::SparseMatrix sys = builder.Build();
    // Initialize with the single-visit lower bound H_i.
    for (size_t i = 0; i < m; ++i) {
      solution[i] = chain.residence_times()[transient[i]];
    }
    linalg::IterativeOptions opts;
    opts.tolerance = 1e-12;
    auto stats = linalg::GaussSeidelSolve(sys, rhs, &solution, opts);
    if (!stats.ok()) {
      return stats.status().WithContext("first-passage Gauss-Seidel");
    }
    if (!stats->converged) {
      return Status::NumericError(
          "first-passage Gauss-Seidel did not converge");
    }
  }

  Vector full(n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    if (solution[i] < 0.0) {
      return Status::NumericError(
          "negative first-passage time; chain is ill-conditioned");
    }
    full[transient[i]] = solution[i];
  }
  return full;
}

Result<double> MeanTurnaroundTime(const AbsorbingCtmc& chain,
                                  FirstPassageMethod method) {
  WFMS_ASSIGN_OR_RETURN(Vector times, MeanFirstPassageTimes(chain, method));
  return times[chain.initial_state()];
}

}  // namespace wfms::markov

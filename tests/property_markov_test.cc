// Property-based sweeps over randomly generated absorbing CTMCs: the
// fundamental identities the performance model rests on must hold for
// *every* well-formed chain, not just the handcrafted fixtures.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/dense_matrix.h"
#include "markov/absorbing_ctmc.h"
#include "markov/first_passage.h"
#include "markov/phase_type.h"
#include "markov/transient.h"
#include "markov/transient_distribution.h"

namespace wfms::markov {
namespace {

using linalg::DenseMatrix;
using linalg::Vector;

/// Random absorbing chain: n transient states arranged so that every
/// state has a path to absorption (each state sends positive probability
/// either forward or straight to the absorbing state).
AbsorbingCtmc MakeRandomChain(size_t n, uint64_t seed) {
  Rng rng(seed);
  const size_t total = n + 1;
  DenseMatrix p(total, total);
  Vector h(total, 0.0);
  std::vector<std::string> names;
  for (size_t i = 0; i < n; ++i) {
    h[i] = rng.NextDouble(0.2, 8.0);
    // Two-step name build dodges a GCC 12 -Wrestrict false positive on
    // the fused literal+number concatenation (GCC PR105329).
    std::string name(1, 's');
    name += std::to_string(i);
    names.push_back(std::move(name));
    // Random outgoing mass to later states, earlier states (loops), and
    // the absorbing state; guaranteed absorbing mass keeps the chain
    // proper.
    Vector weights(total, 0.0);
    weights[n] = rng.NextDouble(0.05, 0.5);  // to absorption
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (rng.NextBernoulli(0.5)) weights[j] = rng.NextDouble(0.05, 1.0);
    }
    double sum = 0.0;
    for (double w : weights) sum += w;
    for (size_t j = 0; j < total; ++j) p.At(i, j) = weights[j] / sum;
  }
  h[n] = kInfiniteResidence;
  names.push_back("A");
  auto chain = AbsorbingCtmc::Create(std::move(p), std::move(h),
                                     std::move(names), 0, n);
  EXPECT_TRUE(chain.ok()) << chain.status();
  return *std::move(chain);
}

class RandomChainProperty : public ::testing::TestWithParam<int> {
 protected:
  AbsorbingCtmc Chain() const {
    const auto param = static_cast<uint64_t>(GetParam());
    return MakeRandomChain(2 + param % 9, 1000 + param);
  }
};

TEST_P(RandomChainProperty, TurnaroundEqualsVisitWeightedResidence) {
  const AbsorbingCtmc chain = Chain();
  auto turnaround = MeanTurnaroundTime(chain);
  auto visits = ExpectedStateVisits(chain);
  ASSERT_TRUE(turnaround.ok());
  ASSERT_TRUE(visits.ok());
  double weighted = 0.0;
  for (size_t i = 0; i < chain.num_states(); ++i) {
    if (i == chain.absorbing_state()) continue;
    weighted += (*visits)[i] * chain.residence_times()[i];
  }
  EXPECT_NEAR(*turnaround, weighted, 1e-7 * std::max(1.0, weighted));
}

TEST_P(RandomChainProperty, RewardModelMatchesFundamentalMatrix) {
  const AbsorbingCtmc chain = Chain();
  Rng rng(GetParam() + 77u);
  Vector rewards(chain.num_states(), 0.0);
  for (size_t i = 0; i < chain.num_states(); ++i) {
    if (i != chain.absorbing_state()) rewards[i] = rng.NextDouble(0.0, 5.0);
  }
  auto reward = ExpectedRewardUntilAbsorption(chain, rewards);
  auto visits = ExpectedStateVisits(chain);
  ASSERT_TRUE(reward.ok()) << reward.status();
  ASSERT_TRUE(visits.ok());
  double expected = 0.0;
  for (size_t i = 0; i < chain.num_states(); ++i) {
    expected += (*visits)[i] * rewards[i];
  }
  EXPECT_NEAR(reward->expected_reward, expected,
              1e-6 * std::max(1.0, expected));
}

TEST_P(RandomChainProperty, GaussSeidelFirstPassageMatchesLu) {
  const AbsorbingCtmc chain = Chain();
  auto lu = MeanFirstPassageTimes(chain, FirstPassageMethod::kLu);
  auto gs = MeanFirstPassageTimes(chain, FirstPassageMethod::kGaussSeidel);
  ASSERT_TRUE(lu.ok());
  ASSERT_TRUE(gs.ok()) << gs.status();
  for (size_t i = 0; i < chain.num_states(); ++i) {
    EXPECT_NEAR((*gs)[i], (*lu)[i], 1e-6 * std::max(1.0, (*lu)[i]));
  }
}

TEST_P(RandomChainProperty, ErlangExpansionPreservesMeans) {
  const AbsorbingCtmc chain = Chain();
  Rng rng(GetParam() + 99u);
  std::vector<int> stages(chain.num_states(), 1);
  for (size_t i = 0; i < chain.num_states(); ++i) {
    if (i != chain.absorbing_state()) {
      stages[i] = 1 + static_cast<int>(rng.NextUint64(4));
    }
  }
  auto expansion = ExpandErlangStages(chain, stages);
  ASSERT_TRUE(expansion.ok());
  auto r0 = MeanTurnaroundTime(chain);
  auto r1 = MeanTurnaroundTime(expansion->chain);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_NEAR(*r0, *r1, 1e-7 * std::max(1.0, *r0));

  Vector rewards(chain.num_states(), 1.0);
  rewards[chain.absorbing_state()] = 0.0;
  auto orig = ExpectedRewardUntilAbsorption(chain, rewards);
  auto lifted = ExpectedRewardUntilAbsorption(
      expansion->chain, expansion->LiftEntryRewards(rewards));
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(lifted.ok());
  EXPECT_NEAR(orig->expected_reward, lifted->expected_reward,
              1e-6 * std::max(1.0, orig->expected_reward));
}

TEST_P(RandomChainProperty, TransientDistributionIsProper) {
  const AbsorbingCtmc chain = Chain();
  auto turnaround = MeanTurnaroundTime(chain);
  ASSERT_TRUE(turnaround.ok());
  double prev_completed = 0.0;
  for (double factor : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    auto dist = TransientDistribution(chain, *turnaround * factor);
    ASSERT_TRUE(dist.ok());
    double sum = 0.0;
    for (double v : *dist) {
      EXPECT_GE(v, -1e-10);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-8);
    const double completed = (*dist)[chain.absorbing_state()];
    EXPECT_GE(completed, prev_completed - 1e-10);
    prev_completed = completed;
  }
  // By 10x the mean turnaround, most instances are done (Markov bound
  // guarantees >= 0.9; in practice much more).
  EXPECT_GE(prev_completed, 0.9);
}

TEST_P(RandomChainProperty, StepBoundConsistentWithDistribution) {
  // After z_max(0.99) uniformized steps the absorption probability at the
  // corresponding expected time is meaningful; cheaper sanity: bound is
  // positive and increases with confidence.
  const AbsorbingCtmc chain = Chain();
  auto z95 = AbsorptionStepBound(chain, 0.95);
  auto z99 = AbsorptionStepBound(chain, 0.99);
  ASSERT_TRUE(z95.ok());
  ASSERT_TRUE(z99.ok());
  EXPECT_GE(*z99, *z95);
  EXPECT_GT(*z99, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainProperty, ::testing::Range(0, 24));

}  // namespace
}  // namespace wfms::markov

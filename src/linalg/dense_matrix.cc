#include "linalg/dense_matrix.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace wfms::linalg {

DenseMatrix::DenseMatrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix::DenseMatrix(
    std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    WFMS_CHECK_EQ(row.size(), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

DenseMatrix DenseMatrix::Identity(size_t n) {
  DenseMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Vector DenseMatrix::Multiply(const Vector& x) const {
  WFMS_CHECK_EQ(x.size(), cols_);
  Vector y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

Vector DenseMatrix::MultiplyTransposed(const Vector& x) const {
  WFMS_CHECK_EQ(x.size(), rows_);
  Vector y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  WFMS_CHECK_EQ(cols_, other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = At(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) += aik * other.At(k, j);
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

void DenseMatrix::Add(const DenseMatrix& other, double alpha) {
  WFMS_CHECK_EQ(rows_, other.rows_);
  WFMS_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void DenseMatrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  WFMS_CHECK_EQ(rows_, other.rows_);
  WFMS_CHECK_EQ(cols_, other.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

std::string DenseMatrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << At(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace wfms::linalg

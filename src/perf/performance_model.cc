#include "perf/performance_model.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/metrics.h"
#include "common/trace.h"
#include "queueing/mg1.h"

namespace wfms::perf {

using linalg::Vector;
using workflow::Configuration;

Result<PerformanceModel> PerformanceModel::Create(
    const workflow::Environment& env, const AnalysisOptions& options) {
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& builds =
      registry.GetCounter("wfms_perf_model_builds_total");
  static metrics::Histogram& build_seconds =
      registry.GetHistogram("wfms_perf_model_build_seconds");
  builds.Increment();
  trace::TraceSpan span("perf/model_build", "perf");
  const auto start = std::chrono::steady_clock::now();

  WFMS_RETURN_NOT_OK(env.Validate());
  std::vector<WorkflowAnalysis> analyses;
  analyses.reserve(env.workflows.size());
  Vector rates(env.num_server_types(), 0.0);
  for (const workflow::WorkflowTypeSpec& spec : env.workflows) {
    WFMS_ASSIGN_OR_RETURN(WorkflowAnalysis analysis,
                          AnalyzeWorkflow(env, spec, options));
    for (size_t x = 0; x < rates.size(); ++x) {
      rates[x] += spec.arrival_rate * analysis.expected_requests[x];
    }
    analyses.push_back(std::move(analysis));
  }
  build_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return PerformanceModel(&env, std::move(analyses), std::move(rates));
}

Vector PerformanceModel::ActiveInstances() const {
  Vector active(workflows_.size(), 0.0);
  for (size_t t = 0; t < workflows_.size(); ++t) {
    active[t] = env_->workflows[t].arrival_rate *
                workflows_[t].turnaround_time;
  }
  return active;
}

Result<WaitingTimeReport> PerformanceModel::EvaluateWaitingTimes(
    const Configuration& config) const {
  WFMS_RETURN_NOT_OK(config.Validate(env_->num_server_types()));
  markov::StateVector available(config.replicas.begin(),
                                config.replicas.end());
  return EvaluateWaitingTimesForState(available);
}

Result<WaitingTimeReport> PerformanceModel::EvaluateWaitingTimesForState(
    const markov::StateVector& available) const {
  const size_t k = env_->num_server_types();
  if (available.size() != k) {
    return Status::InvalidArgument("system state dimension mismatch");
  }
  WaitingTimeReport report;
  report.servers.reserve(k);
  for (size_t x = 0; x < k; ++x) {
    if (available[x] < 1) {
      return Status::InvalidArgument(
          "server type " + std::to_string(x) +
          " has no available server; the system is down in this state");
    }
    const workflow::ServerType& type = env_->servers.type(x);
    ServerTypeMetrics m;
    m.server_type = type.name;
    m.available_servers = available[x];
    m.total_arrival_rate = request_rates_[x];
    m.per_server_rate =
        m.total_arrival_rate / static_cast<double>(available[x]);
    m.utilization = m.per_server_rate * type.service.mean;
    auto queue = queueing::Mg1Metrics(m.per_server_rate, type.service);
    if (queue.ok()) {
      m.saturated = false;
      m.mean_waiting_time = queue->mean_waiting_time;
      report.max_waiting_time =
          std::max(report.max_waiting_time, m.mean_waiting_time);
    } else if (queue.status().code() == StatusCode::kFailedPrecondition) {
      m.saturated = true;
      report.any_saturated = true;
      report.max_waiting_time = std::numeric_limits<double>::infinity();
    } else {
      return queue.status().WithContext("server type '" + type.name + "'");
    }
    report.servers.push_back(std::move(m));
  }
  return report;
}

Result<ThroughputReport> PerformanceModel::MaxSustainableThroughput(
    const Configuration& config) const {
  const size_t k = env_->num_server_types();
  WFMS_RETURN_NOT_OK(config.Validate(k));

  double total_arrival = 0.0;
  for (const workflow::WorkflowTypeSpec& w : env_->workflows) {
    total_arrival += w.arrival_rate;
  }
  if (!(total_arrival > 0.0)) {
    return Status::FailedPrecondition(
        "workflow mix has zero total arrival rate; nothing to scale");
  }

  ThroughputReport report;
  report.capacity.assign(k, 0.0);
  report.arrival_rates = request_rates_;
  report.max_mix_scale = std::numeric_limits<double>::infinity();
  for (size_t x = 0; x < k; ++x) {
    const workflow::ServerType& type = env_->servers.type(x);
    report.capacity[x] =
        static_cast<double>(config.replicas[x]) / type.service.mean;
    if (request_rates_[x] <= 0.0) continue;  // type unused by the mix
    const double scale = report.capacity[x] / request_rates_[x];
    if (scale < report.max_mix_scale) {
      report.max_mix_scale = scale;
      report.bottleneck = x;
    }
  }
  if (std::isinf(report.max_mix_scale)) {
    return Status::FailedPrecondition(
        "workflow mix induces no load on any server type");
  }
  report.max_workflows_per_time_unit = report.max_mix_scale * total_arrival;
  return report;
}

Result<WaitingTimeReport> PerformanceModel::EvaluateHeterogeneous(
    const std::vector<HeterogeneousPool>& pools) const {
  const size_t k = env_->num_server_types();
  if (pools.size() != k) {
    return Status::InvalidArgument(
        "need one heterogeneous pool per server type");
  }
  WaitingTimeReport report;
  report.servers.reserve(k);
  for (size_t x = 0; x < k; ++x) {
    const std::vector<double>& speeds = pools[x].speed_factors;
    if (speeds.empty()) {
      return Status::InvalidArgument("server type " + std::to_string(x) +
                                     " has no replicas");
    }
    double total_speed = 0.0;
    for (double s : speeds) {
      if (!(s > 0.0)) {
        return Status::InvalidArgument("speed factors must be positive");
      }
      total_speed += s;
    }
    const workflow::ServerType& type = env_->servers.type(x);
    ServerTypeMetrics m;
    m.server_type = type.name;
    m.available_servers = static_cast<int>(speeds.size());
    m.total_arrival_rate = request_rates_[x];
    // Splitting the load proportionally to speed gives every replica the
    // utilization of one *aggregate* server with capacity total_speed.
    m.utilization = m.total_arrival_rate * type.service.mean / total_speed;
    m.per_server_rate =
        m.total_arrival_rate / static_cast<double>(speeds.size());
    double weighted_wait = 0.0;
    bool saturated = false;
    for (double s : speeds) {
      const double replica_rate = m.total_arrival_rate * s / total_speed;
      // Server i is faster by factor s: both moments scale (b/s, b2/s^2).
      queueing::ServiceMoments scaled{type.service.mean / s,
                                      type.service.second_moment / (s * s)};
      auto queue = queueing::Mg1Metrics(replica_rate, scaled);
      if (queue.ok()) {
        weighted_wait +=
            (replica_rate / std::max(m.total_arrival_rate, 1e-300)) *
            queue->mean_waiting_time;
      } else if (queue.status().code() == StatusCode::kFailedPrecondition) {
        saturated = true;
        break;
      } else {
        return queue.status();
      }
    }
    m.saturated = saturated;
    if (!saturated) {
      m.mean_waiting_time = weighted_wait;
      report.max_waiting_time =
          std::max(report.max_waiting_time, weighted_wait);
    } else {
      report.any_saturated = true;
      report.max_waiting_time = std::numeric_limits<double>::infinity();
    }
    report.servers.push_back(std::move(m));
  }
  return report;
}

Result<Vector> PerformanceModel::PerInstanceQueueingDelay(
    const Configuration& config) const {
  WFMS_ASSIGN_OR_RETURN(WaitingTimeReport report,
                        EvaluateWaitingTimes(config));
  Vector delays(workflows_.size(), 0.0);
  for (size_t t = 0; t < workflows_.size(); ++t) {
    double total = 0.0;
    for (size_t x = 0; x < report.servers.size(); ++x) {
      const double requests = workflows_[t].expected_requests[x];
      if (requests <= 0.0) continue;
      if (report.servers[x].saturated) {
        total = std::numeric_limits<double>::infinity();
        break;
      }
      total += requests * report.servers[x].mean_waiting_time;
    }
    delays[t] = total;
  }
  return delays;
}

Result<WaitingTimeReport> PerformanceModel::EvaluateColocated(
    const std::vector<ColocationGroup>& groups) const {
  const size_t k = env_->num_server_types();
  std::vector<bool> covered(k, false);
  for (const ColocationGroup& g : groups) {
    if (g.computers < 1) {
      return Status::InvalidArgument("colocation group needs >= 1 computer");
    }
    if (g.server_types.empty()) {
      return Status::InvalidArgument("empty colocation group");
    }
    for (size_t x : g.server_types) {
      if (x >= k) return Status::OutOfRange("server type index out of range");
      if (covered[x]) {
        return Status::InvalidArgument(
            "server type " + std::to_string(x) +
            " appears in multiple colocation groups");
      }
      covered[x] = true;
    }
  }
  for (size_t x = 0; x < k; ++x) {
    if (!covered[x]) {
      return Status::InvalidArgument("server type " + std::to_string(x) +
                                     " missing from colocation groups");
    }
  }

  WaitingTimeReport report;
  report.servers.resize(k);
  for (const ColocationGroup& g : groups) {
    // Aggregate arrival rate and service mixture over the group (§4.4).
    double group_rate = 0.0;
    std::vector<double> weights;
    std::vector<queueing::ServiceMoments> parts;
    for (size_t x : g.server_types) {
      group_rate += request_rates_[x];
      weights.push_back(request_rates_[x]);
      parts.push_back(env_->servers.type(x).service);
    }
    const double per_computer_rate =
        group_rate / static_cast<double>(g.computers);

    queueing::ServiceMoments mixture;
    if (group_rate > 0.0) {
      WFMS_ASSIGN_OR_RETURN(mixture, queueing::MixServices(weights, parts));
    } else {
      mixture = parts.front();  // unloaded group: any moments work
    }

    double waiting = 0.0;
    bool saturated = false;
    if (per_computer_rate > 0.0) {
      auto queue = queueing::Mg1Metrics(per_computer_rate, mixture);
      if (queue.ok()) {
        waiting = queue->mean_waiting_time;
      } else if (queue.status().code() == StatusCode::kFailedPrecondition) {
        saturated = true;
      } else {
        return queue.status();
      }
    }
    for (size_t x : g.server_types) {
      ServerTypeMetrics& m = report.servers[x];
      m.server_type = env_->servers.type(x).name;
      m.available_servers = g.computers;
      m.total_arrival_rate = request_rates_[x];
      m.per_server_rate = per_computer_rate;
      m.utilization = per_computer_rate * mixture.mean;
      m.saturated = saturated;
      if (!saturated) {
        m.mean_waiting_time = waiting;
        report.max_waiting_time = std::max(report.max_waiting_time, waiting);
      } else {
        report.any_saturated = true;
        report.max_waiting_time = std::numeric_limits<double>::infinity();
      }
    }
  }
  return report;
}

}  // namespace wfms::perf

// Corpus sweep runner (DESIGN.md §14): a Manifest names a population of
// environments — generator recipes and/or WfCommons files on disk — and
// RunSweep assesses (or searches) every one of them on a thread pool,
// producing a deterministic per-environment report.
//
// Determinism contract: each environment's ConfigurationTool is pinned to
// one lane, environments fan out across the pool, and results are
// assembled in manifest order — so the report (timings aside) is
// byte-identical whatever the thread count, and identical across runs for
// a fixed manifest. Disable timings (SweepOptions::include_timings) to
// make the serialized report itself byte-stable.
#ifndef WFMS_CORPUS_SWEEP_H_
#define WFMS_CORPUS_SWEEP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "configtool/goals.h"
#include "corpus/generator.h"
#include "markov/steady_state.h"

namespace wfms::corpus {

/// One environment of the population: either a generator recipe or a
/// WfCommons-style JSON document on disk.
struct ManifestEntry {
  std::string id;
  Recipe recipe;
  /// When non-empty the entry imports this file instead of generating.
  std::string wfcommons_path;

  bool is_import() const { return !wfcommons_path.empty(); }
};

struct Manifest {
  /// Master seed the manifest was generated from (provenance only).
  uint64_t seed = 0;
  std::vector<ManifestEntry> entries;
};

/// Deterministic population spread: patterns cycle, task counts ramp
/// geometrically from 8 to `max_tasks` (the last entry hits `max_tasks`
/// exactly), service SCVs cycle {1, 4, 16}, distributions alternate
/// lognormal/Pareto, and per-entry seeds derive from `seed`.
Manifest GenerateManifest(size_t count, uint64_t seed, size_t max_tasks);

std::string ManifestToJson(const Manifest& manifest);
Result<Manifest> ManifestFromJson(std::string_view text);

enum class SweepMode { kAssess, kRecommend };

/// Verdict for one environment. `error` is empty on success; a failed
/// environment keeps its identity fields and skips the rest.
struct EnvironmentResult {
  std::string id;
  std::string workflow;
  std::string pattern;  // "imported" for file entries
  size_t tasks = 0;
  size_t chart_states = 0;  // states across all compiled charts
  size_t server_types = 0;
  size_t avail_states = 0;  // availability CTMC size for the final config
  bool lumping_applied = false;
  size_t lumped_states = 0;
  std::vector<int> config;  // assessed (assess) or recommended (recommend)
  bool satisfied = false;
  double max_expected_waiting = 0.0;
  double availability = 0.0;
  double cost = 0.0;
  int evaluations = 0;  // search evaluations (0 in assess mode)
  double solve_ms = 0.0;
  std::string error;
};

struct SweepOptions {
  configtool::Goals goals;
  SweepMode mode = SweepMode::kAssess;
  /// Per-type replication cap of the recommend-mode greedy search.
  int max_replicas = 4;
  markov::LumpingMode lumping = markov::LumpingMode::kOff;
  /// Opt into PR 6's Erlang macro-state expansion for parallel regions.
  bool phase_type_composites = false;
  /// Sweep-level fan-out; 0 uses ThreadPool::DefaultThreadCount().
  size_t num_threads = 0;
  /// Emit per-environment and total wall times into the JSON report.
  bool include_timings = true;
  /// Completion callback (progress reporting); invoked under a lock, in
  /// completion order, with the number of environments finished so far.
  std::function<void(const EnvironmentResult&, size_t done, size_t total)>
      progress;
};

struct SweepReport {
  uint64_t seed = 0;
  SweepMode mode = SweepMode::kAssess;
  std::vector<EnvironmentResult> results;
  size_t satisfied_count = 0;
  size_t error_count = 0;
  double total_ms = 0.0;
};

/// Runs the population. Only fails on structural problems (empty
/// manifest); per-environment failures land in EnvironmentResult::error.
Result<SweepReport> RunSweep(const Manifest& manifest,
                             const SweepOptions& options);

/// Serializes the report (schema: tools/schemas/corpus_report_schema.json).
Json ReportToJson(const SweepReport& report, bool include_timings);

}  // namespace wfms::corpus

#endif  // WFMS_CORPUS_SWEEP_H_

# Empty compiler generated dependencies file for iterative_solver_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/audit_trail.cc" "src/workflow/CMakeFiles/wfms_workflow.dir/audit_trail.cc.o" "gcc" "src/workflow/CMakeFiles/wfms_workflow.dir/audit_trail.cc.o.d"
  "/root/repo/src/workflow/calibration.cc" "src/workflow/CMakeFiles/wfms_workflow.dir/calibration.cc.o" "gcc" "src/workflow/CMakeFiles/wfms_workflow.dir/calibration.cc.o.d"
  "/root/repo/src/workflow/configuration.cc" "src/workflow/CMakeFiles/wfms_workflow.dir/configuration.cc.o" "gcc" "src/workflow/CMakeFiles/wfms_workflow.dir/configuration.cc.o.d"
  "/root/repo/src/workflow/environment.cc" "src/workflow/CMakeFiles/wfms_workflow.dir/environment.cc.o" "gcc" "src/workflow/CMakeFiles/wfms_workflow.dir/environment.cc.o.d"
  "/root/repo/src/workflow/environment_io.cc" "src/workflow/CMakeFiles/wfms_workflow.dir/environment_io.cc.o" "gcc" "src/workflow/CMakeFiles/wfms_workflow.dir/environment_io.cc.o.d"
  "/root/repo/src/workflow/scenarios.cc" "src/workflow/CMakeFiles/wfms_workflow.dir/scenarios.cc.o" "gcc" "src/workflow/CMakeFiles/wfms_workflow.dir/scenarios.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/statechart/CMakeFiles/wfms_statechart.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/wfms_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wfms_common.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/wfms_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/wfms_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/transient_availability_test.dir/transient_availability_test.cc.o"
  "CMakeFiles/transient_availability_test.dir/transient_availability_test.cc.o.d"
  "transient_availability_test"
  "transient_availability_test.pdb"
  "transient_availability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_availability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Snapshot I/O guarantees (DESIGN.md "Checkpointing and recovery"):
// bit-exact TLV round-trips, Save->Load->Save byte identity, CRC/framing
// rejection of truncated and bit-flipped files, atomic replacement, and
// RNG state capture reproducing the exact stream tail.
#include "common/snapshot.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace wfms {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("wfms_snapshot_test_") + name))
      .string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SnapshotCodecTest, RoundTripsEveryFieldTypeBitExactly) {
  SnapshotWriter w;
  w.U32(1, 0xDEADBEEFu);
  w.U64(2, 0x0123456789ABCDEFULL);
  w.I64(3, -42);
  w.F64(4, 0.1);  // not exactly representable: survives only if bit-cast
  w.F64(5, -std::numeric_limits<double>::infinity());
  const std::string with_nul = std::string("hello ") + '\0' + "world";
  w.Str(6, with_nul);
  w.VecF64(7, {1.5, -2.25, std::numeric_limits<double>::denorm_min()});
  w.VecI32(8, {-1, 0, 7});
  const uint64_t words[3] = {1, 2, 0xFFFFFFFFFFFFFFFFULL};
  w.VecU64(9, words, 3);

  SnapshotReader r(w.payload());
  auto u32 = r.U32(1);
  ASSERT_TRUE(u32.ok()) << u32.status();
  EXPECT_EQ(*u32, 0xDEADBEEFu);
  auto u64 = r.U64(2);
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0x0123456789ABCDEFULL);
  auto i64 = r.I64(3);
  ASSERT_TRUE(i64.ok());
  EXPECT_EQ(*i64, -42);
  auto f1 = r.F64(4);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(*f1, 0.1);
  auto f2 = r.F64(5);
  ASSERT_TRUE(f2.ok());
  EXPECT_TRUE(std::isinf(*f2) && *f2 < 0);
  auto str = r.Str(6);
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(*str, with_nul);  // embedded NUL survives
  auto vf = r.VecF64(7);
  ASSERT_TRUE(vf.ok());
  EXPECT_EQ(*vf, (std::vector<double>{
                     1.5, -2.25, std::numeric_limits<double>::denorm_min()}));
  auto vi = r.VecI32(8);
  ASSERT_TRUE(vi.ok());
  EXPECT_EQ(*vi, (std::vector<int>{-1, 0, 7}));
  auto vu = r.VecU64(9);
  ASSERT_TRUE(vu.ok());
  EXPECT_EQ(*vu, (std::vector<uint64_t>{1, 2, 0xFFFFFFFFFFFFFFFFULL}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotCodecTest, NanRoundTripsWithPayloadBitsIntact) {
  const double nan = std::nan("0x7ff");
  SnapshotWriter w;
  w.F64(1, nan);
  SnapshotReader r(w.payload());
  auto read = r.F64(1);
  ASSERT_TRUE(read.ok());
  // NaN != NaN, so compare the raw bits.
  double out = *read;
  EXPECT_EQ(std::memcmp(&out, &nan, sizeof(double)), 0);
}

TEST(SnapshotCodecTest, TagMismatchNamesBothTags) {
  SnapshotWriter w;
  w.U32(7, 1);
  SnapshotReader r(w.payload());
  auto read = r.U32(8);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("7"), std::string::npos);
  EXPECT_NE(read.status().message().find("8"), std::string::npos);
}

TEST(SnapshotCodecTest, ReadingPastTheEndFails) {
  SnapshotWriter w;
  w.U32(1, 1);
  SnapshotReader r(w.payload());
  ASSERT_TRUE(r.U32(1).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(r.U32(2).ok());
}

TEST(SnapshotCodecTest, WrongLengthForFixedWidthFieldFails) {
  SnapshotWriter w;
  w.Str(1, "xyz");  // 3-byte value under tag 1
  SnapshotReader r(w.payload());
  EXPECT_FALSE(r.U32(1).ok());  // U32 demands exactly 4 bytes
}

TEST(SnapshotFileTest, SaveLoadSaveIsByteIdentical) {
  const std::string path = TempPath("roundtrip");
  SnapshotWriter w;
  w.Str(1, "payload");
  w.VecF64(2, {3.14159, 2.71828});
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kSearchCheckpoint, w.payload())
          .ok());
  const std::string first = ReadAll(path);

  auto loaded = ReadSnapshotFile(path, SnapshotKind::kSearchCheckpoint);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kSearchCheckpoint, *loaded).ok());
  EXPECT_EQ(ReadAll(path), first);
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, MissingFileIsNotFound) {
  auto loaded = ReadSnapshotFile(TempPath("does_not_exist"),
                                 SnapshotKind::kSearchCheckpoint);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotFileTest, TruncationIsDetectedAtEveryLength) {
  const std::string path = TempPath("truncate");
  SnapshotWriter w;
  w.Str(1, "some payload long enough to truncate meaningfully");
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kSearchCheckpoint, w.payload())
          .ok());
  const std::string intact = ReadAll(path);
  for (size_t len = 0; len < intact.size(); ++len) {
    WriteAll(path, intact.substr(0, len));
    auto loaded = ReadSnapshotFile(path, SnapshotKind::kSearchCheckpoint);
    EXPECT_FALSE(loaded.ok()) << "prefix of length " << len << " accepted";
  }
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, EveryBitFlipIsDetected) {
  const std::string path = TempPath("bitflip");
  SnapshotWriter w;
  w.U64(1, 0x1122334455667788ULL);
  w.Str(2, "checkpoint");
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kSearchCheckpoint, w.payload())
          .ok());
  const std::string intact = ReadAll(path);
  for (size_t byte = 0; byte < intact.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = intact;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      WriteAll(path, damaged);
      auto loaded = ReadSnapshotFile(path, SnapshotKind::kSearchCheckpoint);
      EXPECT_FALSE(loaded.ok())
          << "flip of byte " << byte << " bit " << bit << " accepted";
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, CrcMismatchNamesBothChecksums) {
  const std::string path = TempPath("crcmsg");
  SnapshotWriter w;
  w.Str(1, "x");
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kSearchCheckpoint, w.payload())
          .ok());
  std::string damaged = ReadAll(path);
  // Flip a payload byte (past the 20-byte header, before the CRC footer).
  damaged[damaged.size() - 5] =
      static_cast<char>(damaged[damaged.size() - 5] ^ 0x01);
  WriteAll(path, damaged);
  auto loaded = ReadSnapshotFile(path, SnapshotKind::kSearchCheckpoint);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, WrongKindIsRejected) {
  const std::string path = TempPath("kind");
  SnapshotWriter w;
  w.U32(1, 1);
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kSimulationCheckpoint, w.payload())
          .ok());
  auto loaded = ReadSnapshotFile(path, SnapshotKind::kSearchCheckpoint);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("kind"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, FutureFormatVersionIsRejected) {
  const std::string path = TempPath("version");
  SnapshotWriter w;
  w.U32(1, 1);
  ASSERT_TRUE(
      WriteSnapshotFile(path, SnapshotKind::kSearchCheckpoint, w.payload())
          .ok());
  std::string bytes = ReadAll(path);
  // Bump the version word (offset 4..8) to a future value and re-stamp the
  // CRC so only the version check can object.
  bytes[4] = static_cast<char>(kSnapshotFormatVersion + 1);
  const uint32_t crc = Crc32(std::string_view(bytes).substr(0, bytes.size() - 4));
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  WriteAll(path, bytes);
  auto loaded = ReadSnapshotFile(path, SnapshotKind::kSearchCheckpoint);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, AtomicWriteReplacesExistingFile) {
  const std::string path = TempPath("atomic");
  ASSERT_TRUE(AtomicWriteFile(path, "old contents").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "new").ok());
  EXPECT_EQ(ReadAll(path), "new");
  // No temp litter left beside the destination.
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find(path + ".tmp"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(SnapshotHashTest, Crc32MatchesKnownVector) {
  // The classic IEEE test vector.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

TEST(SnapshotHashTest, Fnv1a64MatchesKnownVectorsAndChains) {
  EXPECT_EQ(Fnv1a64(""), kFnv1a64Seed);
  EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  // Chaining two halves equals hashing the whole.
  EXPECT_EQ(Fnv1a64("world", Fnv1a64("hello")), Fnv1a64("helloworld"));
}

TEST(RngStateTest, RestoreStateReproducesExactStreamTail) {
  Rng rng(12345);
  for (int i = 0; i < 100; ++i) rng.NextDouble();  // advance
  const auto state = rng.SaveState();
  std::vector<double> tail;
  for (int i = 0; i < 1000; ++i) tail.push_back(rng.NextDouble());

  Rng restored(999);  // different seed: state restore must fully override
  restored.RestoreState(state);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(restored.NextDouble(), tail[static_cast<size_t>(i)])
        << "draw " << i;
  }
}

TEST(RngStateTest, SaveStateDoesNotPerturbTheStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 10; ++i) {
    (void)a.SaveState();
    EXPECT_EQ(a.Next(), b.Next());
  }
}

}  // namespace
}  // namespace wfms

file(REMOVE_RECURSE
  "CMakeFiles/environment_io_test.dir/environment_io_test.cc.o"
  "CMakeFiles/environment_io_test.dir/environment_io_test.cc.o.d"
  "environment_io_test"
  "environment_io_test.pdb"
  "environment_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/environment_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Determinism and cache-correctness guarantees of the parallel assessment
// layer (DESIGN.md "Concurrency model"): search results are bit-identical
// whatever the thread count, and memoized assessments are exact replays of
// fresh ones.
#include <gtest/gtest.h>

#include <vector>

#include "configtool/tool.h"
#include "workflow/scenarios.h"

namespace wfms::configtool {
namespace {

using workflow::Configuration;
using workflow::Environment;

Environment MakeEnv(double rate = 1.0) {
  auto env = workflow::EpEnvironment(rate);
  EXPECT_TRUE(env.ok());
  return *std::move(env);
}

Goals StrictGoals() {
  Goals goals;
  goals.max_waiting_time = 0.05;
  goals.min_availability = 0.999999;
  return goals;
}

// Bitwise comparison of everything a search result derives from the model.
// cache_hits is deliberately excluded: it is an execution statistic that
// may vary with the thread count (speculative prefills populate the cache).
void ExpectBitIdentical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.satisfied, b.satisfied);
  EXPECT_EQ(a.evaluations, b.evaluations);
  const auto& pa = a.assessment.performability;
  const auto& pb = b.assessment.performability;
  EXPECT_EQ(pa.availability, pb.availability);
  EXPECT_EQ(pa.prob_down, pb.prob_down);
  EXPECT_EQ(pa.prob_saturated, pb.prob_saturated);
  EXPECT_EQ(pa.prob_degraded, pb.prob_degraded);
  EXPECT_EQ(pa.max_expected_waiting, pb.max_expected_waiting);
  ASSERT_EQ(pa.expected_waiting.size(), pb.expected_waiting.size());
  for (size_t x = 0; x < pa.expected_waiting.size(); ++x) {
    EXPECT_EQ(pa.expected_waiting[x], pb.expected_waiting[x]) << "type " << x;
  }
  ASSERT_EQ(a.assessment.instance_delays.size(),
            b.assessment.instance_delays.size());
  for (size_t t = 0; t < a.assessment.instance_delays.size(); ++t) {
    EXPECT_EQ(a.assessment.instance_delays[t],
              b.assessment.instance_delays[t]);
  }
}

// Fresh tool per thread count: a shared tool's cache would replay entries
// whose solver round-off depends on which search warmed them first.
ConfigurationTool MakeTool(const Environment& env, size_t threads) {
  auto tool = ConfigurationTool::Create(env);
  EXPECT_TRUE(tool.ok()) << tool.status();
  tool->set_num_threads(threads);
  return *std::move(tool);
}

TEST(ParallelSearchTest, GreedyIsBitIdenticalAcrossThreadCounts) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool sequential = MakeTool(env, 1);
  const ConfigurationTool parallel = MakeTool(env, 4);
  auto seq = sequential.GreedyMinCost(StrictGoals());
  auto par = parallel.GreedyMinCost(StrictGoals());
  ASSERT_TRUE(seq.ok()) << seq.status();
  ASSERT_TRUE(par.ok()) << par.status();
  ASSERT_TRUE(seq->satisfied);
  ExpectBitIdentical(*seq, *par);
}

TEST(ParallelSearchTest, BranchAndBoundIsBitIdenticalAcrossThreadCounts) {
  const Environment env = MakeEnv(1.0);
  SearchConstraints constraints;
  constraints.max_replicas = {3, 3, 4};
  const ConfigurationTool sequential = MakeTool(env, 1);
  const ConfigurationTool parallel = MakeTool(env, 4);
  auto seq = sequential.BranchAndBoundMinCost(StrictGoals(), constraints);
  auto par = parallel.BranchAndBoundMinCost(StrictGoals(), constraints);
  ASSERT_TRUE(seq.ok()) << seq.status();
  ASSERT_TRUE(par.ok()) << par.status();
  ASSERT_TRUE(seq->satisfied);
  ExpectBitIdentical(*seq, *par);
}

TEST(ParallelSearchTest, ExhaustiveIsBitIdenticalAcrossThreadCounts) {
  const Environment env = MakeEnv(1.0);
  SearchConstraints constraints;
  constraints.max_replicas = {3, 3, 4};
  const ConfigurationTool sequential = MakeTool(env, 1);
  const ConfigurationTool parallel = MakeTool(env, 4);
  auto seq = sequential.ExhaustiveMinCost(StrictGoals(), constraints);
  auto par = parallel.ExhaustiveMinCost(StrictGoals(), constraints);
  ASSERT_TRUE(seq.ok()) << seq.status();
  ASSERT_TRUE(par.ok()) << par.status();
  ExpectBitIdentical(*seq, *par);
}

TEST(ParallelSearchTest, AssessBatchMatchesSequentialAssess) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool batch_tool = MakeTool(env, 4);
  const ConfigurationTool seq_tool = MakeTool(env, 1);
  const std::vector<Configuration> configs = {
      Configuration({1, 1, 1}), Configuration({1, 2, 1}),
      Configuration({2, 1, 2}), Configuration({2, 2, 3}),
      Configuration({1, 1, 4})};
  auto batched = batch_tool.AssessBatch(configs, StrictGoals());
  ASSERT_TRUE(batched.ok()) << batched.status();
  ASSERT_EQ(batched->size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    auto single = seq_tool.Assess(configs[i], StrictGoals());
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batched)[i].config, configs[i]);
    EXPECT_EQ((*batched)[i].cost, single->cost);
    EXPECT_EQ((*batched)[i].Satisfies(), single->Satisfies());
    EXPECT_EQ((*batched)[i].performability.availability,
              single->performability.availability);
    for (size_t x = 0; x < env.num_server_types(); ++x) {
      EXPECT_EQ((*batched)[i].performability.expected_waiting[x],
                single->performability.expected_waiting[x]);
    }
  }
}

TEST(ParallelSearchTest, MemoizedAssessEqualsFresh) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env, 1);
  const Configuration config({2, 2, 2});
  auto cold = tool.Assess(config, StrictGoals());
  ASSERT_TRUE(cold.ok());
  auto stats = tool.cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);

  auto warm = tool.Assess(config, StrictGoals());
  ASSERT_TRUE(warm.ok());
  stats = tool.cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 1u);

  EXPECT_EQ(cold->performability.availability,
            warm->performability.availability);
  for (size_t x = 0; x < env.num_server_types(); ++x) {
    EXPECT_EQ(cold->performability.expected_waiting[x],
              warm->performability.expected_waiting[x]);
  }
  EXPECT_EQ(cold->cost, warm->cost);
  EXPECT_EQ(cold->Satisfies(), warm->Satisfies());

  // The memoized report equals what an untouched tool computes from cold.
  const ConfigurationTool fresh = MakeTool(env, 1);
  auto independent = fresh.Assess(config, StrictGoals());
  ASSERT_TRUE(independent.ok());
  EXPECT_EQ(independent->performability.availability,
            warm->performability.availability);
  for (size_t x = 0; x < env.num_server_types(); ++x) {
    EXPECT_EQ(independent->performability.expected_waiting[x],
              warm->performability.expected_waiting[x]);
  }
}

TEST(ParallelSearchTest, CacheServesDifferentGoalsWithoutResolving) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env, 1);
  const Configuration config({2, 2, 2});
  ASSERT_TRUE(tool.Assess(config, StrictGoals()).ok());

  Goals lax;
  lax.max_waiting_time = 60.0;
  lax.min_availability = 0.5;
  auto relaxed = tool.Assess(config, lax);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_TRUE(relaxed->Satisfies());
  // Same replication vector: the goal change must not trigger a new solve.
  EXPECT_EQ(tool.cache_stats().misses, 1u);
  EXPECT_EQ(tool.cache_stats().hits, 1u);
}

TEST(ParallelSearchTest, ClearAssessmentCacheForcesResolve) {
  const Environment env = MakeEnv(1.0);
  ConfigurationTool tool = MakeTool(env, 1);
  const Configuration config({2, 2, 2});
  ASSERT_TRUE(tool.Assess(config, StrictGoals()).ok());
  tool.ClearAssessmentCache();
  EXPECT_EQ(tool.cache_stats().entries, 0u);
  ASSERT_TRUE(tool.Assess(config, StrictGoals()).ok());
  EXPECT_EQ(tool.cache_stats().misses, 2u);
}

TEST(ParallelSearchTest, SearchReportsCacheHits) {
  const Environment env = MakeEnv(1.0);
  const ConfigurationTool tool = MakeTool(env, 1);
  SearchConstraints constraints;
  constraints.max_replicas = {3, 3, 4};
  auto first = tool.BranchAndBoundMinCost(StrictGoals(), constraints);
  ASSERT_TRUE(first.ok());
  // Replaying the same search on the warmed tool answers purely from cache.
  auto replay = tool.BranchAndBoundMinCost(StrictGoals(), constraints);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->cache_hits, replay->evaluations);
  EXPECT_EQ(replay->config, first->config);
  EXPECT_EQ(replay->cost, first->cost);
}

}  // namespace
}  // namespace wfms::configtool

#include "linalg/vector.h"

#include <cmath>

#include "common/logging.h"

namespace wfms::linalg {

double Dot(const Vector& a, const Vector& b) {
  WFMS_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void Axpy(double alpha, const Vector& x, Vector* y) {
  WFMS_DCHECK(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vector* x) {
  for (double& v : *x) v *= alpha;
}

double Norm2(const Vector& x) { return std::sqrt(Dot(x, x)); }

double NormInf(const Vector& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::fabs(v));
  return m;
}

double Sum(const Vector& x) {
  double s = 0.0;
  for (double v : x) s += v;
  return s;
}

double MaxAbsDiff(const Vector& a, const Vector& b) {
  WFMS_DCHECK(a.size() == b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

void NormalizeL1(Vector* x) {
  const double s = Sum(*x);
  WFMS_CHECK_NE(s, 0.0);
  Scale(1.0 / s, x);
}

}  // namespace wfms::linalg

# Empty compiler generated dependencies file for absorbing_ctmc_test.
# This may be replaced when dependencies are built.

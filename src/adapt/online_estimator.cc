#include "adapt/online_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace wfms::adapt {

namespace {

double ZForLevel(double level) {
  if (level >= 0.989) return 2.5758293035489004;
  if (level <= 0.901) return 1.6448536269514722;
  return 1.959963984540054;  // 95%
}

}  // namespace

// ---------------------------------------------------------------------------
// DecayedMoments

DecayedMoments::DecayedMoments(double tau) : tau_(tau > 0.0 ? tau : 1.0) {}

void DecayedMoments::Add(double time, double value) {
  WFMS_DCHECK(time >= last_time_ || weight_ == 0.0);
  if (weight_ > 0.0 && time > last_time_) {
    const double decay = std::exp(-(time - last_time_) / tau_);
    weight_ *= decay;
    weighted_sum_ *= decay;
    weighted_sq_ *= decay;
  }
  last_time_ = std::max(last_time_, time);
  weight_ += 1.0;
  weighted_sum_ += value;
  weighted_sq_ += value * value;
}

void DecayedMoments::Reset() {
  last_time_ = 0.0;
  weight_ = 0.0;
  weighted_sum_ = 0.0;
  weighted_sq_ = 0.0;
}

double DecayedMoments::mean() const {
  return weight_ > 0.0 ? weighted_sum_ / weight_ : 0.0;
}

double DecayedMoments::second_moment() const {
  return weight_ > 0.0 ? weighted_sq_ / weight_ : 0.0;
}

double DecayedMoments::variance() const {
  const double m = mean();
  return std::max(0.0, second_moment() - m * m);
}

double DecayedMoments::effective_samples(double now) const {
  if (weight_ <= 0.0) return 0.0;
  if (now <= last_time_) return weight_;
  return weight_ * std::exp(-(now - last_time_) / tau_);
}

double DecayedMoments::ConfidenceHalfWidth(double level) const {
  const double n = effective_samples();
  if (n < 2.0) return 0.0;
  return ZForLevel(level) * std::sqrt(variance() / n);
}

// ---------------------------------------------------------------------------
// WindowedRate

WindowedRate::WindowedRate(double window)
    : window_(window > 0.0 ? window : 1.0) {}

void WindowedRate::AddEvent(double time) {
  events_.push_back(time);
  PruneBefore(time - window_);
}

void WindowedRate::Reset() { events_.clear(); }

void WindowedRate::PruneBefore(double cutoff) const {
  while (!events_.empty() && events_.front() <= cutoff) events_.pop_front();
}

int64_t WindowedRate::count(double now) const {
  PruneBefore(now - window_);
  return static_cast<int64_t>(events_.size());
}

double WindowedRate::rate(double now) const {
  const double span = std::min(std::max(now, 1e-12), window_);
  return static_cast<double>(count(now)) / span;
}

double WindowedRate::ConfidenceHalfWidth(double now, double level) const {
  const double span = std::min(std::max(now, 1e-12), window_);
  return ZForLevel(level) * std::sqrt(static_cast<double>(count(now))) / span;
}

// ---------------------------------------------------------------------------
// WindowedSample

WindowedSample::WindowedSample(double window)
    : window_(window > 0.0 ? window : 1.0) {}

void WindowedSample::Add(double time, double value) {
  samples_.emplace_back(time, value);
  PruneBefore(time - window_);
}

void WindowedSample::Reset() { samples_.clear(); }

void WindowedSample::PruneBefore(double cutoff) const {
  while (!samples_.empty() && samples_.front().first <= cutoff) {
    samples_.pop_front();
  }
}

int64_t WindowedSample::count(double now) const {
  PruneBefore(now - window_);
  return static_cast<int64_t>(samples_.size());
}

double WindowedSample::mean(double now) const {
  PruneBefore(now - window_);
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [t, v] : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double WindowedSample::stddev(double now) const {
  PruneBefore(now - window_);
  if (samples_.size() < 2) return 0.0;
  const double m = mean(now);
  double sq = 0.0;
  for (const auto& [t, v] : samples_) sq += (v - m) * (v - m);
  return std::sqrt(sq / static_cast<double>(samples_.size() - 1));
}

double WindowedSample::ConfidenceHalfWidth(double now, double level) const {
  const int64_t n = count(now);
  if (n < 2) return 0.0;
  return ZForLevel(level) * stddev(now) / std::sqrt(static_cast<double>(n));
}

// ---------------------------------------------------------------------------
// FailureRepairEstimator

void FailureRepairEstimator::Observe(const workflow::ServerCountRecord& record) {
  if (started_ && record.time >= last_time_) {
    const double dt = record.time - last_time_;
    up_server_time_ += dt * static_cast<double>(last_up_);
    down_server_time_ +=
        dt * static_cast<double>(std::max(0, last_configured_ - last_up_));
    if (record.up < last_up_) failures_ += last_up_ - record.up;
    if (record.up > last_up_) repairs_ += record.up - last_up_;
  }
  started_ = true;
  last_time_ = record.time;
  last_up_ = record.up;
  last_configured_ = record.configured;
}

void FailureRepairEstimator::Reset() { *this = FailureRepairEstimator(); }

Result<double> FailureRepairEstimator::FailureRate(int64_t min_events) const {
  if (failures_ < min_events || up_server_time_ <= 0.0) {
    return Status::NotFound("too few observed failures for a rate estimate");
  }
  return static_cast<double>(failures_) / up_server_time_;
}

Result<double> FailureRepairEstimator::RepairRate(int64_t min_events) const {
  if (repairs_ < min_events || down_server_time_ <= 0.0) {
    return Status::NotFound("too few observed repairs for a rate estimate");
  }
  return static_cast<double>(repairs_) / down_server_time_;
}

// ---------------------------------------------------------------------------
// OnlineCalibrator

OnlineCalibrator::OnlineCalibrator(const workflow::Environment* env,
                                   OnlineCalibratorOptions options)
    : env_(env), options_(options) {
  WFMS_CHECK(env_ != nullptr);
  const size_t k = env_->num_server_types();
  service_moments_.assign(k, DecayedMoments(options_.tau));
  failure_repair_.assign(k, FailureRepairEstimator());
  up_counts_.assign(k, 0);
  up_known_.assign(k, 0);
  for (const auto& wf : env_->workflows) {
    arrival_rates_.emplace(wf.name, WindowedRate(options_.window));
    turnarounds_.emplace(wf.name, WindowedSample(options_.window));
  }
}

void OnlineCalibrator::Advance(double time) {
  if (time > now_) now_ = time;
}

void OnlineCalibrator::Consume(const AuditEvent& event) {
  ++events_consumed_;
  Advance(EventTime(event));
  if (const auto* visit = std::get_if<workflow::StateVisitRecord>(&event)) {
    visit_history_.push_back(*visit);
  } else if (const auto* service =
                 std::get_if<workflow::ServiceRecord>(&event)) {
    if (service->server_type < service_moments_.size()) {
      service_moments_[service->server_type].Add(service->time,
                                                 service->service_time);
    }
    service_history_.push_back(*service);
  } else if (const auto* arrival =
                 std::get_if<workflow::ArrivalRecord>(&event)) {
    auto it = arrival_rates_.find(arrival->workflow_type);
    if (it != arrival_rates_.end()) it->second.AddEvent(arrival->arrival_time);
    arrival_history_.push_back(*arrival);
  } else if (const auto* completion =
                 std::get_if<workflow::CompletionRecord>(&event)) {
    auto it = turnarounds_.find(completion->workflow_type);
    if (it != turnarounds_.end()) {
      it->second.Add(completion->end_time,
                     completion->end_time - completion->start_time);
    }
  } else if (const auto* count =
                 std::get_if<workflow::ServerCountRecord>(&event)) {
    if (count->server_type < failure_repair_.size()) {
      failure_repair_[count->server_type].Observe(*count);
      up_counts_[count->server_type] = count->up;
      up_known_[count->server_type] = 1;
      any_server_record_ = true;
      bool all_up = true;
      for (size_t i = 0; i < up_counts_.size(); ++i) {
        if (up_known_[i] && up_counts_[i] <= 0) all_up = false;
      }
      availability_log_.emplace_back(count->time, all_up ? 1 : 0);
    }
  }
  PruneHistory();
}

void OnlineCalibrator::PruneHistory() {
  const double cutoff = now_ - options_.window;
  while (!visit_history_.empty() && visit_history_.front().leave_time <= cutoff)
    visit_history_.pop_front();
  while (!service_history_.empty() && service_history_.front().time <= cutoff)
    service_history_.pop_front();
  while (!arrival_history_.empty() &&
         arrival_history_.front().arrival_time <= cutoff)
    arrival_history_.pop_front();
  // Keep one availability entry at or before the cutoff so the integral over
  // the window has a defined starting value.
  while (availability_log_.size() > 1 &&
         availability_log_[1].first <= cutoff) {
    availability_log_.pop_front();
  }
}

WorkflowEstimate OnlineCalibrator::EstimateFor(
    const std::string& workflow) const {
  WorkflowEstimate estimate;
  auto rate_it = arrival_rates_.find(workflow);
  if (rate_it != arrival_rates_.end()) {
    estimate.arrival_rate = rate_it->second.rate(now_);
    estimate.arrival_half_width = rate_it->second.ConfidenceHalfWidth(now_);
    estimate.arrivals = rate_it->second.count(now_);
  }
  auto turn_it = turnarounds_.find(workflow);
  if (turn_it != turnarounds_.end()) {
    estimate.turnaround_mean = turn_it->second.mean(now_);
    estimate.turnaround_half_width = turn_it->second.ConfidenceHalfWidth(now_);
    estimate.completions = turn_it->second.count(now_);
  }
  return estimate;
}

const DecayedMoments& OnlineCalibrator::ServiceMoments(
    size_t server_type) const {
  WFMS_CHECK(server_type < service_moments_.size());
  return service_moments_[server_type];
}

const FailureRepairEstimator& OnlineCalibrator::FailureRepair(
    size_t server_type) const {
  WFMS_CHECK(server_type < failure_repair_.size());
  return failure_repair_[server_type];
}

double OnlineCalibrator::ObservedAvailability() const {
  if (!any_server_record_ || availability_log_.empty()) return 1.0;
  const double window_start = std::max(0.0, now_ - options_.window);
  double up_time = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < availability_log_.size(); ++i) {
    const double from = std::max(window_start, availability_log_[i].first);
    const double to = (i + 1 < availability_log_.size())
                          ? std::max(window_start,
                                     availability_log_[i + 1].first)
                          : now_;
    if (to <= from) continue;
    total += to - from;
    if (availability_log_[i].second) up_time += to - from;
  }
  if (total <= 0.0) {
    return availability_log_.back().second ? 1.0 : 0.0;
  }
  return up_time / total;
}

Result<workflow::Environment> OnlineCalibrator::RebuildEnvironment(
    workflow::CalibrationReport* report) const {
  // Replay the windowed history through the batch calibration math.
  workflow::AuditTrail trail;
  for (const auto& visit : visit_history_) trail.RecordStateVisit(visit);
  for (const auto& service : service_history_) trail.RecordService(service);
  for (const auto& arrival : arrival_history_) trail.RecordArrival(arrival);
  workflow::CalibrationOptions cal_options;
  cal_options.min_observations = options_.min_observations;
  WFMS_ASSIGN_OR_RETURN(
      workflow::Environment calibrated,
      workflow::CalibrateEnvironment(*env_, trail, cal_options, report));

  // The batch arrival-rate estimate divides by the span since t = 0; the
  // windowed estimator is anchored to the observation window, so it tracks
  // a load shift instead of averaging it away. Override where trusted.
  for (auto& wf : calibrated.workflows) {
    auto it = arrival_rates_.find(wf.name);
    if (it == arrival_rates_.end()) continue;
    if (it->second.count(now_) >= options_.min_observations) {
      wf.arrival_rate = it->second.rate(now_);
    }
  }

  // Failure/repair rates: the batch path has no server-count records at
  // all; the online estimator is the only source. Designed values are kept
  // where observations are thin.
  for (size_t i = 0; i < calibrated.servers.size(); ++i) {
    workflow::ServerType& type = calibrated.servers.mutable_type(i);
    if (auto rate = failure_repair_[i].FailureRate(options_.min_observations);
        rate.ok()) {
      type.failure_rate = *rate;
    }
    if (auto rate = failure_repair_[i].RepairRate(options_.min_observations);
        rate.ok()) {
      type.repair_rate = *rate;
    }
  }
  return calibrated;
}

void OnlineCalibrator::ResetEstimators() {
  for (auto& [name, rate] : arrival_rates_) rate.Reset();
  for (auto& [name, sample] : turnarounds_) sample.Reset();
  for (auto& moments : service_moments_) moments.Reset();
  for (auto& estimator : failure_repair_) estimator.Reset();
  visit_history_.clear();
  service_history_.clear();
  arrival_history_.clear();
  // The availability log keeps its last entry: the up/down state persists
  // across a reconfiguration even though the statistics restart.
  if (availability_log_.size() > 1) {
    availability_log_.erase(availability_log_.begin(),
                            availability_log_.end() - 1);
  }
}

}  // namespace wfms::adapt

#include "service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/metrics.h"

namespace wfms::service {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

/// Waits for `events` on `fd` within the timeout. OK, DeadlineExceeded,
/// or Unavailable (poll error).
Status PollFor(int fd, short events, double timeout_seconds) {
  pollfd p{fd, events, 0};
  const int timeout_ms =
      timeout_seconds <= 0.0
          ? -1
          : static_cast<int>(std::min(timeout_seconds * 1000.0, 2.0e9));
  for (;;) {
    const int ready = ::poll(&p, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("timed out after " +
                                      std::to_string(timeout_seconds) +
                                      "s waiting for the server");
    }
    return Status::OK();
  }
}

}  // namespace

Client::Client(const ClientOptions& options)
    : options_(options), rng_(options.jitter_seed) {}

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : options_(std::move(other.options_)),
      fd_(other.fd_),
      buffer_(std::move(other.buffer_)),
      rng_(other.rng_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    options_ = std::move(other.options_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    rng_ = other.rng_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status Client::Connect() {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return ErrnoStatus("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host '" + options_.host + "'");
  }

  // Non-blocking connect so the timeout is enforceable.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status failed = ErrnoStatus("connect " + options_.host + ":" +
                                std::to_string(options_.port));
    Close();
    return failed;
  }
  if (rc != 0) {
    Status ready = PollFor(fd_, POLLOUT, options_.connect_timeout_seconds);
    if (!ready.ok()) {
      Close();
      return ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      Close();
      return Status::Unavailable("connect " + options_.host + ":" +
                                 std::to_string(options_.port) + ": " +
                                 std::strerror(err));
    }
  }
  ::fcntl(fd_, F_SETFL, flags);  // back to blocking; I/O uses poll
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status Client::ReadLine(std::string* line) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(options_.io_timeout_seconds);
  for (;;) {
    const size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      *line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return Status::OK();
    }
    const double remaining =
        std::chrono::duration<double>(deadline -
                                      std::chrono::steady_clock::now())
            .count();
    if (remaining <= 0.0) {
      return Status::DeadlineExceeded(
          "timed out after " + std::to_string(options_.io_timeout_seconds) +
          "s waiting for a response line");
    }
    WFMS_RETURN_NOT_OK(PollFor(fd_, POLLIN, remaining));
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read");
    }
    if (n == 0) {
      return Status::Unavailable("connection closed by the server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status Client::Send(const std::string& request_line) {
  if (fd_ < 0) WFMS_RETURN_NOT_OK(Connect());
  std::string framed = request_line;
  framed.push_back('\n');
  size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status failed = ErrnoStatus("write");
      Close();
      return failed;
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> Client::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string response;
  Status read = ReadLine(&response);
  if (!read.ok()) {
    Close();
    return read;
  }
  return response;
}

Result<std::string> Client::CallOnce(const std::string& line,
                                     bool* maybe_sent) {
  if (fd_ < 0) WFMS_RETURN_NOT_OK(Connect());
  // From here on bytes may reach the server even if the write errors
  // part-way — the conservative cutoff for non-idempotent retries.
  if (maybe_sent != nullptr) *maybe_sent = true;
  WFMS_RETURN_NOT_OK(Send(line));
  std::string response;
  Status read = ReadLine(&response);
  if (!read.ok()) {
    Close();  // the stream position is unknown; resync via reconnect
    return read;
  }
  return response;
}

Result<std::string> Client::Call(const std::string& request_line,
                                 bool idempotent) {
  static metrics::Counter& retries = metrics::MetricsRegistry::Global()
      .GetCounter("wfms_service_client_retries_total");
  double backoff = options_.backoff_initial_seconds;
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      retries.Increment();
      // Full jitter: sleep uniform in (0, backoff] so retry storms from
      // many clients decorrelate instead of hammering in waves.
      std::uniform_real_distribution<double> jitter(0.0, backoff);
      const double sleep_s = std::max(1e-4, jitter(rng_));
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      backoff = std::min(backoff * options_.backoff_multiplier,
                         options_.backoff_max_seconds);
    }
    bool maybe_sent = false;
    Result<std::string> response = CallOnce(request_line, &maybe_sent);
    if (response.ok()) return response;
    last = response.status();
    // InvalidArgument (bad host) cannot improve with retries.
    if (last.code() == StatusCode::kInvalidArgument) return last;
    if (!idempotent && maybe_sent) {
      // The request may have reached the server; re-sending a mutating
      // command could apply it twice. Surface the transport error.
      return last.WithContext(
          "not retried: the non-idempotent request may have reached the "
          "server");
    }
  }
  return Status::Unavailable(
      "request failed after " + std::to_string(options_.max_retries + 1) +
      " attempt(s): " + last.ToString());
}

}  // namespace wfms::service

#!/usr/bin/env bash
# End-to-end determinism check of the corpus sweep (ISSUE acceptance
# criterion): a 50-environment manifest generated under a fixed seed, with
# the largest environment at 512 tasks, sweeps end-to-end; the manifest
# and the sweep report are byte-identical across two independent runs,
# and the report accounts for every environment with zero errors.
#
# usage: corpus_e2e_test.sh <wfmsctl> <workdir>
set -eu

WFMSCTL="$1"
WORKDIR="$2/corpus_e2e_test"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

run_sweep() {
  "$WFMSCTL" corpus --generate 50 --seed 42 --max-tasks 512 \
      --manifest "$WORKDIR/manifest_$1.json" \
      --report "$WORKDIR/report_$1.json" \
      --no-timings 2> "$WORKDIR/progress_$1.log"
}

echo "== sweep twice under seed 42"
run_sweep a
run_sweep b

echo "== manifest and report are byte-identical across runs"
cmp "$WORKDIR/manifest_a.json" "$WORKDIR/manifest_b.json"
cmp "$WORKDIR/report_a.json" "$WORKDIR/report_b.json"

echo "== report covers all 50 environments with zero errors"
grep -q '"environments":50' "$WORKDIR/report_a.json"
grep -q '"errors":0' "$WORKDIR/report_a.json"

echo "== the largest environment reaches 512 tasks"
grep -q '"num_tasks":512' "$WORKDIR/manifest_a.json"
grep -Eq '"tasks":(51[2-9]|5[2-9][0-9]|[6-9][0-9][0-9]|[0-9]{4,})' \
    "$WORKDIR/report_a.json"

echo "== progress stream saw every environment"
test "$(grep -c '^corpus: \[' "$WORKDIR/progress_a.log")" -eq 50

echo "PASS"

file(REMOVE_RECURSE
  "libwfms_performability.a"
)

#include "configtool/checkpoint.h"

#include <chrono>
#include <utility>

#include "common/metrics.h"
#include "common/snapshot.h"
#include "common/trace.h"
#include "workflow/environment_io.h"

namespace wfms::configtool {

namespace {

// Top-level payload tags.
constexpr uint32_t kTagFingerprint = 1;
constexpr uint32_t kTagStrategy = 2;
constexpr uint32_t kTagEvaluations = 3;
constexpr uint32_t kTagHaveBest = 4;
constexpr uint32_t kTagBestReplicas = 5;
constexpr uint32_t kTagBestCost = 6;
constexpr uint32_t kTagBestSatisfied = 7;
constexpr uint32_t kTagReportCount = 8;
constexpr uint32_t kTagFailureCount = 9;
// Per memoized report.
constexpr uint32_t kTagReplicas = 10;
constexpr uint32_t kTagExpectedWaiting = 11;
constexpr uint32_t kTagMaxExpectedWaiting = 12;
constexpr uint32_t kTagFullConfigWaiting = 13;
constexpr uint32_t kTagProbDown = 14;
constexpr uint32_t kTagProbSaturated = 15;
constexpr uint32_t kTagProbDegraded = 16;
constexpr uint32_t kTagAvailability = 17;
constexpr uint32_t kTagAvailStateProbabilities = 18;
constexpr uint32_t kTagSolverIterations = 19;
constexpr uint32_t kTagSolverMethod = 20;
constexpr uint32_t kTagDiagFlags = 21;
constexpr uint32_t kTagDiagIterations = 22;
constexpr uint32_t kTagDiagResidual = 23;
constexpr uint32_t kTagDiagWallTime = 24;
// Per negatively cached failure.
constexpr uint32_t kTagFailureReplicas = 30;
constexpr uint32_t kTagFailureCode = 31;
constexpr uint32_t kTagFailureMessage = 32;
constexpr uint32_t kTagFailureFlags = 33;

void WriteReport(SnapshotWriter* w, const std::vector<int>& replicas,
                 const performability::PerformabilityReport& report) {
  w->VecI32(kTagReplicas, replicas);
  w->VecF64(kTagExpectedWaiting, report.expected_waiting);
  w->F64(kTagMaxExpectedWaiting, report.max_expected_waiting);
  w->VecF64(kTagFullConfigWaiting, report.full_config_waiting);
  w->F64(kTagProbDown, report.prob_down);
  w->F64(kTagProbSaturated, report.prob_saturated);
  w->F64(kTagProbDegraded, report.prob_degraded);
  w->F64(kTagAvailability, report.availability);
  w->VecF64(kTagAvailStateProbabilities, report.avail_state_probabilities);
  w->I64(kTagSolverIterations, report.solver_iterations);
  w->U32(kTagSolverMethod,
         static_cast<uint32_t>(report.avail_solver_method));
  const SolveDiagnostics& diag = report.avail_solver_diagnostics;
  w->U32(kTagDiagFlags, (diag.converged ? 1u : 0u) |
                            (diag.diverged ? 2u : 0u) |
                            (diag.stalled ? 4u : 0u));
  w->I64(kTagDiagIterations, diag.iterations);
  w->F64(kTagDiagResidual, diag.final_residual);
  w->F64(kTagDiagWallTime, diag.wall_time_seconds);
}

Result<std::pair<std::vector<int>, performability::PerformabilityReport>>
ReadReport(SnapshotReader* r) {
  std::pair<std::vector<int>, performability::PerformabilityReport> entry;
  performability::PerformabilityReport& report = entry.second;
  WFMS_ASSIGN_OR_RETURN(entry.first, r->VecI32(kTagReplicas));
  WFMS_ASSIGN_OR_RETURN(report.expected_waiting,
                        r->VecF64(kTagExpectedWaiting));
  WFMS_ASSIGN_OR_RETURN(report.max_expected_waiting,
                        r->F64(kTagMaxExpectedWaiting));
  WFMS_ASSIGN_OR_RETURN(report.full_config_waiting,
                        r->VecF64(kTagFullConfigWaiting));
  WFMS_ASSIGN_OR_RETURN(report.prob_down, r->F64(kTagProbDown));
  WFMS_ASSIGN_OR_RETURN(report.prob_saturated, r->F64(kTagProbSaturated));
  WFMS_ASSIGN_OR_RETURN(report.prob_degraded, r->F64(kTagProbDegraded));
  WFMS_ASSIGN_OR_RETURN(report.availability, r->F64(kTagAvailability));
  WFMS_ASSIGN_OR_RETURN(report.avail_state_probabilities,
                        r->VecF64(kTagAvailStateProbabilities));
  WFMS_ASSIGN_OR_RETURN(int64_t solver_iterations,
                        r->I64(kTagSolverIterations));
  report.solver_iterations = static_cast<int>(solver_iterations);
  WFMS_ASSIGN_OR_RETURN(uint32_t method, r->U32(kTagSolverMethod));
  report.avail_solver_method =
      static_cast<markov::SteadyStateMethod>(method);
  SolveDiagnostics& diag = report.avail_solver_diagnostics;
  WFMS_ASSIGN_OR_RETURN(uint32_t flags, r->U32(kTagDiagFlags));
  diag.converged = (flags & 1u) != 0;
  diag.diverged = (flags & 2u) != 0;
  diag.stalled = (flags & 4u) != 0;
  WFMS_ASSIGN_OR_RETURN(int64_t diag_iterations, r->I64(kTagDiagIterations));
  diag.iterations = static_cast<int>(diag_iterations);
  WFMS_ASSIGN_OR_RETURN(diag.final_residual, r->F64(kTagDiagResidual));
  WFMS_ASSIGN_OR_RETURN(diag.wall_time_seconds, r->F64(kTagDiagWallTime));
  return entry;
}

}  // namespace

void EncodeCachedReport(SnapshotWriter* w, const std::vector<int>& replicas,
                        const performability::PerformabilityReport& report) {
  WriteReport(w, replicas, report);
}

Result<std::pair<std::vector<int>, performability::PerformabilityReport>>
DecodeCachedReport(SnapshotReader* r) {
  return ReadReport(r);
}

void EncodeCachedFailure(SnapshotWriter* w, const std::vector<int>& replicas,
                         const ConfigurationTool::CachedFailure& failure) {
  w->VecI32(kTagFailureReplicas, replicas);
  w->U32(kTagFailureCode, static_cast<uint32_t>(failure.error.code()));
  w->Str(kTagFailureMessage, failure.error.message());
  w->U32(kTagFailureFlags, (failure.numerical ? 1u : 0u) |
                               (failure.retried_exact ? 2u : 0u));
}

Result<std::pair<std::vector<int>, ConfigurationTool::CachedFailure>>
DecodeCachedFailure(SnapshotReader* r) {
  std::pair<std::vector<int>, ConfigurationTool::CachedFailure> entry;
  WFMS_ASSIGN_OR_RETURN(entry.first, r->VecI32(kTagFailureReplicas));
  WFMS_ASSIGN_OR_RETURN(uint32_t code, r->U32(kTagFailureCode));
  WFMS_ASSIGN_OR_RETURN(std::string message, r->Str(kTagFailureMessage));
  entry.second.error =
      Status(static_cast<StatusCode>(code), std::move(message));
  WFMS_ASSIGN_OR_RETURN(uint32_t flags, r->U32(kTagFailureFlags));
  entry.second.numerical = (flags & 1u) != 0;
  entry.second.retried_exact = (flags & 2u) != 0;
  return entry;
}

uint64_t SearchFingerprint(const workflow::Environment& env,
                           const Goals& goals,
                           const SearchConstraints& constraints,
                           const CostModel& cost, std::string_view strategy,
                           const AnnealingOptions* annealing) {
  // Canonical encoding via the same TLV codec the payload uses: every
  // input that changes what a cached report means (or which candidates a
  // search visits) lands in the hash, bit-exactly for doubles.
  SnapshotWriter w;
  w.Str(1, workflow::SerializeEnvironment(env));
  w.F64(2, goals.max_waiting_time);
  w.F64(3, goals.min_availability);
  w.VecF64(4, goals.per_type_max_waiting);
  w.F64(5, goals.max_saturation_probability);
  for (const auto& [workflow_type, bound] : goals.max_instance_delay) {
    w.Str(6, workflow_type);
    w.F64(7, bound);
  }
  w.VecI32(8, constraints.min_replicas);
  w.VecI32(9, constraints.max_replicas);
  w.VecF64(10, cost.per_server_cost);
  w.Str(11, strategy);
  if (annealing != nullptr) {
    w.U64(12, annealing->seed);
    w.I64(13, annealing->iterations);
    w.F64(14, annealing->initial_temperature);
    w.F64(15, annealing->cooling);
    w.F64(16, annealing->infeasibility_penalty);
  }
  return Fnv1a64(w.payload());
}

Status WriteSearchCheckpoint(const std::string& path,
                             const ConfigurationTool& tool,
                             uint64_t fingerprint, std::string_view strategy,
                             const SearchResult* best_so_far) {
  auto& registry = metrics::MetricsRegistry::Global();
  static metrics::Counter& writes =
      registry.GetCounter("wfms_configtool_checkpoint_writes_total");
  static metrics::Histogram& write_seconds =
      registry.GetHistogram("wfms_configtool_checkpoint_write_seconds");
  writes.Increment();
  trace::TraceSpan span("configtool/checkpoint_write", "configtool");
  const auto start = std::chrono::steady_clock::now();
  const auto observe = [&start]() {
    write_seconds.Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
  };

  const ConfigurationTool::CacheDump dump = tool.DumpAssessmentCache();
  SnapshotWriter w;
  w.U64(kTagFingerprint, fingerprint);
  w.Str(kTagStrategy, strategy);
  w.I64(kTagEvaluations,
        best_so_far != nullptr ? best_so_far->evaluations : 0);
  w.U32(kTagHaveBest, best_so_far != nullptr ? 1u : 0u);
  if (best_so_far != nullptr) {
    w.VecI32(kTagBestReplicas, best_so_far->config.replicas);
    w.F64(kTagBestCost, best_so_far->cost);
    w.U32(kTagBestSatisfied, best_so_far->satisfied ? 1u : 0u);
  }
  w.U64(kTagReportCount, dump.reports.size());
  for (const auto& [replicas, report] : dump.reports) {
    WriteReport(&w, replicas, report);
  }
  w.U64(kTagFailureCount, dump.failures.size());
  for (const auto& [replicas, failure] : dump.failures) {
    w.VecI32(kTagFailureReplicas, replicas);
    w.U32(kTagFailureCode, static_cast<uint32_t>(failure.error.code()));
    w.Str(kTagFailureMessage, failure.error.message());
    w.U32(kTagFailureFlags, (failure.numerical ? 1u : 0u) |
                                (failure.retried_exact ? 2u : 0u));
  }
  Status status = WriteSnapshotFile(path, SnapshotKind::kSearchCheckpoint,
                                    w.payload())
                      .WithContext("writing search checkpoint");
  observe();
  return status;
}

Result<CheckpointMetadata> ResumeSearchFrom(const ConfigurationTool& tool,
                                            const std::string& path,
                                            uint64_t fingerprint,
                                            std::string_view strategy) {
  WFMS_ASSIGN_OR_RETURN(
      const std::string payload,
      ReadSnapshotFile(path, SnapshotKind::kSearchCheckpoint));
  SnapshotReader r(payload);
  CheckpointMetadata meta;
  WFMS_ASSIGN_OR_RETURN(meta.fingerprint, r.U64(kTagFingerprint));
  WFMS_ASSIGN_OR_RETURN(meta.strategy, r.Str(kTagStrategy));
  WFMS_ASSIGN_OR_RETURN(meta.evaluations, r.I64(kTagEvaluations));
  WFMS_ASSIGN_OR_RETURN(uint32_t have_best, r.U32(kTagHaveBest));
  meta.have_best = have_best != 0;
  if (meta.have_best) {
    WFMS_ASSIGN_OR_RETURN(meta.best_config.replicas,
                          r.VecI32(kTagBestReplicas));
    WFMS_ASSIGN_OR_RETURN(meta.best_cost, r.F64(kTagBestCost));
    WFMS_ASSIGN_OR_RETURN(uint32_t satisfied, r.U32(kTagBestSatisfied));
    meta.best_satisfied = satisfied != 0;
  }

  // Freshness first, cache parsing second: a stale checkpoint is rejected
  // before any of its contents are interpreted.
  if (meta.strategy != strategy) {
    return Status::FailedPrecondition(
        "stale checkpoint '" + path + "': taken by the '" + meta.strategy +
        "' search, resuming '" + std::string(strategy) + "'");
  }
  if (meta.fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "stale checkpoint '" + path +
        "': environment/goals/options hash mismatch (checkpoint " +
        std::to_string(meta.fingerprint) + ", current " +
        std::to_string(fingerprint) +
        ") — it was taken under a different scenario, goal set, cost "
        "model, constraint box, or strategy options and cannot be mixed "
        "in");
  }

  ConfigurationTool::CacheDump dump;
  WFMS_ASSIGN_OR_RETURN(uint64_t report_count, r.U64(kTagReportCount));
  dump.reports.reserve(report_count);
  for (uint64_t i = 0; i < report_count; ++i) {
    WFMS_ASSIGN_OR_RETURN(auto entry, ReadReport(&r));
    dump.reports.push_back(std::move(entry));
  }
  WFMS_ASSIGN_OR_RETURN(uint64_t failure_count, r.U64(kTagFailureCount));
  dump.failures.reserve(failure_count);
  for (uint64_t i = 0; i < failure_count; ++i) {
    std::pair<std::vector<int>, ConfigurationTool::CachedFailure> entry;
    WFMS_ASSIGN_OR_RETURN(entry.first, r.VecI32(kTagFailureReplicas));
    WFMS_ASSIGN_OR_RETURN(uint32_t code, r.U32(kTagFailureCode));
    WFMS_ASSIGN_OR_RETURN(std::string message, r.Str(kTagFailureMessage));
    entry.second.error =
        Status(static_cast<StatusCode>(code), std::move(message));
    WFMS_ASSIGN_OR_RETURN(uint32_t flags, r.U32(kTagFailureFlags));
    entry.second.numerical = (flags & 1u) != 0;
    entry.second.retried_exact = (flags & 2u) != 0;
    dump.failures.push_back(std::move(entry));
  }
  if (!r.AtEnd()) {
    return Status::ParseError("checkpoint '" + path +
                              "' has trailing bytes after the last field");
  }
  meta.cached_reports = dump.reports.size();
  meta.cached_failures = dump.failures.size();
  tool.RestoreAssessmentCache(dump);
  return meta;
}

}  // namespace wfms::configtool

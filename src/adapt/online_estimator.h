// Online re-estimation of the model inputs from the monitored audit
// stream — the continuously-running version of the batch calibration
// component (workflow/calibration.h, §7.1 of the paper). Two estimator
// families, chosen per parameter by data volume:
//
//  - exponentially-decayed moments (O(1) memory) for high-volume series:
//    service times per server type, residence times and transition counts
//    per chart state;
//  - sliding-window estimators (memory bounded by window x rate) where
//    the quantity *is* a windowed statistic: arrival rates, observed
//    turnaround, observed availability, failure/repair rates.
//
// Every estimator carries a normal-approximation confidence interval via
// its effective sample size, so the drift detectors and the controller
// can distinguish "the estimate moved" from "the estimate is noisy".
//
// RebuildEnvironment() closes the loop back into the analytic models: the
// windowed record history is replayed through CalibrateEnvironment (the
// §7.1 batch math, reused verbatim), then arrival and failure/repair
// rates are overridden from the windowed estimators, which unlike the
// batch path are anchored to the observation window rather than to t = 0.
#ifndef WFMS_ADAPT_ONLINE_ESTIMATOR_H_
#define WFMS_ADAPT_ONLINE_ESTIMATOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "adapt/audit_stream.h"
#include "common/result.h"
#include "workflow/calibration.h"
#include "workflow/environment.h"

namespace wfms::adapt {

/// Exponentially-decayed first/second moments: an observation made at
/// model time t carries weight exp(-(now - t)/tau). The effective sample
/// size is the decayed weight sum, which the confidence interval uses in
/// place of n.
class DecayedMoments {
 public:
  explicit DecayedMoments(double tau);

  /// `time` must be non-decreasing across calls.
  void Add(double time, double value);
  void Reset();

  double mean() const;
  double second_moment() const;
  /// Decayed-weight analogue of the sample variance (>= 0).
  double variance() const;
  /// Decayed weight sum, further decayed to `now` when `now` is past the
  /// last observation.
  double effective_samples(double now) const;
  double effective_samples() const { return effective_samples(last_time_); }
  /// Half-width of the normal-approximation CI at the given level
  /// (supported: 0.90, 0.95, 0.99), using the effective sample size.
  double ConfidenceHalfWidth(double level = 0.95) const;
  double last_time() const { return last_time_; }

 private:
  double tau_;
  double last_time_ = 0.0;
  double weight_ = 0.0;       // decayed sum of weights
  double weighted_sum_ = 0.0;  // decayed sum of w * x
  double weighted_sq_ = 0.0;   // decayed sum of w * x^2
};

/// Sliding-window point-event rate (arrivals, failures): the event count
/// over the trailing window divided by the window length, with a Poisson
/// normal-approximation confidence interval.
class WindowedRate {
 public:
  explicit WindowedRate(double window);

  void AddEvent(double time);
  void Reset();

  /// Events in (now - window, now] / window. Before a full window has
  /// elapsed (now < window) the elapsed time is used as the denominator,
  /// so early estimates are unbiased rather than deflated.
  double rate(double now) const;
  int64_t count(double now) const;
  /// z * sqrt(count) / window (Poisson standard error).
  double ConfidenceHalfWidth(double now, double level = 0.95) const;

 private:
  void PruneBefore(double cutoff) const;

  double window_;
  mutable std::deque<double> events_;
};

/// Sliding-window sample statistics over timestamped values (observed
/// turnaround per workflow type).
class WindowedSample {
 public:
  explicit WindowedSample(double window);

  void Add(double time, double value);
  void Reset();

  int64_t count(double now) const;
  double mean(double now) const;
  double stddev(double now) const;
  double ConfidenceHalfWidth(double now, double level = 0.95) const;

 private:
  void PruneBefore(double cutoff) const;

  double window_;
  mutable std::deque<std::pair<double, double>> samples_;  // (time, value)
};

/// Failure/repair-rate estimation for one server type from the stream of
/// up-count changes: integrates up-server-time and down-server-time and
/// counts transitions, giving the per-server exponential rates the
/// availability model consumes (lambda = downs / up-server-time, mu = ups
/// / down-server-time).
class FailureRepairEstimator {
 public:
  void Observe(const workflow::ServerCountRecord& record);
  void Reset();

  int64_t failures() const { return failures_; }
  int64_t repairs() const { return repairs_; }
  /// NotFound until at least `min_events` transitions of the kind have
  /// been observed (rates from thin data are wild).
  Result<double> FailureRate(int64_t min_events) const;
  Result<double> RepairRate(int64_t min_events) const;

 private:
  bool started_ = false;
  double last_time_ = 0.0;
  int last_up_ = 0;
  int last_configured_ = 0;
  double up_server_time_ = 0.0;
  double down_server_time_ = 0.0;
  int64_t failures_ = 0;
  int64_t repairs_ = 0;
};

struct OnlineCalibratorOptions {
  /// Sliding-window length (model minutes) for rates, turnaround,
  /// availability, and the retained record history.
  double window = 4000.0;
  /// Decay constant (model minutes) for the decayed-moment estimators.
  double tau = 2000.0;
  /// Forwarded to the batch calibration on RebuildEnvironment, and the
  /// floor for trusting windowed arrival rates and failure/repair rates.
  int min_observations = 10;
};

/// Point-in-time view of one workflow type's estimates.
struct WorkflowEstimate {
  double arrival_rate = 0.0;
  double arrival_half_width = 0.0;
  int64_t arrivals = 0;
  double turnaround_mean = 0.0;
  double turnaround_half_width = 0.0;
  int64_t completions = 0;
};

/// Single-threaded consumer of the audit stream. Feed events in stream
/// order via Consume(); query estimates at control-loop boundaries.
class OnlineCalibrator {
 public:
  /// The environment (the *designed* model, used as the calibration prior
  /// and for name resolution) must outlive the calibrator.
  OnlineCalibrator(const workflow::Environment* env,
                   OnlineCalibratorOptions options);

  void Consume(const AuditEvent& event);

  /// Largest event time seen (the consumer's model-time clock).
  double now() const { return now_; }
  int64_t events_consumed() const { return events_consumed_; }

  WorkflowEstimate EstimateFor(const std::string& workflow) const;
  const DecayedMoments& ServiceMoments(size_t server_type) const;
  const FailureRepairEstimator& FailureRepair(size_t server_type) const;
  /// Fraction of the trailing window with every server type up; 1.0
  /// before any server-count record arrives.
  double ObservedAvailability() const;

  /// Re-derives a full Environment from the current window: the batch
  /// §7.1 calibration over the windowed record history (transition
  /// probabilities, residence times, service moments), then windowed
  /// arrival rates and observed failure/repair rates override the
  /// anchored-to-zero batch estimates where enough data exists.
  Result<workflow::Environment> RebuildEnvironment(
      workflow::CalibrationReport* report = nullptr) const;

  /// Forgets windowed history and transition/moment decay state but keeps
  /// the clock — called after a reconfiguration so the next control
  /// period estimates the *new* regime from scratch.
  void ResetEstimators();

 private:
  void Advance(double time);
  void PruneHistory();

  const workflow::Environment* env_;
  OnlineCalibratorOptions options_;
  double now_ = 0.0;
  int64_t events_consumed_ = 0;

  // Per workflow type (by name).
  std::map<std::string, WindowedRate> arrival_rates_;
  std::map<std::string, WindowedSample> turnarounds_;
  // Per server type (by registry index).
  std::vector<DecayedMoments> service_moments_;
  std::vector<FailureRepairEstimator> failure_repair_;
  // All-types-up availability over the window: up counts per type plus a
  // transition log (time, all_up_after) pruned to the window.
  std::vector<int> up_counts_;
  std::vector<char> up_known_;
  mutable std::deque<std::pair<double, char>> availability_log_;
  bool any_server_record_ = false;

  // Windowed raw-record history replayed through the batch calibration.
  std::deque<workflow::StateVisitRecord> visit_history_;
  std::deque<workflow::ServiceRecord> service_history_;
  std::deque<workflow::ArrivalRecord> arrival_history_;
};

}  // namespace wfms::adapt

#endif  // WFMS_ADAPT_ONLINE_ESTIMATOR_H_

#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "common/time_units.h"

namespace wfms {
namespace {

/// Captures stderr around a callback.
std::string CaptureStderr(const std::function<void()>& fn) {
  ::testing::internal::CaptureStderr();
  fn();
  return ::testing::internal::GetCapturedStderr();
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, MessagesBelowLevelAreDropped) {
  SetLogLevel(LogLevel::kWarning);
  const std::string out =
      CaptureStderr([] { WFMS_LOG(Info) << "should not appear"; });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, MessagesAtLevelAreEmitted) {
  SetLogLevel(LogLevel::kInfo);
  const std::string out =
      CaptureStderr([] { WFMS_LOG(Info) << "visible " << 42; });
  EXPECT_NE(out.find("visible 42"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("logging_test"), std::string::npos);  // file tag
}

TEST_F(LoggingTest, ErrorAboveWarning) {
  SetLogLevel(LogLevel::kError);
  const std::string warn =
      CaptureStderr([] { WFMS_LOG(Warning) << "quiet"; });
  EXPECT_TRUE(warn.empty());
  const std::string err = CaptureStderr([] { WFMS_LOG(Error) << "loud"; });
  EXPECT_NE(err.find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, LevelRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(CheckMacrosTest, PassingChecksAreSilent) {
  WFMS_CHECK(true);
  WFMS_CHECK_EQ(1, 1);
  WFMS_CHECK_NE(1, 2);
  WFMS_CHECK_LT(1, 2);
  WFMS_CHECK_LE(2, 2);
  WFMS_CHECK_GT(3, 2);
  WFMS_CHECK_GE(3, 3);
}

TEST(CheckMacrosDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(WFMS_CHECK(false), "Check failed");
  EXPECT_DEATH(WFMS_CHECK_EQ(1, 2), "1 vs 2");
}

TEST(FormatMinutesTest, EdgeRanges) {
  // Sub-second values render as milliseconds.
  EXPECT_EQ(FormatMinutes(0.0001), "6 ms");
  // Negative durations keep their sign.
  EXPECT_EQ(FormatMinutes(-120.0), "-2 h");
  // Zero.
  EXPECT_EQ(FormatMinutes(0.0), "0 ms");
}

TEST(HistogramTest, ToStringRendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string text = h.ToString(10);
  EXPECT_NE(text.find("[0, 1)"), std::string::npos);
  EXPECT_NE(text.find("[1, 2)"), std::string::npos);
  EXPECT_NE(text.find("##"), std::string::npos);
  EXPECT_NE(text.find(" 2"), std::string::npos);
}

TEST(HistogramTest, EmptyQuantileIsLowerBound) {
  Histogram h(1.0, 5.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0);
}

}  // namespace
}  // namespace wfms

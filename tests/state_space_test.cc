#include "markov/state_space.h"

#include <gtest/gtest.h>

namespace wfms::markov {
namespace {

TEST(MixedRadixSpaceTest, PaperEncodingExample) {
  // §5.2: three server types with two servers each; (0,0,0) -> 0,
  // (1,0,0) -> 1, (2,0,0) -> 2, (0,1,0) -> 3, ...
  auto space = MixedRadixSpace::Create({2, 2, 2});
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->size(), 27u);
  EXPECT_EQ(*space->Encode({0, 0, 0}), 0u);
  EXPECT_EQ(*space->Encode({1, 0, 0}), 1u);
  EXPECT_EQ(*space->Encode({2, 0, 0}), 2u);
  EXPECT_EQ(*space->Encode({0, 1, 0}), 3u);
  EXPECT_EQ(*space->Encode({0, 0, 1}), 9u);
  EXPECT_EQ(*space->Encode({2, 2, 2}), 26u);
}

TEST(MixedRadixSpaceTest, EncodeDecodeRoundTrip) {
  auto space = MixedRadixSpace::Create({3, 1, 4, 2});
  ASSERT_TRUE(space.ok());
  for (size_t i = 0; i < space->size(); ++i) {
    auto state = space->Decode(i);
    ASSERT_TRUE(state.ok());
    auto back = space->Encode(*state);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, i);
  }
}

TEST(MixedRadixSpaceTest, ComponentMatchesDecode) {
  auto space = MixedRadixSpace::Create({2, 3, 1});
  ASSERT_TRUE(space.ok());
  for (size_t i = 0; i < space->size(); ++i) {
    auto state = space->Decode(i);
    ASSERT_TRUE(state.ok());
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(space->Component(i, d), (*state)[d]);
    }
  }
}

TEST(MixedRadixSpaceTest, NeighborMoves) {
  auto space = MixedRadixSpace::Create({2, 2});
  ASSERT_TRUE(space.ok());
  const size_t idx = *space->Encode({1, 1});
  EXPECT_EQ(space->Neighbor(idx, 0, +1), *space->Encode({2, 1}));
  EXPECT_EQ(space->Neighbor(idx, 0, -1), *space->Encode({0, 1}));
  EXPECT_EQ(space->Neighbor(idx, 1, +1), *space->Encode({1, 2}));
  // Leaving the bounds yields SIZE_MAX.
  const size_t top = *space->Encode({2, 2});
  EXPECT_EQ(space->Neighbor(top, 0, +1), SIZE_MAX);
  const size_t bottom = *space->Encode({0, 0});
  EXPECT_EQ(space->Neighbor(bottom, 1, -1), SIZE_MAX);
}

TEST(MixedRadixSpaceTest, ValidationErrors) {
  EXPECT_FALSE(MixedRadixSpace::Create({}).ok());
  EXPECT_FALSE(MixedRadixSpace::Create({-1}).ok());
  auto space = MixedRadixSpace::Create({1, 1});
  ASSERT_TRUE(space.ok());
  EXPECT_FALSE(space->Encode({0}).ok());          // dimension mismatch
  EXPECT_FALSE(space->Encode({2, 0}).ok());       // out of bounds
  EXPECT_FALSE(space->Encode({0, -1}).ok());      // negative
  EXPECT_FALSE(space->Decode(space->size()).ok());
}

TEST(MixedRadixSpaceTest, HugeSpaceRejected) {
  EXPECT_FALSE(MixedRadixSpace::Create(
                   std::vector<int>(40, 9))
                   .ok());
}

TEST(MixedRadixSpaceTest, ZeroBoundDimensionCollapses) {
  // A dimension pinned at 0 contributes a factor of 1.
  auto space = MixedRadixSpace::Create({0, 2});
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->size(), 3u);
  EXPECT_EQ(*space->Encode({0, 2}), 2u);
}

TEST(MixedRadixSpaceTest, ToStringFormat) {
  auto space = MixedRadixSpace::Create({2, 2, 2});
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->ToString(*space->Encode({2, 1, 0})), "(2,1,0)");
}

}  // namespace
}  // namespace wfms::markov
